//! Bug hunt: reproduce the paper's headline result on a small scale —
//! the Table 4 bugs are only reachable through KernelGPT-generated
//! specifications, not through the pre-existing or SyzDescribe suites.
//!
//! Run with: `cargo run --release --example bug_hunt`

use kernelgpt::core::KernelGpt;
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fuzzer::{Campaign, CampaignConfig};
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::vkernel::VKernel;
use std::collections::BTreeSet;

fn main() {
    // Three bug-hosting targets: device-mapper (2 CVEs + 1 GPF), the
    // CEC driver (5 bugs), and the RDS socket (1 CVE via sendto).
    let blueprints = vec![flagship::dm(), flagship::cec(), flagship::rds()];
    let expected: usize = blueprints.iter().map(|b| b.bugs.len()).sum();
    let kc = KernelCorpus::from_blueprints(blueprints.clone());
    let kernel = VKernel::boot(blueprints);
    let handlers = find_handlers(kc.corpus());

    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());

    let suites = [
        ("Syzkaller (existing)", kc.existing_suite()),
        (
            "SyzDescribe",
            kernelgpt::syzdescribe::describe_all(kc.corpus(), &handlers, kc.consts())
                .into_iter()
                .filter(|o| o.valid)
                .filter_map(|o| o.spec)
                .collect(),
        ),
        ("KernelGPT", report.specs()),
    ];

    println!("{expected} injected bugs across dm + cec + rds\n");
    for (name, suite) in suites {
        let mut titles: BTreeSet<String> = BTreeSet::new();
        if !suite.is_empty() {
            for seed in 0..3u64 {
                let cfg = CampaignConfig {
                    execs: 15_000,
                    seed,
                    ..CampaignConfig::default()
                };
                let r = Campaign::new(&kernel, &suite, kc.consts(), cfg).run();
                titles.extend(r.crashes.keys().cloned());
            }
        }
        println!("{name:<22}: found {}/{expected} bugs", titles.len());
        for t in &titles {
            println!("    {t}");
        }
    }
}
