//! Quickstart: generate a syzlang specification for the device-mapper
//! driver with KernelGPT, print it, and validate it.
//!
//! Run with: `cargo run --example quickstart`

use kernelgpt::core::{KernelGpt, Strategy};
use kernelgpt::csrc::KernelCorpus;
use kernelgpt::extractor::find_handlers;
use kernelgpt::llm::{LanguageModel, ModelKind, OracleModel};

fn main() {
    // 1. Build the synthetic kernel corpus for the device-mapper
    //    flagship (the paper's running example: `.nodename`
    //    registration, lookup-table dispatch, `_IOC_NR` transform).
    let kc = KernelCorpus::from_blueprints(vec![kernelgpt::csrc::flagship::dm()]);

    // 2. Find its operation handler, exactly like the paper's extractor.
    let handlers = find_handlers(kc.corpus());
    println!(
        "found {} operation handler(s): {}",
        handlers.len(),
        handlers
            .iter()
            .map(|h| h.ops_var.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 3. Run the KernelGPT pipeline with the GPT-4 oracle profile.
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let engine = KernelGpt::new(&model, kc.corpus()).with_strategy(Strategy::Iterative);
    let report = engine.generate_all(&handlers, kc.consts());

    for outcome in &report.outcomes {
        println!(
            "\nhandler {}: {} syscalls, {} types, valid={}, repaired={}, {} LLM queries",
            outcome.ops_var,
            outcome.syscall_count(),
            outcome.type_count(),
            outcome.valid,
            outcome.repaired,
            outcome.queries,
        );
        if let Some(spec) = &outcome.spec {
            println!("--- generated syzlang ---");
            print!("{}", kernelgpt::syzlang::print_file(spec));
        }
    }

    let usage = model.total_usage();
    println!(
        "\nLLM usage: {} requests, {} input / {} output tokens",
        usage.requests, usage.input_tokens, usage.output_tokens
    );
}
