//! The distributed campaign fabric, end to end: the same two-suite
//! comparison as `fuzz_campaign`, but split across a coordinator
//! process and N worker processes over localhost TCP — with the
//! merged `RESULT` lines **bit-identical** to the single-process run.
//!
//! Run as either role (positional arg or `FABRIC_ROLE`):
//!
//! ```text
//! cargo run --release --example fabric_campaign -- coordinator &
//! cargo run --release --example fabric_campaign -- worker &
//! cargo run --release --example fabric_campaign -- worker
//! ```
//!
//! For a machine-spanning run, bind the coordinator to a reachable
//! interface with `--listen` and point the workers' `FABRIC_ADDR` at
//! it (workers retry refused connections with bounded deterministic
//! backoff, so start order does not matter):
//!
//! ```text
//! host-a$ cargo run --release --example fabric_campaign -- coordinator --listen 0.0.0.0:45117
//! host-b$ FABRIC_ADDR=host-a:45117 cargo run --release --example fabric_campaign -- worker
//! ```
//!
//! Both roles rebuild the identical spec suites from the same
//! deterministic oracle; the wire carries only config, snapshots, and
//! deltas — never specs. After a worker's first acked boundary its
//! deltas ship as *increments* against the agreed baseline (see the
//! `FABRIC` line's `delta_bytes`); the first boundary of any lease —
//! fresh or reassigned — is always a full frame. Workers may be
//! killed (`SIGKILL`) mid-lease and replaced at any time: the
//! coordinator reassigns the range from the last committed boundary
//! and the result does not change, which is exactly what the CI
//! `fabric-smoke` job does to this binary.
//!
//! Flags (after the role):
//!
//! * `--listen <addr>` (coordinator) — bind address, overriding
//!   `FABRIC_ADDR`; use `0.0.0.0:<port>` to accept non-loopback
//!   workers.
//!
//! Environment knobs:
//!
//! * `FABRIC_ADDR` — coordinator listen / worker connect address
//!   (default `127.0.0.1:45117`);
//! * `FABRIC_WORKERS` — worker range slots (default 2);
//! * `FUZZ_EXECS` — per-campaign exec budget (default 20000), same
//!   meaning as in `fuzz_campaign`.

use kernelgpt::core::KernelGpt;
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fabric::{
    run_worker, Coordinator, CoordinatorOpts, TcpTransport, Transport, WorkerOpts,
};
use kernelgpt::fuzzer::CampaignConfig;
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::syzlang::{lowered::LoweredDb, ConstDb, SpecCache, SpecFile};
use kernelgpt::vkernel::VKernel;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: u32 = 8;

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn addr() -> String {
    std::env::var("FABRIC_ADDR").unwrap_or_else(|_| "127.0.0.1:45117".into())
}

fn campaign_config(execs: u64) -> CampaignConfig {
    // Must match `fuzz_campaign` exactly: the CI smoke diffs this
    // binary's RESULT lines against that one's.
    CampaignConfig {
        execs,
        seed: 1,
        hub_epoch: 2_048,
        hub_top_k: 4,
        ..CampaignConfig::default()
    }
}

/// Both roles derive the identical suites from the same deterministic
/// oracle — the wire never carries specs, only their fingerprint.
fn build_suites() -> (VKernel, ConstDb, Vec<(&'static str, Vec<SpecFile>)>) {
    let blueprints = vec![flagship::dm(), flagship::cec(), flagship::sg()];
    let kc = KernelCorpus::from_blueprints(blueprints.clone());
    let kernel = VKernel::boot(blueprints);
    let handlers = find_handlers(kc.corpus());
    let existing = kc.existing_suite();
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let mut augmented = existing.clone();
    augmented.extend(report.specs());
    (
        kernel,
        kc.consts().clone(),
        vec![("existing", existing), ("existing+KernelGPT", augmented)],
    )
}

fn run_coordinator(listen: Option<String>) {
    let execs = env_u64("FUZZ_EXECS", 20_000);
    let workers = u32::try_from(env_u64("FABRIC_WORKERS", 2)).unwrap_or(2);
    let listen = listen.unwrap_or_else(addr);
    let listener = TcpListener::bind(&listen).expect("bind coordinator address");
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    println!("COORDINATOR listening on {listen}");
    let (_kernel, _consts, suites) = build_suites();
    for (name, suite) in suites {
        if suite.is_empty() {
            println!("{name:<20}: no specs, skipping");
            continue;
        }
        let spec_fp = SpecCache::fingerprint(&suite);
        let coordinator = Coordinator::new(
            campaign_config(execs),
            CoordinatorOpts {
                shards: SHARDS,
                workers,
                lease_timeout: Duration::from_secs(30),
                spec_fp,
            },
        );
        // One campaign per suite over the same listener: connections
        // arriving between campaigns wait in the backlog until the
        // next campaign's coordinator wants a registrant.
        let mut accept = || -> Option<Box<dyn Transport>> {
            match listener.accept() {
                Ok((stream, _)) => Some(Box::new(TcpTransport::new(stream)) as Box<dyn Transport>),
                Err(_) => None,
            }
        };
        let (result, stats) = coordinator.run(&mut accept).expect("coordinator failed");
        println!(
            "{name:<20}: {:>5} blocks, {} unique crashes over {} execs (corpus {})",
            result.blocks(),
            result.unique_crashes(),
            result.execs,
            result.corpus_size,
        );
        println!(
            "FABRIC {name}: boundaries={} delta_bytes={} merge_ms={} expired_leases={} \
             redelivered={} rejected={}",
            stats.boundaries,
            stats.delta_bytes,
            stats.merge_nanos / 1_000_000,
            stats.expired_leases,
            stats.redelivered_frames,
            stats.rejected_frames,
        );
        // The same stable machine-checkable line as `fuzz_campaign`:
        // the fabric-smoke CI job diffs the two.
        println!(
            "RESULT {name}: blocks={} unique_crashes={} corpus={} execs={} fuel_exhausted={} triage={}",
            result.blocks(),
            result.unique_crashes(),
            result.corpus_size,
            result.execs,
            result.fuel_exhausted,
            result.triage.len(),
        );
    }
}

fn run_worker_role() {
    let (kernel, consts, suites) = build_suites();
    // Compile + lower every suite up front; the grant picks one by
    // fingerprint.
    let lowered: Vec<(u64, Arc<LoweredDb>)> = suites
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(_, suite)| {
            let db = SpecCache::global().get_or_build(suite);
            (
                SpecCache::fingerprint(suite),
                SpecCache::global().get_or_lower(&db, &consts),
            )
        })
        .collect();
    let mut sessions = 0u64;
    loop {
        // Bounded deterministic backoff on refused connections: a
        // generous budget before the first session (the coordinator
        // may still be compiling its suites), a short one between
        // campaigns (a few refusals in a row mean it is done).
        let (attempts, base) = if sessions == 0 {
            (40, Duration::from_millis(100))
        } else {
            (8, Duration::from_millis(100))
        };
        let Ok(transport) =
            TcpTransport::connect_with_backoff(addr(), attempts, base, Duration::from_secs(2))
        else {
            break;
        };
        let opts = WorkerOpts {
            reply_timeout: Duration::from_secs(2),
            on_grant: Some(Box::new(|slot, lo, hi, boundary| {
                println!("LEASE slot={slot} shards={lo}..{hi} from_boundary={boundary}");
            })),
            on_boundary: Some(Box::new(|boundary| {
                println!("DELTA boundary={boundary}");
            })),
            ..WorkerOpts::default()
        };
        let kernel = &kernel;
        let lowered = &lowered;
        let summary = run_worker(Box::new(transport), opts, move |fp| {
            lowered
                .iter()
                .find(|(have, _)| *have == fp)
                .map(|(_, l)| (kernel, Arc::clone(l)))
        })
        .expect("worker protocol violation");
        sessions += 1;
        println!(
            "SESSION {} slot={:?} boundaries={} completed={}",
            sessions, summary.slot, summary.boundaries, summary.completed
        );
    }
    println!("WORKER done after {sessions} sessions");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let role = args
        .next()
        .or_else(|| std::env::var("FABRIC_ROLE").ok())
        .unwrap_or_else(|| "coordinator".into());
    let mut listen: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => match args.next() {
                Some(a) => listen = Some(a),
                None => {
                    eprintln!("--listen requires an address, e.g. --listen 0.0.0.0:45117");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other:?}: only `--listen <addr>` is supported");
                std::process::exit(2);
            }
        }
    }
    match role.as_str() {
        "coordinator" => run_coordinator(listen),
        "worker" => {
            if listen.is_some() {
                eprintln!("--listen is a coordinator flag; workers use FABRIC_ADDR");
                std::process::exit(2);
            }
            run_worker_role();
        }
        other => {
            eprintln!("unknown role {other:?}: use `coordinator` or `worker`");
            std::process::exit(2);
        }
    }
}
