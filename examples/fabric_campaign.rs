//! The distributed campaign fabric, end to end: the same two-suite
//! comparison as `fuzz_campaign`, but split across a coordinator
//! process and N worker processes over localhost TCP — with the
//! merged `RESULT` lines **bit-identical** to the single-process run.
//!
//! Run as either role (positional arg or `FABRIC_ROLE`):
//!
//! ```text
//! cargo run --release --example fabric_campaign -- coordinator &
//! cargo run --release --example fabric_campaign -- worker &
//! cargo run --release --example fabric_campaign -- worker
//! ```
//!
//! For a machine-spanning run, bind the coordinator to a reachable
//! interface with `--listen` and point the workers' `FABRIC_ADDR` at
//! it (workers retry refused connections with bounded deterministic
//! backoff, so start order does not matter):
//!
//! ```text
//! host-a$ cargo run --release --example fabric_campaign -- coordinator --listen 0.0.0.0:45117
//! host-b$ FABRIC_ADDR=host-a:45117 cargo run --release --example fabric_campaign -- worker
//! ```
//!
//! Both roles rebuild the identical spec suites from the same
//! deterministic oracle; the wire carries only config, snapshots, and
//! deltas — never specs. After a worker's first acked boundary its
//! deltas ship as *increments* against the agreed baseline (see the
//! `FABRIC` line's `delta_bytes`); the first boundary of any lease —
//! fresh or reassigned — is always a full frame. Workers may be
//! killed (`SIGKILL`) mid-lease and replaced at any time: the
//! coordinator reassigns the range from the last committed boundary
//! and the result does not change, which is exactly what the CI
//! `fabric-smoke` job does to this binary.
//!
//! A worker that never reaches a coordinator at all exits with
//! status 1 and a named `FABRIC_UNREACHABLE` error once its
//! connection-attempt budget is spent — a dead address is an
//! operator error, not a finished campaign.
//!
//! The third role, `soak`, is the multi-tenant chaos soak: three
//! tenants (one budget-starved) share one in-process
//! `TenantService` and a worker pool that is flapped, fed byzantine
//! frames, starved of frames, and killed mid-lease. It prints one
//! `REFERENCE` and one `RESULT` line per tenant with the identical
//! field set — the CI `chaos-soak` job diffs the two — and exits
//! nonzero if any tenant diverges from its single-process reference:
//!
//! ```text
//! SOAK_SEED=41 cargo run --release --example fabric_campaign -- soak
//! ```
//!
//! Flags (after the role):
//!
//! * `--listen <addr>` (coordinator) — bind address, overriding
//!   `FABRIC_ADDR`; use `0.0.0.0:<port>` to accept non-loopback
//!   workers.
//!
//! Environment knobs:
//!
//! * `FABRIC_ADDR` — coordinator listen / worker connect address
//!   (default `127.0.0.1:45117`);
//! * `FABRIC_WORKERS` — worker range slots (default 2); in the soak,
//!   worker slots per tenant;
//! * `FUZZ_EXECS` — per-campaign exec budget (default 20000), same
//!   meaning as in `fuzz_campaign`;
//! * `SOAK_SEED` (soak) — base campaign seed for the three tenants
//!   (default 41).

use kernelgpt::core::KernelGpt;
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fabric::{
    flap_worker, run_worker, ChannelTransport, Coordinator, CoordinatorOpts, HealthOpts,
    ServiceOpts, TcpTransport, TenantQuota, TenantService, TenantSpec, Transport, WorkerOpts,
};
use kernelgpt::fuzzer::{reference_run, CampaignConfig, CampaignResult, Fault, FaultPlan};
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::syzlang::{lowered::LoweredDb, ConstDb, SpecCache, SpecFile};
use kernelgpt::vkernel::VKernel;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: u32 = 8;

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn addr() -> String {
    std::env::var("FABRIC_ADDR").unwrap_or_else(|_| "127.0.0.1:45117".into())
}

fn campaign_config(execs: u64) -> CampaignConfig {
    // Must match `fuzz_campaign` exactly: the CI smoke diffs this
    // binary's RESULT lines against that one's.
    CampaignConfig {
        execs,
        seed: 1,
        hub_epoch: 2_048,
        hub_top_k: 4,
        ..CampaignConfig::default()
    }
}

/// Both roles derive the identical suites from the same deterministic
/// oracle — the wire never carries specs, only their fingerprint.
fn build_suites() -> (VKernel, ConstDb, Vec<(&'static str, Vec<SpecFile>)>) {
    let blueprints = vec![flagship::dm(), flagship::cec(), flagship::sg()];
    let kc = KernelCorpus::from_blueprints(blueprints.clone());
    let kernel = VKernel::boot(blueprints);
    let handlers = find_handlers(kc.corpus());
    let existing = kc.existing_suite();
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let mut augmented = existing.clone();
    augmented.extend(report.specs());
    (
        kernel,
        kc.consts().clone(),
        vec![("existing", existing), ("existing+KernelGPT", augmented)],
    )
}

fn run_coordinator(listen: Option<String>) {
    let execs = env_u64("FUZZ_EXECS", 20_000);
    let workers = u32::try_from(env_u64("FABRIC_WORKERS", 2)).unwrap_or(2);
    let listen = listen.unwrap_or_else(addr);
    let listener = TcpListener::bind(&listen).expect("bind coordinator address");
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    println!("COORDINATOR listening on {listen}");
    let (_kernel, _consts, suites) = build_suites();
    for (name, suite) in suites {
        if suite.is_empty() {
            println!("{name:<20}: no specs, skipping");
            continue;
        }
        let spec_fp = SpecCache::fingerprint(&suite);
        let coordinator = Coordinator::new(
            campaign_config(execs),
            CoordinatorOpts {
                shards: SHARDS,
                workers,
                lease_timeout: Duration::from_secs(30),
                spec_fp,
            },
        );
        // One campaign per suite over the same listener: connections
        // arriving between campaigns wait in the backlog until the
        // next campaign's coordinator wants a registrant.
        let mut accept = || -> Option<Box<dyn Transport>> {
            match listener.accept() {
                Ok((stream, _)) => Some(Box::new(TcpTransport::new(stream)) as Box<dyn Transport>),
                Err(_) => None,
            }
        };
        let (result, stats) = coordinator.run(&mut accept).expect("coordinator failed");
        println!(
            "{name:<20}: {:>5} blocks, {} unique crashes over {} execs (corpus {})",
            result.blocks(),
            result.unique_crashes(),
            result.execs,
            result.corpus_size,
        );
        println!(
            "FABRIC {name}: boundaries={} delta_bytes={} merge_ms={} expired_leases={} \
             redelivered={} rejected={}",
            stats.boundaries,
            stats.delta_bytes,
            stats.merge_nanos / 1_000_000,
            stats.expired_leases,
            stats.redelivered_frames,
            stats.rejected_frames,
        );
        // The same stable machine-checkable line as `fuzz_campaign`:
        // the fabric-smoke CI job diffs the two.
        println!(
            "RESULT {name}: blocks={} unique_crashes={} corpus={} execs={} fuel_exhausted={} triage={}",
            result.blocks(),
            result.unique_crashes(),
            result.corpus_size,
            result.execs,
            result.fuel_exhausted,
            result.triage.len(),
        );
    }
}

fn run_worker_role() {
    let (kernel, consts, suites) = build_suites();
    // Compile + lower every suite up front; the grant picks one by
    // fingerprint.
    let lowered: Vec<(u64, Arc<LoweredDb>)> = suites
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(_, suite)| {
            let db = SpecCache::global().get_or_build(suite);
            (
                SpecCache::fingerprint(suite),
                SpecCache::global().get_or_lower(&db, &consts),
            )
        })
        .collect();
    let mut sessions = 0u64;
    loop {
        // Bounded deterministic backoff on refused connections: a
        // generous budget before the first session (the coordinator
        // may still be compiling its suites), a short one between
        // campaigns (a few refusals in a row mean it is done).
        let (attempts, base) = if sessions == 0 {
            (40, Duration::from_millis(100))
        } else {
            (8, Duration::from_millis(100))
        };
        let Ok(transport) =
            TcpTransport::connect_with_backoff(addr(), attempts, base, Duration::from_secs(2))
        else {
            if sessions == 0 {
                // Never reached a coordinator at all: a dead address
                // is an operator error, not a finished campaign.
                eprintln!(
                    "FABRIC_UNREACHABLE: no coordinator at {} after {attempts} connection attempts",
                    addr()
                );
                std::process::exit(1);
            }
            break;
        };
        let opts = WorkerOpts {
            reply_timeout: Duration::from_secs(2),
            on_grant: Some(Box::new(|slot, lo, hi, boundary| {
                println!("LEASE slot={slot} shards={lo}..{hi} from_boundary={boundary}");
            })),
            on_boundary: Some(Box::new(|boundary| {
                println!("DELTA boundary={boundary}");
            })),
            ..WorkerOpts::default()
        };
        let kernel = &kernel;
        let lowered = &lowered;
        let summary = run_worker(Box::new(transport), opts, move |fp| {
            lowered
                .iter()
                .find(|(have, _)| *have == fp)
                .map(|(_, l)| (kernel, Arc::clone(l)))
        })
        .expect("worker protocol violation");
        sessions += 1;
        println!(
            "SESSION {} slot={:?} boundaries={} completed={}",
            sessions, summary.slot, summary.boundaries, summary.completed
        );
    }
    println!("WORKER done after {sessions} sessions");
}

/// What the n-th accepted connection in the soak runs.
#[derive(Clone)]
enum Spawn {
    /// A real worker session under this fault plan.
    Worker(FaultPlan),
    /// One flap cycle under this worker id: register, take whatever
    /// reply comes, drop the connection.
    Flap(u64),
}

/// The soak's boundary cadence scales with the exec budget so the
/// chaos always spans ~4 boundaries, whether CI runs it at smoke
/// scale or a full 20k-exec campaign.
fn soak_config(execs: u64, seed: u64) -> CampaignConfig {
    let hub_epoch = (execs / (u64::from(SHARDS) * 4)).clamp(16, 2_048);
    CampaignConfig {
        execs,
        seed,
        hub_epoch,
        hub_top_k: 4,
        ..CampaignConfig::default()
    }
}

/// One machine-checkable line per tenant. `REFERENCE` and `RESULT`
/// lines use the identical field set so CI can diff them with a
/// plain text substitution.
fn tenant_line(
    tag: &str,
    name: &str,
    result: &CampaignResult,
    boundaries: u64,
    budget_exhausted: bool,
) -> String {
    format!(
        "{tag} {name}: blocks={} unique_crashes={} corpus={} execs={} fuel_exhausted={} \
         triage={} boundaries={} budget_exhausted={}",
        result.blocks(),
        result.unique_crashes(),
        result.corpus_size,
        result.execs,
        result.fuel_exhausted,
        result.triage.len(),
        boundaries,
        budget_exhausted,
    )
}

/// The in-process multi-tenant chaos soak: three tenants (one
/// budget-starved) share a `TenantService` and a worker pool that is
/// flapped, fed byzantine frames, starved of frames, and killed
/// mid-lease — then every tenant's merged result is compared against
/// its single-process reference. Exits nonzero on any divergence.
fn run_soak() {
    let execs = env_u64("FUZZ_EXECS", 20_000);
    let seed0 = env_u64("SOAK_SEED", 41);
    let workers = u32::try_from(env_u64("FABRIC_WORKERS", 2))
        .unwrap_or(2)
        .max(1);
    println!("SOAK seed={seed0} execs={execs} workers_per_tenant={workers}");
    let (kernel, consts, mut suites) = build_suites();
    let (_, suite) = suites.pop().expect("augmented suite");
    let db = SpecCache::global().get_or_build(&suite);
    let lowered = SpecCache::global().get_or_lower(&db, &consts);
    let spec_fp = SpecCache::fingerprint(&suite);
    let starve_quota = execs / 2;
    let configs: Vec<CampaignConfig> = (0..3u64).map(|i| soak_config(execs, seed0 + i)).collect();
    let references: Vec<_> = configs
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let quota = (i == 1).then_some(starve_quota);
            reference_run(&kernel, &lowered, config, SHARDS, quota)
        })
        .collect();
    for (i, r) in references.iter().enumerate() {
        println!(
            "{}",
            tenant_line(
                "REFERENCE",
                &format!("tenant-{i}"),
                &r.result,
                r.boundaries,
                r.budget_exhausted,
            )
        );
    }

    // The fault matrix: one flapper striking every tenant into a
    // quarantine, one byzantine worker, one lossy/duplicating worker,
    // and one worker killed at boundary 2 wherever it is seated.
    // Spawns beyond the script are clean replacements.
    let kill_everywhere = (0..workers).fold(FaultPlan::none(), |plan, slot| {
        plan.with(Fault::WorkerKill {
            worker: slot,
            boundary: 2,
        })
    });
    let script = [
        Spawn::Flap(77),
        Spawn::Flap(77),
        Spawn::Flap(77),
        Spawn::Worker(FaultPlan::none().with(Fault::ByzantineFrames {
            from_nth: 1,
            count: 1,
        })),
        Spawn::Worker(
            FaultPlan::none()
                .with(Fault::DropFrame { nth: 1 })
                .with(Fault::DuplicateFrame { nth: 2 }),
        ),
        Spawn::Worker(kill_everywhere),
    ];

    let (results, stats) = std::thread::scope(|scope| {
        let mut service = TenantService::new(ServiceOpts {
            lease_timeout: Duration::from_secs(10),
            health: HealthOpts {
                strike_limit: 3,
                quarantine_grants: 64,
                worker_cap: 0,
                park_grants: 2,
            },
        });
        for (i, config) in configs.iter().enumerate() {
            service.admit(TenantSpec {
                name: format!("tenant-{i}"),
                config: config.clone(),
                shards: SHARDS,
                workers,
                spec_fp,
                quota: if i == 1 {
                    TenantQuota::execs(starve_quota)
                } else {
                    TenantQuota::unlimited()
                },
            });
        }
        let mut spawned = 0usize;
        let mut accept = || -> Option<Box<dyn Transport>> {
            let spawn = script
                .get(spawned)
                .cloned()
                .unwrap_or_else(|| Spawn::Worker(FaultPlan::none()));
            spawned += 1;
            let (service_end, worker_end) = ChannelTransport::pair();
            let kernel = &kernel;
            let lowered = Arc::clone(&lowered);
            scope.spawn(move || match spawn {
                Spawn::Worker(plan) => {
                    let opts = WorkerOpts {
                        faults: plan,
                        reply_timeout: Duration::from_millis(500),
                        ..WorkerOpts::default()
                    };
                    run_worker(Box::new(worker_end), opts, |fp| {
                        (fp == spec_fp).then_some((kernel, lowered))
                    })
                    .expect("worker protocol violation");
                }
                Spawn::Flap(worker_id) => {
                    flap_worker(Box::new(worker_end), worker_id, Duration::from_secs(10));
                }
            });
            Some(Box::new(service_end))
        };
        service.run(&mut accept).expect("tenant service failed")
    });

    println!(
        "TENANCY grants={} parked={} quarantines={} refusals={} grants_per_tenant={:?}",
        stats.grants,
        stats.parked,
        stats.quarantines,
        stats.quarantine_refusals,
        stats.grants_per_tenant,
    );
    let mut mismatches = 0u32;
    for (i, (reference, tenant)) in references.iter().zip(&results).enumerate() {
        let name = format!("tenant-{i}");
        let line = tenant_line(
            "RESULT",
            &name,
            &tenant.result,
            tenant.boundaries,
            tenant.budget_exhausted,
        );
        println!("{line}");
        let want = tenant_line(
            "RESULT",
            &name,
            &reference.result,
            reference.boundaries,
            reference.budget_exhausted,
        );
        if line != want {
            eprintln!("SOAK MISMATCH {name}:\n  want {want}\n  got  {line}");
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("SOAK FAILED: {mismatches} tenant(s) diverged from their reference");
        std::process::exit(1);
    }
    println!(
        "SOAK ok: {} tenants bit-identical under chaos (seed={seed0})",
        results.len()
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let role = args
        .next()
        .or_else(|| std::env::var("FABRIC_ROLE").ok())
        .unwrap_or_else(|| "coordinator".into());
    let mut listen: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => match args.next() {
                Some(a) => listen = Some(a),
                None => {
                    eprintln!("--listen requires an address, e.g. --listen 0.0.0.0:45117");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other:?}: only `--listen <addr>` is supported");
                std::process::exit(2);
            }
        }
    }
    match role.as_str() {
        "coordinator" => run_coordinator(listen),
        "worker" => {
            if listen.is_some() {
                eprintln!("--listen is a coordinator flag; workers use FABRIC_ADDR");
                std::process::exit(2);
            }
            run_worker_role();
        }
        "soak" => {
            if listen.is_some() {
                eprintln!("--listen is a coordinator flag; the soak runs in-process");
                std::process::exit(2);
            }
            run_soak();
        }
        other => {
            eprintln!("unknown role {other:?}: use `coordinator`, `worker`, or `soak`");
            std::process::exit(2);
        }
    }
}
