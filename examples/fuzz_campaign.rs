//! A complete fuzzing campaign: generate specifications for three
//! flagship drivers, boot the virtual kernel, and run a
//! coverage-guided campaign comparing the generated suite against the
//! pre-existing (partial) Syzkaller specs.
//!
//! Run with: `cargo run --release --example fuzz_campaign`
//!
//! Environment knobs (all optional; used by the CI kill-and-resume
//! smoke, which SIGKILLs a checkpointing run mid-campaign and demands
//! that resume reproduce the uninterrupted `RESULT` lines exactly,
//! and by the CI trace-replay smoke, which re-executes every retained
//! flight-recorder trace offline and demands bit-identity):
//!
//! * `FUZZ_EXECS` — per-campaign exec budget (default 20000);
//! * `FUZZ_CHECKPOINT` — base path for crash-safe per-epoch campaign
//!   snapshots (each suite checkpoints to `<base>.suiteN.ckpt`);
//! * `FUZZ_RESUME` — when set, resume each campaign from its snapshot
//!   instead of starting fresh, falling back to a fresh run when no
//!   usable snapshot exists (e.g. killed before the first boundary);
//! * `FUZZ_TRACE` — per-shard flight-recorder ring capacity override
//!   (0 disables tracing; the default is [`CampaignConfig`]'s);
//! * `FUZZ_TRACE_STORE` — base path to dump each campaign's retained
//!   trace stores (each suite writes `<base>.suiteN.trc`);
//! * `FUZZ_TRACE_REPLAY` — replay mode: instead of fuzzing, read the
//!   `<base>.suiteN.trc` stores written by a previous run, re-execute
//!   every retained trace from its header, and exit non-zero if any
//!   replay diverges from its recording (or any crash signature lacks
//!   a pinned trace replaying to the same signature).

use kernelgpt::core::KernelGpt;
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fuzzer::{
    cfg_successors, replay_trace, CampaignConfig, ExecScratch, ShardedCampaign, TraceStore,
};
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::syzlang::{SpecCache, SpecFile};
use kernelgpt::trace::{read_trace_file, write_trace_file};
use kernelgpt::vkernel::VKernel;
use std::path::PathBuf;

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let execs = env_u64("FUZZ_EXECS", 20_000);
    let checkpoint = std::env::var_os("FUZZ_CHECKPOINT").map(PathBuf::from);
    let resume = std::env::var_os("FUZZ_RESUME").is_some();
    let trace_ring = env_u64("FUZZ_TRACE", CampaignConfig::default().trace_ring as u64) as usize;
    let trace_store = std::env::var_os("FUZZ_TRACE_STORE").map(PathBuf::from);
    let trace_replay = std::env::var_os("FUZZ_TRACE_REPLAY").map(PathBuf::from);

    let blueprints = vec![flagship::dm(), flagship::cec(), flagship::sg()];
    let kc = KernelCorpus::from_blueprints(blueprints.clone());
    let kernel = VKernel::boot(blueprints);
    let handlers = find_handlers(kc.corpus());

    // Suite A: whatever already exists in "Syzkaller".
    let existing = kc.existing_suite();
    // Suite B: existing + KernelGPT-generated specs.
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let mut augmented = existing.clone();
    augmented.extend(report.specs());

    if let Some(base) = trace_replay {
        // Offline time-travel replay: the suites are regenerated
        // deterministically above, so the spec fingerprints stamped
        // into the stored traces validate against the same suites the
        // recording run fuzzed.
        let ok = replay_stores(&kernel, &kc, &base, &[existing, augmented]);
        std::process::exit(i32::from(!ok));
    }

    for (i, (name, suite)) in [("existing", existing), ("existing+KernelGPT", augmented)]
        .into_iter()
        .enumerate()
    {
        if suite.is_empty() {
            println!("{name:<20}: no specs, skipping");
            continue;
        }
        let cfg = CampaignConfig {
            execs,
            seed: 1,
            // Cross-shard seed exchange: every 2048 execs per shard,
            // each shard publishes its 4 best novel seeds to the hub
            // and imports what it has not seen. Exchange happens at
            // fixed exec boundaries in shard-id order, so the result
            // is still independent of the thread count.
            hub_epoch: 2_048,
            hub_top_k: 4,
            trace_ring,
            ..CampaignConfig::default()
        };
        // Sharded over all cores; the result is identical to a
        // sequential 8-shard run, just faster.
        let mut campaign = ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg);
        let ckpt = checkpoint
            .as_ref()
            .map(|base| base.with_extension(format!("suite{i}.ckpt")));
        if let Some(path) = &ckpt {
            // Announce every installed snapshot on stdout: harnesses
            // (the CI kill-and-resume job) wait for the first
            // CHECKPOINT line before killing the process, instead of
            // sleeping and hoping a snapshot exists by then.
            campaign = campaign
                .with_checkpoint(path)
                .with_on_checkpoint(move |n| println!("CHECKPOINT {i}.{n}"));
        }
        let (result, stores) = match (&ckpt, resume) {
            (Some(path), true) => match campaign.resume_traced(path) {
                Ok(r) => {
                    println!("{name:<20}: resumed from {}", path.display());
                    r
                }
                Err(e) => {
                    println!("{name:<20}: no usable snapshot ({e}); running fresh");
                    campaign.run_traced()
                }
            },
            _ => campaign.run_traced(),
        };
        println!(
            "{name:<20}: {:>5} blocks, {} unique crashes over {} execs (corpus {})",
            result.blocks(),
            result.unique_crashes(),
            result.execs,
            result.corpus_size,
        );
        for (title, (count, cve)) in &result.crashes {
            println!(
                "    crash: {title} x{count}{}",
                cve.as_deref()
                    .map(|c| format!(" ({c})"))
                    .unwrap_or_default()
            );
        }
        if let Some(base) = &trace_store {
            let path = base.with_extension(format!("suite{i}.trc"));
            write_trace_file(&path, &stores).expect("write trace store");
            println!("{name:<20}: traces written to {}", path.display());
        }
        // Stable machine-checkable lines: the kill-and-resume smoke
        // diffs the RESULT lines between an uninterrupted reference
        // run and an interrupted-then-resumed run; TRACE reports the
        // flight recorder's retained volume (wall-clock free, so it
        // is equally stable).
        println!(
            "RESULT {name}: blocks={} unique_crashes={} corpus={} execs={} fuel_exhausted={} triage={}",
            result.blocks(),
            result.unique_crashes(),
            result.corpus_size,
            result.execs,
            result.fuel_exhausted,
            result.triage.len(),
        );
        let stream_bytes: u64 = stores.iter().map(TraceStore::stream_bytes).sum();
        println!(
            "TRACE {name}: execs={} bits_per_exec={:.3}",
            result.execs,
            stream_bytes as f64 * 8.0 / (result.execs.max(1)) as f64,
        );
    }
}

/// Replay every retained trace of every suite's stored ring against
/// the live kernel. Returns `false` (and says why on stderr) when any
/// trace fails to replay bit-identically, or any pinned crash trace
/// no longer reproduces its recorded signature.
fn replay_stores(
    kernel: &VKernel,
    kc: &KernelCorpus,
    base: &std::path::Path,
    suites: &[Vec<SpecFile>],
) -> bool {
    let mut all_ok = true;
    for (i, suite) in suites.iter().enumerate() {
        if suite.is_empty() {
            continue;
        }
        let path = base.with_extension(format!("suite{i}.trc"));
        let stores = match read_trace_file(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("REPLAY suite{i}: cannot load {}: {e}", path.display());
                all_ok = false;
                continue;
            }
        };
        let (_db, lowered) = SpecCache::global().get_or_build_lowered(suite, kc.consts());
        let mut scratch = ExecScratch::from_lowered(lowered);
        let spec_fp = SpecCache::fingerprint(suite);
        let tables = cfg_successors(kernel);
        let (mut total, mut identical, mut crash_traces, mut crash_ok) = (0u64, 0u64, 0u64, 0u64);
        for store in &stores {
            for trace in store.iter() {
                total += 1;
                let is_crash = trace.crash.is_some();
                crash_traces += u64::from(is_crash);
                match replay_trace(kernel, &mut scratch, &tables, trace, spec_fp) {
                    Ok(o) if o.identical => {
                        identical += 1;
                        crash_ok += u64::from(is_crash && o.live_crash == trace.crash);
                    }
                    Ok(_) => eprintln!(
                        "REPLAY suite{i}: shard {} exec {} diverged from its recording",
                        trace.shard, trace.exec
                    ),
                    Err(e) => eprintln!(
                        "REPLAY suite{i}: shard {} exec {} failed: {e}",
                        trace.shard, trace.exec
                    ),
                }
            }
        }
        let ok = total > 0 && identical == total && crash_ok == crash_traces;
        all_ok &= ok;
        println!(
            "REPLAY suite{i}: traces={total} identical={identical} crash_traces={crash_traces} crash_identical={crash_ok} ok={ok}"
        );
    }
    all_ok
}
