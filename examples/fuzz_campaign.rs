//! A complete fuzzing campaign: generate specifications for three
//! flagship drivers, boot the virtual kernel, and run a
//! coverage-guided campaign comparing the generated suite against the
//! pre-existing (partial) Syzkaller specs.
//!
//! Run with: `cargo run --release --example fuzz_campaign`

use kernelgpt::core::KernelGpt;
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fuzzer::{CampaignConfig, ShardedCampaign};
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::vkernel::VKernel;

fn main() {
    let blueprints = vec![flagship::dm(), flagship::cec(), flagship::sg()];
    let kc = KernelCorpus::from_blueprints(blueprints.clone());
    let kernel = VKernel::boot(blueprints);
    let handlers = find_handlers(kc.corpus());

    // Suite A: whatever already exists in "Syzkaller".
    let existing = kc.existing_suite();
    // Suite B: existing + KernelGPT-generated specs.
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let mut augmented = existing.clone();
    augmented.extend(report.specs());

    for (name, suite) in [("existing", existing), ("existing+KernelGPT", augmented)] {
        if suite.is_empty() {
            println!("{name:<20}: no specs, skipping");
            continue;
        }
        let cfg = CampaignConfig {
            execs: 20_000,
            seed: 1,
            // Cross-shard seed exchange: every 2048 execs per shard,
            // each shard publishes its 4 best novel seeds to the hub
            // and imports what it has not seen. Exchange happens at
            // fixed exec boundaries in shard-id order, so the result
            // is still independent of the thread count.
            hub_epoch: 2_048,
            hub_top_k: 4,
            ..CampaignConfig::default()
        };
        // Sharded over all cores; the result is identical to a
        // sequential 8-shard run, just faster.
        let result = ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg).run();
        println!(
            "{name:<20}: {:>5} blocks, {} unique crashes over {} execs (corpus {})",
            result.blocks(),
            result.unique_crashes(),
            result.execs,
            result.corpus_size,
        );
        for (title, (count, cve)) in &result.crashes {
            println!(
                "    crash: {title} x{count}{}",
                cve.as_deref()
                    .map(|c| format!(" ({c})"))
                    .unwrap_or_default()
            );
        }
    }
}
