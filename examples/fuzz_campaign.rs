//! A complete fuzzing campaign: generate specifications for three
//! flagship drivers, boot the virtual kernel, and run a
//! coverage-guided campaign comparing the generated suite against the
//! pre-existing (partial) Syzkaller specs.
//!
//! Run with: `cargo run --release --example fuzz_campaign`
//!
//! Environment knobs (all optional; used by the CI kill-and-resume
//! smoke, which SIGKILLs a checkpointing run mid-campaign and demands
//! that resume reproduce the uninterrupted `RESULT` lines exactly):
//!
//! * `FUZZ_EXECS` — per-campaign exec budget (default 20000);
//! * `FUZZ_CHECKPOINT` — base path for crash-safe per-epoch campaign
//!   snapshots (each suite checkpoints to `<base>.suiteN.ckpt`);
//! * `FUZZ_RESUME` — when set, resume each campaign from its snapshot
//!   instead of starting fresh, falling back to a fresh run when no
//!   usable snapshot exists (e.g. killed before the first boundary).

use kernelgpt::core::KernelGpt;
use kernelgpt::csrc::{flagship, KernelCorpus};
use kernelgpt::extractor::find_handlers;
use kernelgpt::fuzzer::{CampaignConfig, ShardedCampaign};
use kernelgpt::llm::{ModelKind, OracleModel};
use kernelgpt::vkernel::VKernel;
use std::path::PathBuf;

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let execs = env_u64("FUZZ_EXECS", 20_000);
    let checkpoint = std::env::var_os("FUZZ_CHECKPOINT").map(PathBuf::from);
    let resume = std::env::var_os("FUZZ_RESUME").is_some();

    let blueprints = vec![flagship::dm(), flagship::cec(), flagship::sg()];
    let kc = KernelCorpus::from_blueprints(blueprints.clone());
    let kernel = VKernel::boot(blueprints);
    let handlers = find_handlers(kc.corpus());

    // Suite A: whatever already exists in "Syzkaller".
    let existing = kc.existing_suite();
    // Suite B: existing + KernelGPT-generated specs.
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = KernelGpt::new(&model, kc.corpus()).generate_all(&handlers, kc.consts());
    let mut augmented = existing.clone();
    augmented.extend(report.specs());

    for (i, (name, suite)) in [("existing", existing), ("existing+KernelGPT", augmented)]
        .into_iter()
        .enumerate()
    {
        if suite.is_empty() {
            println!("{name:<20}: no specs, skipping");
            continue;
        }
        let cfg = CampaignConfig {
            execs,
            seed: 1,
            // Cross-shard seed exchange: every 2048 execs per shard,
            // each shard publishes its 4 best novel seeds to the hub
            // and imports what it has not seen. Exchange happens at
            // fixed exec boundaries in shard-id order, so the result
            // is still independent of the thread count.
            hub_epoch: 2_048,
            hub_top_k: 4,
            ..CampaignConfig::default()
        };
        // Sharded over all cores; the result is identical to a
        // sequential 8-shard run, just faster.
        let mut campaign = ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg);
        let ckpt = checkpoint
            .as_ref()
            .map(|base| base.with_extension(format!("suite{i}.ckpt")));
        if let Some(path) = &ckpt {
            // Announce every installed snapshot on stdout: harnesses
            // (the CI kill-and-resume job) wait for the first
            // CHECKPOINT line before killing the process, instead of
            // sleeping and hoping a snapshot exists by then.
            campaign = campaign
                .with_checkpoint(path)
                .with_on_checkpoint(move |n| println!("CHECKPOINT {i}.{n}"));
        }
        let result = match (&ckpt, resume) {
            (Some(path), true) => match campaign.resume(path) {
                Ok(r) => {
                    println!("{name:<20}: resumed from {}", path.display());
                    r
                }
                Err(e) => {
                    println!("{name:<20}: no usable snapshot ({e}); running fresh");
                    campaign.run()
                }
            },
            _ => campaign.run(),
        };
        println!(
            "{name:<20}: {:>5} blocks, {} unique crashes over {} execs (corpus {})",
            result.blocks(),
            result.unique_crashes(),
            result.execs,
            result.corpus_size,
        );
        for (title, (count, cve)) in &result.crashes {
            println!(
                "    crash: {title} x{count}{}",
                cve.as_deref()
                    .map(|c| format!(" ({c})"))
                    .unwrap_or_default()
            );
        }
        // Stable machine-checkable line: the kill-and-resume smoke
        // diffs these between an uninterrupted reference run and an
        // interrupted-then-resumed run.
        println!(
            "RESULT {name}: blocks={} unique_crashes={} corpus={} execs={} fuel_exhausted={} triage={}",
            result.blocks(),
            result.unique_crashes(),
            result.corpus_size,
            result.execs,
            result.fuel_exhausted,
            result.triage.len(),
        );
    }
}
