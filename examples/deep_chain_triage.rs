//! Crash triage on the deep-chain workload: run a sharded campaign
//! over the four-driver deep-chain suite (resources handed across up
//! to four calls before the crashing ioctl), then print the triage
//! report — per crash signature: first-seen epoch/shard, dedup count,
//! and the raw vs ddmin-minimized reproducer.
//!
//! Run with: `cargo run --release --example deep_chain_triage`

use kernelgpt::csrc::{deepchain, KernelCorpus};
use kernelgpt::fuzzer::{CampaignConfig, ShardedCampaign};
use kernelgpt::vkernel::VKernel;

fn main() {
    let kc = KernelCorpus::from_blueprints(deepchain::suite());
    let suite: Vec<_> = kc
        .blueprints()
        .iter()
        .map(|bp| bp.ground_truth_spec())
        .collect();
    let kernel = VKernel::boot(deepchain::suite());
    let cfg = CampaignConfig {
        execs: 40_000,
        seed: 1,
        max_prog_len: 12,
        hub_epoch: 128,
        hub_top_k: 4,
        ..CampaignConfig::default()
    };
    let result = ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg).run();
    let db = kernelgpt::syzlang::SpecCache::global().get_or_build(&suite);

    println!(
        "deep-chain campaign: {} blocks, {} crash titles, {} triaged signatures over {} execs\n",
        result.blocks(),
        result.unique_crashes(),
        result.triage.len(),
        result.execs,
    );
    for entry in result.triage.entries() {
        let sig = entry.signature;
        println!(
            "{} (depth {}, {:?}, site {})",
            entry.title, sig.chain_depth, sig.sanitizer, sig.site
        );
        println!(
            "    first seen epoch {} shard {}, {} crashing execs",
            entry.first_epoch, entry.first_shard, entry.count
        );
        println!(
            "    reproducer: {} calls raw -> {} calls minimized ({:.1}x, {} replays)",
            entry.raw.len(),
            entry.minimized.len(),
            entry.shrink_ratio(),
            entry.minimize_execs,
        );
        for line in entry.minimized.display(&db).lines() {
            println!("        {line}");
        }
    }
    println!(
        "\nmean shrink ratio {:.2}x over {} signatures",
        result.triage.mean_shrink_ratio(),
        result.triage.len()
    );
}
