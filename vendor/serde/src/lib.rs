//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types
//! to keep them serialization-ready, but never actually produces a
//! wire format (no `serde_json` etc. in the tree). Since the build
//! environment cannot fetch crates.io, this crate supplies the two
//! trait names as blanket-satisfied markers and re-exports no-op
//! derive macros, so `#[derive(Serialize, Deserialize)]` compiles
//! unchanged. Swap back to real serde the day an actual wire format
//! is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type is serialization-ready. Blanket-satisfied.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker: the type is deserialization-ready. Blanket-satisfied.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
