//! Deterministic, dependency-free stand-in for the subset of the
//! `rand` crate API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! real `rand` cannot be fetched. This vendored crate implements the
//! exact call surface the workspace needs — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] convenience methods
//! (`random`, `random_range`, `random_bool`) and
//! [`seq::IndexedRandom::choose`] — on top of a fixed, documented
//! generator (xoshiro256** seeded through SplitMix64).
//!
//! Determinism is load-bearing: fuzzing campaigns, the synthetic
//! corpus, and the shard merge-invariance tests all assume that the
//! same seed yields the same stream on every platform, forever. Do not
//! change the generator without updating every recorded experiment.

/// Source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// xoshiro256** — small, fast, and statistically strong enough for
    /// fuzzing workloads. State is seeded via SplitMix64 so that
    /// nearby seeds produce uncorrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for checkpointing a
        /// campaign mid-stream. Restoring via [`StdRng::from_state`]
        /// continues the exact stream from this point.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words previously
        /// captured with [`StdRng::state`]. The generator itself is
        /// unchanged (this is restore, not reseeding): the stream
        /// after `from_state(r.state())` is bit-identical to
        /// continuing `r`.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut x = seed;
            let mut split = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [split(), split(), split(), split()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Map 64 uniform bits onto `Self`.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn from_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`random_range`](RngExt::random_range)
/// bounds. Ranges with negative bounds are not supported (the
/// workspace never uses them).
pub trait SampleUniform: Copy {
    /// Widen to u64.
    fn to_u64(self) -> u64;
    /// Narrow from u64 (the value is always in range by construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_lossless, clippy::cast_sign_loss)]
            fn to_u64(self) -> u64 { self as u64 }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn from_u64(v: u64) -> $t { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(hi > lo, "cannot sample empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(hi >= lo, "cannot sample empty range");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full u64 domain.
            T::from_u64(rng.next_u64())
        } else {
            T::from_u64(lo + rng.next_u64() % span)
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors the `rand` 0.9 `Rng` extension trait).
pub trait RngExt: RngCore {
    /// A uniform value of `T`'s full domain.
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform value within `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_bits_standard(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

// Small shim so random_bool doesn't collide with std's f64::from_bits.
trait F64Uniform {
    fn from_bits_standard(bits: u64) -> f64;
}
impl F64Uniform for f64 {
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

/// Slice sampling.
pub mod seq {
    use crate::RngCore;

    /// Random element selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        #[allow(clippy::cast_possible_truncation)]
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..37 {
            let _ = a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = r.random_range(1..=8usize);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
