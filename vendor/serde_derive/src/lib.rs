//! No-op derive macros for the vendored `serde` stand-in.
//!
//! The traits in the sibling `serde` crate are blanket-implemented,
//! so the derives only need to exist (and accept any input) — they
//! expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
