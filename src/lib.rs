//! # kernelgpt
//!
//! Facade over the KernelGPT-reproduction workspace. See the
//! individual crates for the real APIs:
//!
//! * [`syzlang`] — the specification language (parser, validator,
//!   layout engine, encoder);
//! * [`csrc`] — mini-C frontend + the synthetic kernel corpus
//!   (blueprints, flagship drivers, procedural population);
//! * [`extractor`] — operation-handler discovery / `ExtractCode`;
//! * [`llm`] — the analysis-LLM abstraction and the deterministic
//!   oracle with GPT-4/-4o/-3.5 capability profiles;
//! * [`core`] — KernelGPT itself (Algorithm 1, staged analysis,
//!   validation + repair);
//! * [`syzdescribe`] — the rule-based static baseline;
//! * [`vkernel`] — the virtual kernel under test (coverage, bugs);
//! * [`fuzzer`] — the spec-guided coverage-directed fuzzer;
//! * [`fabric`] — the distributed campaign fabric (coordinator,
//!   worker leases, delta wire protocol);
//! * [`triage`] — crash triage: signature dedup, reproducer capture,
//!   deterministic ddmin minimization;
//! * [`trace`] — the flight recorder: compact per-exec trace capture,
//!   pinned crash rings, and offline trace stores.

pub use kgpt_core as core;
pub use kgpt_csrc as csrc;
pub use kgpt_extractor as extractor;
pub use kgpt_fabric as fabric;
pub use kgpt_fuzzer as fuzzer;
pub use kgpt_llm as llm;
pub use kgpt_syzdescribe as syzdescribe;
pub use kgpt_syzlang as syzlang;
pub use kgpt_trace as trace;
pub use kgpt_triage as triage;
pub use kgpt_vkernel as vkernel;
