//! Deterministic fault injection for campaign durability testing.
//!
//! A [`FaultPlan`] is a fixed list of faults the campaign driver
//! injects at chosen epoch boundaries: checkpoint-write failures
//! (exercising retry-with-backoff and the keep-previous-good path),
//! post-write snapshot truncation/corruption (exercising
//! [`crate::checkpoint::CampaignSnapshot::load`]'s previous-good
//! fallback), and mid-epoch shard aborts (exercising quarantine and
//! sequential re-execution of the poisoned shard). Plans are either
//! built explicitly or derived from a seed ([`FaultPlan::from_seed`]),
//! so every recovery path runs deterministically in CI instead of
//! waiting for real crashes — and the durability invariant (resume is
//! bit-identical) is asserted *under* every fault, not just the happy
//! path.

use crate::corpus::SplitMix64;

/// One injected fault, pinned to a driver epoch (the boundary counter
/// that starts at 0 and increments after every chunk+drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The first `attempts` attempts to write the checkpoint at
    /// `epoch` fail; the driver retries with deterministic backoff up
    /// to its attempt cap and, if all fail, skips the boundary keeping
    /// the previous-good snapshot.
    WriteFail {
        /// Boundary at which writes fail.
        epoch: u64,
        /// How many leading attempts fail.
        attempts: u32,
    },
    /// The snapshot written at `epoch` is truncated on disk afterwards
    /// (a torn write): a later resume must fall back to the
    /// previous-good rotation.
    TruncateSnapshot {
        /// Boundary whose snapshot gets torn.
        epoch: u64,
    },
    /// One byte of the snapshot written at `epoch` is flipped on disk
    /// afterwards (bitrot): the checksum must reject it and resume
    /// falls back to the previous-good rotation.
    CorruptSnapshot {
        /// Boundary whose snapshot rots.
        epoch: u64,
        /// Payload byte index to flip (wrapped into range).
        byte: usize,
    },
    /// Shard `shard`'s in-memory state is poisoned mid-epoch at
    /// `epoch`: the driver quarantines it (discards the poisoned
    /// state), restores the shard from its boundary snapshot, and
    /// re-runs its epoch sequentially — the merged result is
    /// bit-identical to an undisturbed run.
    ShardAbort {
        /// Boundary whose chunk the abort hits.
        epoch: u64,
        /// Victim shard id.
        shard: u32,
    },
    /// Fabric: the `nth` frame (0-based, counted per faulty transport
    /// end) vanishes in transit. The receiver sees nothing; the
    /// sender's retry-on-timeout recovers, and the campaign result is
    /// unchanged.
    DropFrame {
        /// Which outbound frame to drop.
        nth: u64,
    },
    /// Fabric: the `nth` frame is delivered twice. Duplicate delta
    /// delivery is idempotent (the coordinator re-acks without
    /// re-merging) and duplicate replies are ignored by the worker, so
    /// the campaign result is unchanged.
    DuplicateFrame {
        /// Which outbound frame to duplicate.
        nth: u64,
    },
    /// Fabric: the worker holding lease slot `worker` dies silently
    /// (as if SIGKILLed) instead of shipping its delta for `boundary`.
    /// Its uncommitted epoch is lost; the coordinator expires the
    /// lease and the next registrant re-runs the range from the last
    /// committed boundary — bit-identically.
    WorkerKill {
        /// Lease slot (range index) of the victim.
        worker: u32,
        /// Boundary whose delta is never shipped (1-based: the first
        /// epoch a fresh lease runs completes boundary 1).
        boundary: u64,
    },
    /// Fabric: the worker holding lease slot `worker` stalls past its
    /// lease deadline before shipping its delta for `boundary`. The
    /// coordinator expires the lease and reassigns the range; the
    /// late delta lands on a closed transport and is discarded.
    StallLease {
        /// Lease slot (range index) of the stalled worker.
        worker: u32,
        /// Boundary whose delta is delayed past the deadline.
        boundary: u64,
    },
    /// Tenancy: tenant `tenant`'s exec quota is slashed so its budget
    /// exhausts at boundary `boundary`. The service must finish that
    /// boundary, emit a `budget_exhausted` result bit-identical to an
    /// unlimited run halted at the same boundary, and release the
    /// tenant's leases — never a mid-epoch abort.
    BudgetStarve {
        /// Victim tenant id (admission order).
        tenant: u32,
        /// Boundary at which the exec quota runs dry (1-based, like
        /// the fabric boundary counter).
        boundary: u64,
    },
    /// Tenancy: the faulty transport corrupts a run of outbound
    /// frames (`from_nth..from_nth + count`, 0-based) by flipping one
    /// byte in each — a byzantine worker. Every corrupt frame is
    /// checksum-rejected and counted as a strike; enough strikes
    /// quarantine the worker and reassign its range.
    ByzantineFrames {
        /// First outbound frame to corrupt.
        from_nth: u64,
        /// How many consecutive frames to corrupt.
        count: u32,
    },
    /// Tenancy: a flapping worker registers, takes a grant, and
    /// disconnects without running — `flaps` times in a row. Each
    /// flap revokes a lease (a strike); at the strike limit the
    /// worker is quarantined and its re-registrations refused for the
    /// cooldown.
    WorkerFlap {
        /// How many register-then-disconnect cycles to perform.
        flaps: u32,
    },
}

/// A deterministic set of faults to inject into one campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults (the production default).
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Derive a plan covering every fault kind from a seed: one
    /// write-failure burst, one truncation, one corruption, and one
    /// shard abort, at seed-chosen epochs in `0..epochs` against
    /// `shards` shards. A pure function of its inputs — the same seed
    /// always injects the same faults at the same boundaries.
    #[must_use]
    pub fn from_seed(seed: u64, epochs: u64, shards: u32) -> FaultPlan {
        let epochs = epochs.max(1);
        let mut rng = SplitMix64::new(seed);
        FaultPlan::none()
            .with(Fault::WriteFail {
                epoch: rng.bounded(epochs),
                attempts: 1 + u32::try_from(rng.bounded(2)).unwrap_or(0),
            })
            .with(Fault::TruncateSnapshot {
                epoch: rng.bounded(epochs),
            })
            .with(Fault::CorruptSnapshot {
                epoch: rng.bounded(epochs),
                byte: usize::try_from(rng.bounded(4096)).unwrap_or(0),
            })
            .with(Fault::ShardAbort {
                epoch: rng.bounded(epochs),
                shard: u32::try_from(rng.bounded(u64::from(shards.max(1)))).unwrap_or(0),
            })
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in injection order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// How many leading write attempts fail at `epoch` (summed over
    /// matching faults).
    pub(crate) fn write_fail_attempts(&self, epoch: u64) -> u32 {
        self.faults
            .iter()
            .map(|f| match f {
                Fault::WriteFail { epoch: e, attempts } if *e == epoch => *attempts,
                _ => 0,
            })
            .sum()
    }

    /// The shard to abort mid-epoch at `epoch`, if any (first match
    /// wins).
    pub(crate) fn shard_abort(&self, epoch: u64) -> Option<u32> {
        self.faults.iter().find_map(|f| match f {
            Fault::ShardAbort { epoch: e, shard } if *e == epoch => Some(*shard),
            _ => None,
        })
    }

    /// Post-write damage to apply to the snapshot written at `epoch`:
    /// `Some(None)` truncates, `Some(Some(byte))` flips that payload
    /// byte (first match wins).
    pub(crate) fn post_write_damage(&self, epoch: u64) -> Option<Option<usize>> {
        self.faults.iter().find_map(|f| match f {
            Fault::TruncateSnapshot { epoch: e } if *e == epoch => Some(None),
            Fault::CorruptSnapshot { epoch: e, byte } if *e == epoch => Some(Some(*byte)),
            _ => None,
        })
    }

    /// Whether the `nth` outbound frame of a faulty fabric transport
    /// should be dropped.
    #[must_use]
    pub fn drop_frame(&self, nth: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::DropFrame { nth: n } if *n == nth))
    }

    /// Whether the `nth` outbound frame of a faulty fabric transport
    /// should be delivered twice.
    #[must_use]
    pub fn duplicate_frame(&self, nth: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::DuplicateFrame { nth: n } if *n == nth))
    }

    /// Whether the worker on lease slot `worker` dies silently instead
    /// of shipping its delta for `boundary`.
    #[must_use]
    pub fn worker_kill(&self, worker: u32, boundary: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::WorkerKill { worker: w, boundary: b }
                if *w == worker && *b == boundary)
        })
    }

    /// Whether the worker on lease slot `worker` stalls past its lease
    /// deadline before shipping its delta for `boundary`.
    #[must_use]
    pub fn stall_lease(&self, worker: u32, boundary: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::StallLease { worker: w, boundary: b }
                if *w == worker && *b == boundary)
        })
    }

    /// The boundary at which tenant `tenant`'s exec budget runs dry,
    /// if a [`Fault::BudgetStarve`] targets it (first match wins).
    #[must_use]
    pub fn budget_starve(&self, tenant: u32) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::BudgetStarve {
                tenant: t,
                boundary,
            } if *t == tenant => Some(*boundary),
            _ => None,
        })
    }

    /// Whether the `nth` outbound frame of a faulty fabric transport
    /// should be corrupted (one byte flipped) — byzantine behaviour
    /// the receiver must checksum-reject and strike.
    #[must_use]
    pub fn byzantine_frame(&self, nth: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::ByzantineFrames { from_nth, count }
                if (*from_nth..from_nth.saturating_add(u64::from(*count))).contains(&nth))
        })
    }

    /// How many register-then-disconnect cycles a flapping worker
    /// under this plan performs (summed over matching faults).
    #[must_use]
    pub fn worker_flaps(&self) -> u32 {
        self.faults
            .iter()
            .map(|f| match f {
                Fault::WorkerFlap { flaps } => *flaps,
                _ => 0,
            })
            .sum()
    }

    /// Derive a fabric plan covering the whole distributed failure
    /// matrix from a seed: one dropped frame, one duplicated frame,
    /// one worker kill, and one stalled lease, at seed-chosen
    /// boundaries in `1..=boundaries` against `workers` lease slots.
    /// A pure function of its inputs, like [`FaultPlan::from_seed`].
    #[must_use]
    pub fn fabric_from_seed(seed: u64, boundaries: u64, workers: u32) -> FaultPlan {
        let boundaries = boundaries.max(1);
        let workers = u64::from(workers.max(1));
        let mut rng = SplitMix64::new(seed);
        FaultPlan::none()
            .with(Fault::DropFrame {
                nth: rng.bounded(8),
            })
            .with(Fault::DuplicateFrame {
                nth: rng.bounded(8),
            })
            .with(Fault::WorkerKill {
                worker: u32::try_from(rng.bounded(workers)).unwrap_or(0),
                boundary: 1 + rng.bounded(boundaries),
            })
            .with(Fault::StallLease {
                worker: u32::try_from(rng.bounded(workers)).unwrap_or(0),
                boundary: 1 + rng.bounded(boundaries),
            })
    }

    /// Derive a multi-tenant **chaos plan** from a seed: the whole
    /// fabric failure matrix of [`FaultPlan::fabric_from_seed`] plus
    /// the tenancy faults — one budget-starved tenant (quota dry at a
    /// seed-chosen non-final boundary), one byzantine frame burst,
    /// and one flapping worker. A pure function of its inputs: the
    /// same seed always composes the same chaos.
    #[must_use]
    pub fn chaos_from_seed(seed: u64, tenants: u32, boundaries: u64, workers: u32) -> FaultPlan {
        let boundaries = boundaries.max(1);
        let tenants = u64::from(tenants.max(1));
        let mut rng = SplitMix64::new(seed ^ 0x43_48_41_4F_53); // "CHAOS"
        FaultPlan::fabric_from_seed(seed, boundaries, workers)
            .with(Fault::BudgetStarve {
                tenant: u32::try_from(rng.bounded(tenants)).unwrap_or(0),
                // Strictly before the natural final boundary, so the
                // starved tenant really is truncated.
                boundary: 1 + rng.bounded(boundaries.saturating_sub(1).max(1)),
            })
            .with(Fault::ByzantineFrames {
                from_nth: 1 + rng.bounded(4),
                count: 1 + u32::try_from(rng.bounded(3)).unwrap_or(0),
            })
            .with(Fault::WorkerFlap {
                flaps: 1 + u32::try_from(rng.bounded(3)).unwrap_or(0),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_cover_every_kind() {
        let a = FaultPlan::from_seed(42, 10, 8);
        assert_eq!(a, FaultPlan::from_seed(42, 10, 8));
        assert_ne!(a, FaultPlan::from_seed(43, 10, 8));
        assert_eq!(a.faults().len(), 4);
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::WriteFail { .. })));
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::TruncateSnapshot { .. })));
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::CorruptSnapshot { .. })));
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::ShardAbort { .. })));
        for f in a.faults() {
            match *f {
                Fault::WriteFail { epoch, attempts } => {
                    assert!(epoch < 10 && (1..=2).contains(&attempts));
                }
                Fault::TruncateSnapshot { epoch } => assert!(epoch < 10),
                Fault::CorruptSnapshot { epoch, .. } => assert!(epoch < 10),
                Fault::ShardAbort { epoch, shard } => assert!(epoch < 10 && shard < 8),
                f => panic!("from_seed injected a fabric fault: {f:?}"),
            }
        }
    }

    #[test]
    fn seeded_fabric_plans_cover_the_distributed_failure_matrix() {
        let a = FaultPlan::fabric_from_seed(42, 6, 2);
        assert_eq!(a, FaultPlan::fabric_from_seed(42, 6, 2));
        assert_ne!(a, FaultPlan::fabric_from_seed(43, 6, 2));
        assert_eq!(a.faults().len(), 4);
        for f in a.faults() {
            match *f {
                Fault::DropFrame { nth } | Fault::DuplicateFrame { nth } => assert!(nth < 8),
                Fault::WorkerKill { worker, boundary } | Fault::StallLease { worker, boundary } => {
                    assert!(worker < 2 && (1..=6).contains(&boundary));
                }
                f => panic!("fabric_from_seed injected a durability fault: {f:?}"),
            }
        }
        // The accessors hit exactly their injected coordinates.
        let plan = FaultPlan::none()
            .with(Fault::DropFrame { nth: 3 })
            .with(Fault::DuplicateFrame { nth: 5 })
            .with(Fault::WorkerKill {
                worker: 1,
                boundary: 2,
            })
            .with(Fault::StallLease {
                worker: 0,
                boundary: 4,
            });
        assert!(plan.drop_frame(3) && !plan.drop_frame(4));
        assert!(plan.duplicate_frame(5) && !plan.duplicate_frame(3));
        assert!(plan.worker_kill(1, 2) && !plan.worker_kill(0, 2) && !plan.worker_kill(1, 3));
        assert!(plan.stall_lease(0, 4) && !plan.stall_lease(1, 4) && !plan.stall_lease(0, 2));
    }

    #[test]
    fn seeded_chaos_plans_cover_the_tenancy_fault_matrix() {
        let a = FaultPlan::chaos_from_seed(42, 3, 6, 2);
        assert_eq!(a, FaultPlan::chaos_from_seed(42, 3, 6, 2));
        assert_ne!(a, FaultPlan::chaos_from_seed(43, 3, 6, 2));
        // The fabric matrix plus the three tenancy faults.
        assert_eq!(a.faults().len(), 7);
        let starved: Vec<u32> = a
            .faults()
            .iter()
            .filter_map(|f| match f {
                Fault::BudgetStarve { tenant, boundary } => {
                    assert!(
                        (1..6).contains(boundary),
                        "starve before the final boundary"
                    );
                    Some(*tenant)
                }
                _ => None,
            })
            .collect();
        assert_eq!(starved.len(), 1);
        assert!(starved[0] < 3);
        assert!(a.budget_starve(starved[0]).is_some());
        assert!(a.worker_flaps() >= 1);
        assert!(a
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::ByzantineFrames { .. })));
    }

    #[test]
    fn tenancy_accessors_match_only_their_coordinates() {
        let plan = FaultPlan::none()
            .with(Fault::BudgetStarve {
                tenant: 2,
                boundary: 3,
            })
            .with(Fault::ByzantineFrames {
                from_nth: 4,
                count: 2,
            })
            .with(Fault::WorkerFlap { flaps: 3 });
        assert_eq!(plan.budget_starve(2), Some(3));
        assert_eq!(plan.budget_starve(1), None);
        assert!(!plan.byzantine_frame(3));
        assert!(plan.byzantine_frame(4) && plan.byzantine_frame(5));
        assert!(!plan.byzantine_frame(6));
        assert_eq!(plan.worker_flaps(), 3);
        assert_eq!(FaultPlan::none().worker_flaps(), 0);
    }

    #[test]
    fn lookups_match_only_their_epoch() {
        let plan = FaultPlan::none()
            .with(Fault::WriteFail {
                epoch: 3,
                attempts: 2,
            })
            .with(Fault::ShardAbort { epoch: 5, shard: 1 })
            .with(Fault::TruncateSnapshot { epoch: 6 })
            .with(Fault::CorruptSnapshot { epoch: 7, byte: 40 });
        assert_eq!(plan.write_fail_attempts(3), 2);
        assert_eq!(plan.write_fail_attempts(4), 0);
        assert_eq!(plan.shard_abort(5), Some(1));
        assert_eq!(plan.shard_abort(3), None);
        assert_eq!(plan.post_write_damage(6), Some(None));
        assert_eq!(plan.post_write_damage(7), Some(Some(40)));
        assert_eq!(plan.post_write_damage(5), None);
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }
}
