//! Deterministic cross-shard seed exchange (the syzkaller-style hub).
//!
//! Shards of a [`crate::ShardedCampaign`] fuzz independent corpora;
//! without exchange a seed that unlocks new coverage in shard 0 never
//! reaches shard 7. A [`SeedHub`] fixes that while keeping the
//! campaign a pure function of `(config, shards)`:
//!
//! * exchange happens only at **fixed exec-epoch boundaries**
//!   (`CampaignConfig::hub_epoch` executions per shard), where every
//!   shard has been run to the same point — thread scheduling can
//!   never reorder it;
//! * at a boundary, each shard **publishes** up to `hub_top_k` seeds
//!   *in shard-id order* — its highest-weight entries among those
//!   still claiming coverage new to the hub (a published seed is kept
//!   only for the blocks no earlier-published seed already claims, so
//!   on contested coverage the lowest shard id wins — pinned by
//!   tests);
//! * each shard then **imports** every hub seed from other shards
//!   whose claimed blocks it has not seen, keyed by the unknown part.
//!
//! The hub never caps its seed list explicitly: dedup-by-coverage
//! bounds it at one seed per distinct coverage increment, i.e. at
//! most the number of coverable blocks.

use crate::corpus::Corpus;
use crate::program::Program;
use kgpt_vkernel::CoverageMap;

/// One seed retained by the hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubSeed {
    /// Shard that published it.
    pub shard: u32,
    /// The program.
    pub program: Program,
    /// Blocks this seed claims — the part of its corpus-entry key no
    /// earlier-published seed already claimed.
    pub contributed: CoverageMap,
}

/// Cross-shard exchange point. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct SeedHub {
    seeds: Vec<HubSeed>,
    /// Union of all claimed blocks (the publish-side dedup key).
    coverage: CoverageMap,
    top_k: usize,
    published: u64,
}

impl SeedHub {
    /// Empty hub; each shard publishes up to `top_k` best seeds per
    /// exchange. `top_k = 0` publishes nothing, making every
    /// exchange a no-op.
    #[must_use]
    pub fn new(top_k: usize) -> SeedHub {
        SeedHub {
            seeds: Vec::new(),
            coverage: CoverageMap::new(),
            top_k,
            published: 0,
        }
    }

    /// Retained seeds, in publication order.
    #[must_use]
    pub fn seeds(&self) -> &[HubSeed] {
        &self.seeds
    }

    /// Union of all claimed blocks.
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// Publish attempts so far (including rejected duplicates).
    #[must_use]
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Per-shard publication budget this hub was built with.
    #[must_use]
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Rebuild a hub from checkpointed parts. Continuing the result
    /// (publish/import at later boundaries) is bit-identical to
    /// continuing the hub the parts were captured from.
    #[must_use]
    pub fn from_parts(
        top_k: usize,
        seeds: Vec<HubSeed>,
        coverage: CoverageMap,
        published: u64,
    ) -> SeedHub {
        SeedHub {
            seeds,
            coverage,
            top_k,
            published,
        }
    }

    /// Publish up to `top_k` of `shard`'s seeds: entries are offered
    /// in weight order (best first) and one is retained only if it
    /// claims blocks no earlier publication claimed — so the slots go
    /// to the shard's most productive *novel* seeds, not to heavy
    /// early seeds every shard already has. The caller must publish
    /// shards in ascending id order at every boundary, which makes
    /// hub contents independent of the thread count. Returns how many
    /// seeds were retained.
    pub fn publish(&mut self, shard: u32, corpus: &Corpus) -> usize {
        // Cheap saturation guard: when the corpus holds no block the
        // hub has not claimed, no entry can be retained — skip the
        // ranking sort and the per-entry scans entirely (the common
        // case once shard coverages converge). Pure function of
        // (corpus, hub) state, so thread-invariance is unaffected.
        if self.top_k == 0 || self.coverage.new_blocks_in(corpus.coverage()) == 0 {
            return 0;
        }
        let mut retained = 0usize;
        for idx in corpus.top_indices(corpus.len()) {
            if retained == self.top_k {
                break;
            }
            self.published += 1;
            let entry = corpus.entry(idx);
            if self.coverage.new_blocks_in(&entry.contributed) == 0 {
                continue;
            }
            let contributed = self.coverage.merge_diff(&entry.contributed);
            self.seeds.push(HubSeed {
                shard,
                program: entry.program.clone(),
                contributed,
            });
            retained += 1;
        }
        retained
    }

    /// Import every hub seed published by *other* shards that claims
    /// blocks `corpus` has not seen. Idempotent: a second import at
    /// the same boundary is a no-op, and imports never touch the
    /// corpus's selection stream. Returns how many seeds were taken.
    pub fn import_into(&self, shard: u32, corpus: &mut Corpus) -> usize {
        let mut taken = 0usize;
        for seed in &self.seeds {
            if seed.shard == shard {
                continue;
            }
            if corpus.admit_foreign(&seed.program, &seed.contributed) {
                taken += 1;
            }
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cov(blocks: &[u64]) -> CoverageMap {
        blocks.iter().copied().collect()
    }

    fn corpus_with(entries: &[&[u64]]) -> Corpus {
        let mut c = Corpus::new(64, 0);
        for blocks in entries {
            assert!(c.observe(Program::default(), &cov(blocks), None) > 0);
        }
        c
    }

    #[test]
    fn first_publisher_wins_contested_coverage() {
        let mut hub = SeedHub::new(4);
        // Shards 0 and 1 both reached block 5; shard 1 also has 9.
        let a = corpus_with(&[&[1, 5]]);
        let b = corpus_with(&[&[5, 9]]);
        assert_eq!(hub.publish(0, &a), 1);
        assert_eq!(hub.publish(1, &b), 1);
        assert_eq!(hub.seeds().len(), 2);
        assert_eq!(hub.seeds()[0].shard, 0);
        assert_eq!(hub.seeds()[0].contributed, cov(&[1, 5]));
        // Shard 1's seed keeps only what shard 0 did not claim.
        assert_eq!(hub.seeds()[1].shard, 1);
        assert_eq!(hub.seeds()[1].contributed, cov(&[9]));
        assert_eq!(hub.coverage(), &cov(&[1, 5, 9]));
    }

    #[test]
    fn republishing_identical_seeds_is_a_no_op() {
        let mut hub = SeedHub::new(2);
        let a = corpus_with(&[&[1], &[2]]);
        assert_eq!(hub.publish(0, &a), 2);
        assert_eq!(hub.publish(0, &a), 0);
        assert_eq!(hub.seeds().len(), 2);
        // The second publish is cut off by the saturation guard
        // before offering anything.
        assert_eq!(hub.published(), 2);
    }

    #[test]
    fn zero_top_k_publishes_nothing() {
        let mut hub = SeedHub::new(0);
        let a = corpus_with(&[&[1], &[2]]);
        assert_eq!(hub.publish(0, &a), 0);
        assert!(hub.seeds().is_empty());
        let mut b = corpus_with(&[&[9]]);
        assert_eq!(hub.import_into(1, &mut b), 0);
    }

    #[test]
    fn top_k_limits_what_a_shard_publishes() {
        let mut hub = SeedHub::new(1);
        // The 3-block entry outweighs the single-block one.
        let a = corpus_with(&[&[1], &[10, 11, 12]]);
        assert_eq!(hub.publish(0, &a), 1);
        assert_eq!(hub.seeds()[0].contributed, cov(&[10, 11, 12]));
    }

    #[test]
    fn imported_seeds_carry_no_publisher_productivity() {
        // Regression guard against double-counting hub-imported
        // seeds' productivity: a published seed's local exec/hit
        // stats (its fatigue and earned weight in the publishing
        // shard) must NOT travel through the hub. The importing
        // corpus admits a fresh entry — zero execs, zero hits, weight
        // derived only from the claimed-novel blocks — and a repeat
        // import at the next boundary must change nothing.
        let mut publisher = Corpus::new(64, 0);
        assert!(publisher.observe(Program::default(), &cov(&[1, 2, 3]), None) > 0);
        // Earn productivity in the publishing shard: fatigue from
        // selections plus a mutation hit.
        for _ in 0..10 {
            let _ = publisher.select();
        }
        assert!(publisher.observe(Program::default(), &cov(&[9]), Some(0)) > 0);
        assert_eq!(publisher.entry(0).execs, 10);
        assert_eq!(publisher.entry(0).hits, 1);

        let mut hub = SeedHub::new(4);
        assert_eq!(hub.publish(0, &publisher), 2);

        let mut importer = Corpus::new(64, 7);
        assert!(importer.observe(Program::default(), &cov(&[100]), None) > 0);
        assert_eq!(hub.import_into(1, &mut importer), 2);
        assert_eq!(importer.len(), 3);
        for idx in 1..importer.len() {
            let e = importer.entry(idx);
            assert_eq!((e.execs, e.hits), (0, 0), "entry {idx} inherited stats");
        }
        // The imported claim is counted once in the corpus coverage
        // and once in `stats.imported` — a second boundary's import
        // pass is a pure no-op (no new entries, no stat inflation).
        let stats = importer.stats();
        assert_eq!(stats.imported, 2);
        assert_eq!(hub.import_into(1, &mut importer), 0);
        assert_eq!(importer.len(), 3);
        assert_eq!(importer.stats(), stats);
        // Selection weights stay internally consistent: the
        // incremental total equals the sum over entries (weights feed
        // scheduling, so drift here would silently bias every later
        // pick — the "double-counted productivity" failure mode).
        let sum: u64 = (0..importer.len())
            .map(|i| importer.entry(i).weight())
            .sum();
        assert_eq!(importer.total_weight(), sum);
        let sum: u64 = (0..publisher.len())
            .map(|i| publisher.entry(i).weight())
            .sum();
        assert_eq!(publisher.total_weight(), sum);
    }

    #[test]
    fn import_skips_own_seeds_and_is_idempotent() {
        let mut hub = SeedHub::new(4);
        let a = corpus_with(&[&[1, 2]]);
        let mut b = corpus_with(&[&[2, 3]]);
        hub.publish(0, &a);
        hub.publish(1, &b);
        // Shard 1 takes shard 0's seed for block 1 (2 is known).
        assert_eq!(hub.import_into(1, &mut b), 1);
        assert_eq!(b.entry(1).contributed, cov(&[1]));
        assert_eq!(hub.import_into(1, &mut b), 0, "idempotent");
        // Shard 0 takes shard 1's claim on block 3.
        let mut a = a;
        assert_eq!(hub.import_into(0, &mut a), 1);
        assert_eq!(a.coverage(), &cov(&[1, 2, 3]));
    }
}
