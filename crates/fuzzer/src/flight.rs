//! Flight-recorder wiring: per-shard trace capture during campaigns
//! and the deterministic time-travel replayer.
//!
//! The trace *formats* live in [`kgpt_trace`]; this module connects
//! them to the campaign loop. A `ShardTracer` rides inside each
//! `ShardState`: after every execution it delta-codes the VM's
//! [`kgpt_vkernel::TraceLog`] against the kernel's
//! [`CfgSuccessors`] table and files the result in the shard's
//! [`TraceStore`] (bounded ring + pinned crash traces). Because shard
//! state evolves schedule-independently, the stores are a pure
//! function of `(config, shards)` — the worker thread count never
//! changes a single recorded byte (pinned by tests in
//! [`crate::shard`]).
//!
//! [`replay_trace`] is the other direction: re-execute any recorded
//! exec from its self-contained header and cross-check the recorded
//! block stream against the live run, byte for byte.

use crate::exec::{execute_with, ExecScratch};
use crate::program::Program;
use kgpt_syzlang::lowered::{CfgRun, CfgSuccessors};
use kgpt_trace::{decode_events, encode_events, ExecTrace, TraceError, TraceStore};
use kgpt_vkernel::{CrashSignature, TraceEvent, VKernel};
use std::sync::Arc;

/// Build the delta-coding prediction table for a booted kernel.
///
/// The table is a pure function of the kernel's block layout
/// ([`VKernel::cfg_runs`]), so the recorder and any later replayer —
/// even in another process — derive the identical table and their
/// streams compare byte-for-byte.
#[must_use]
pub fn cfg_successors(kernel: &VKernel) -> CfgSuccessors {
    CfgSuccessors::build(
        kernel
            .cfg_runs()
            .into_iter()
            .map(|(start, len, next)| CfgRun { start, len, next })
            .collect(),
    )
}

/// Per-shard recorder: encodes each exec's trace log and files it in
/// the shard's [`TraceStore`].
#[derive(Clone)]
pub(crate) struct ShardTracer {
    /// Shared prediction table (one per campaign, not per shard).
    cfg: Arc<CfgSuccessors>,
    /// Spec-suite fingerprint stamped into every trace header.
    spec_fp: u64,
    /// Owning shard id, stamped into every trace header.
    shard: u32,
    /// Retained traces.
    store: TraceStore,
    /// Scratch buffer for program encoding, reused across execs.
    prog_buf: Vec<u8>,
}

impl ShardTracer {
    pub(crate) fn new(
        cfg: Arc<CfgSuccessors>,
        spec_fp: u64,
        shard: u32,
        cap: usize,
    ) -> ShardTracer {
        ShardTracer {
            cfg,
            spec_fp,
            shard,
            store: TraceStore::new(cap),
            prog_buf: Vec::new(),
        }
    }

    /// Record the execution that just finished in `scratch`.
    pub(crate) fn record(&mut self, scratch: &ExecScratch, prog: &Program, epoch: u64) {
        let (stream, stream_bits) = encode_events(&self.cfg, scratch.state.trace().events());
        self.prog_buf.clear();
        prog.encode_into(&mut self.prog_buf);
        self.store.record(ExecTrace {
            shard: self.shard,
            epoch,
            exec: self.store.execs_seen(),
            exec_fuel: scratch.state.fuel_limit(),
            spec_fingerprint: self.spec_fp,
            fuel_exhausted: scratch.state.fuel_exhausted(),
            crash: scratch.crash().map(|c| c.signature),
            program: self.prog_buf.clone(),
            stream,
            stream_bits,
        });
    }

    /// The shard's retained traces.
    pub(crate) fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Replace the retained traces (checkpoint resume).
    pub(crate) fn set_store(&mut self, store: TraceStore) {
        self.store = store;
    }

    /// Surrender the retained traces.
    pub(crate) fn into_store(self) -> TraceStore {
        self.store
    }
}

/// Outcome of replaying one recorded exec against a live kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Whether the live run reproduced the recorded stream
    /// byte-for-byte, with matching crash signature and fuel verdict.
    pub identical: bool,
    /// Crash signature the trace recorded, if any.
    pub recorded_crash: Option<CrashSignature>,
    /// Crash signature the live replay produced, if any.
    pub live_crash: Option<CrashSignature>,
    /// Blocks retired in the recorded stream.
    pub blocks: u64,
}

/// Re-execute a recorded exec and cross-check it against its trace.
///
/// The trace header carries everything replay needs: the encoded
/// program, the fuel budget it ran under, and the fingerprint of the
/// spec suite it was generated against. The live run's event log is
/// re-encoded with the same prediction table and compared
/// byte-for-byte against the recorded stream; crash signatures and
/// the fuel-exhaustion verdict must match too. The scratch's tracing
/// flag and fuel limit are restored afterwards.
///
/// # Errors
///
/// Returns a [`TraceError`] when `spec_fp` (the live suite's
/// fingerprint) does not match the trace header, or when the embedded
/// program or stream fails strict decoding. A *divergent* replay is
/// not an error — it reports `identical == false`.
pub fn replay_trace(
    kernel: &VKernel,
    scratch: &mut ExecScratch,
    cfg: &CfgSuccessors,
    trace: &ExecTrace,
    spec_fp: u64,
) -> Result<ReplayOutcome, TraceError> {
    if trace.spec_fingerprint != spec_fp {
        return Err(TraceError::new(format!(
            "spec fingerprint mismatch: trace {:#x}, live suite {:#x}",
            trace.spec_fingerprint, spec_fp
        )));
    }
    let prog = trace.decode_program()?;
    // Strict well-formedness check of the recorded stream (and the
    // block tally for reporting) before anything executes.
    let recorded = decode_events(cfg, &trace.stream, trace.stream_bits)?;
    let blocks = recorded
        .iter()
        .map(|e| match e {
            TraceEvent::Block { len, .. } => u64::from(*len),
            _ => 0,
        })
        .sum();
    let was_enabled = scratch.state.trace().enabled();
    let prior_fuel = scratch.state.fuel_limit();
    scratch.state.trace_mut().set_enabled(true);
    scratch.state.set_fuel_limit(trace.exec_fuel);
    execute_with(kernel, &prog, scratch);
    let (live_stream, live_bits) = encode_events(cfg, scratch.state.trace().events());
    let live_crash = scratch.crash().map(|c| c.signature);
    let identical = live_stream == trace.stream
        && live_bits == trace.stream_bits
        && live_crash == trace.crash
        && scratch.state.fuel_exhausted() == trace.fuel_exhausted;
    scratch.state.set_fuel_limit(prior_fuel);
    scratch.state.trace_mut().set_enabled(was_enabled);
    Ok(ReplayOutcome {
        identical,
        recorded_crash: trace.crash,
        live_crash,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::shard::ShardedCampaign;
    use kgpt_csrc::KernelCorpus;
    use kgpt_syzlang::{ConstDb, SpecCache, SpecFile};

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    #[test]
    fn every_retained_trace_replays_identically() {
        let (kernel, suite, consts) = dm_setup();
        let config = CampaignConfig {
            execs: 3000,
            seed: 1,
            ..CampaignConfig::default()
        };
        let campaign = ShardedCampaign::new(&kernel, &suite, &consts, config).with_shards(4);
        let (result, stores) = campaign.run_traced();
        let spec_fp = SpecCache::fingerprint(campaign.db().files());
        let cfg = cfg_successors(&kernel);
        let mut scratch = ExecScratch::from_lowered(campaign.lowered_shared());
        let mut replayed = 0usize;
        let mut crashing = 0usize;
        for store in &stores {
            for t in store.iter() {
                let out = replay_trace(&kernel, &mut scratch, &cfg, t, spec_fp).unwrap();
                assert!(
                    out.identical,
                    "trace shard={} exec={} diverged",
                    t.shard, t.exec
                );
                assert_eq!(out.live_crash, t.crash);
                replayed += 1;
                if t.crash.is_some() {
                    crashing += 1;
                }
            }
        }
        assert!(replayed > 0, "no traces retained");
        assert!(crashing > 0, "dm campaign should pin crash traces");
        // Every triaged signature has a pinned trace replaying to the
        // same CrashSignature.
        for e in result.triage.entries() {
            assert!(
                stores.iter().any(|s| s.pinned_for(&e.signature).is_some()),
                "{} has no pinned trace",
                e.title
            );
        }
    }

    #[test]
    fn replay_refuses_the_wrong_suite_fingerprint() {
        let (kernel, suite, consts) = dm_setup();
        let config = CampaignConfig {
            execs: 200,
            seed: 5,
            ..CampaignConfig::default()
        };
        let campaign = ShardedCampaign::new(&kernel, &suite, &consts, config).with_shards(1);
        let (_, stores) = campaign.run_traced();
        let cfg = cfg_successors(&kernel);
        let mut scratch = ExecScratch::from_lowered(campaign.lowered_shared());
        let t = stores[0].iter().next().expect("a retained trace");
        let err = replay_trace(&kernel, &mut scratch, &cfg, t, 0xDEAD).unwrap_err();
        assert!(err.message.contains("fingerprint"), "{err}");
    }

    #[test]
    fn tampered_streams_are_detected_as_divergent_or_malformed() {
        let (kernel, suite, consts) = dm_setup();
        let config = CampaignConfig {
            execs: 500,
            seed: 2,
            ..CampaignConfig::default()
        };
        let campaign = ShardedCampaign::new(&kernel, &suite, &consts, config).with_shards(1);
        let (_, stores) = campaign.run_traced();
        let spec_fp = SpecCache::fingerprint(campaign.db().files());
        let cfg = cfg_successors(&kernel);
        let mut scratch = ExecScratch::from_lowered(campaign.lowered_shared());
        let t = stores[0].iter().next().expect("a retained trace").clone();
        for bit in 0..t.stream_bits {
            let mut bad = t.clone();
            bad.stream[(bit / 8) as usize] ^= 1 << (bit % 8);
            // A strict-decode `Err` means the codec caught the flip
            // first; a successful replay must at least be flagged
            // non-identical.
            if let Ok(out) = replay_trace(&kernel, &mut scratch, &cfg, &bad, spec_fp) {
                assert!(!out.identical, "flipped bit {bit} replayed identically");
            }
        }
    }
}
