//! # kgpt-fuzzer
//!
//! The spec-guided, coverage-directed syscall fuzzer — the Syzkaller
//! substitute that consumes syzlang suites and drives the virtual
//! kernel.
//!
//! * [`program`] — syscall sequences with resource-threading;
//! * [`gen`] — generation from a [`kgpt_syzlang::SpecDb`]: producers are
//!   prepended to satisfy resource dependencies, values follow the
//!   declared types (ranges, flags, strings, lengths auto-filled by the
//!   encoder) with a small rate of deliberate violations;
//! * [`exec`] — lowers a program to registers + memory segments and
//!   runs it against a [`kgpt_vkernel::VKernel`], reusing per-worker
//!   [`exec::ExecScratch`] so the hot loop is allocation-free;
//! * [`campaign`] — the coverage-guided loop: mutate/generate, keep
//!   inputs that reach new blocks, deduplicate crashes by title;
//! * [`shard`] — parallel campaigns: a fixed logical-shard
//!   decomposition executed by N threads sharing the kernel by
//!   reference, with a merge that is independent of thread count.

pub mod campaign;
pub mod exec;
pub mod gen;
pub mod program;
pub mod shard;

pub use campaign::{Campaign, CampaignConfig, CampaignResult, CrashTally};
pub use exec::{execute, execute_with, ExecResult, ExecScratch};
pub use gen::Generator;
pub use program::{ProgCall, Program};
pub use shard::ShardedCampaign;
