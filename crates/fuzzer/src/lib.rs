//! # kgpt-fuzzer
//!
//! The spec-guided, coverage-directed syscall fuzzer — the Syzkaller
//! substitute that consumes syzlang suites and drives the virtual
//! kernel.
//!
//! * [`program`] — syscall sequences with resource-threading;
//! * [`gen`] — generation over the compiled
//!   [`kgpt_syzlang::lowered::LoweredDb`] IR: producers are prepended
//!   to satisfy resource dependencies, values follow the declared
//!   types (ranges, flags, strings, lengths auto-filled by the
//!   encoder) with a small rate of deliberate violations — with no
//!   name lookup or AST walk per value;
//! * [`exec`] — lowers a program to registers + memory segments and
//!   runs it against a [`kgpt_vkernel::VKernel`], reusing per-worker
//!   [`exec::ExecScratch`] so the hot loop is allocation-free,
//!   string-free (dense [`kgpt_vkernel::Sysno`] dispatch) and
//!   AST-free;
//! * [`mod@reference`] — the pre-lowering AST-walk generator/executor,
//!   kept as the differential oracle: program streams and execution
//!   outcomes are pinned bit-identical to the lowered path;
//! * [`corpus`] — the coverage-keyed seed corpus: entries keyed by
//!   the coverage they contributed, weighted (bias-free) seed
//!   scheduling, and least-productive eviction under the size cap;
//! * [`campaign`] — the coverage-guided loop: mutate/generate, admit
//!   inputs that reach new blocks into the [`corpus::Corpus`],
//!   deduplicate crashes by title;
//! * [`hub`] — deterministic cross-shard seed exchange: shards
//!   publish their best seeds at fixed exec-epoch boundaries in
//!   shard-id order and import what they have not seen;
//! * [`shard`] — parallel campaigns: a fixed logical-shard
//!   decomposition executed by N threads sharing the kernel by
//!   reference, with epoch-barrier hub exchange and a merge that are
//!   both independent of thread count;
//! * [`checkpoint`] — crash-safe campaign durability: a
//!   [`checkpoint::CampaignSnapshot`] of the whole boundary state
//!   (RNGs, corpora, coverage, hub, triage) written atomically with a
//!   previous-good rotation, such that interrupt-plus-resume is
//!   bit-identical to an uninterrupted run at any thread count;
//! * [`faults`] — deterministic fault injection
//!   ([`faults::FaultPlan`]): checkpoint-write failures, torn/corrupt
//!   snapshots, mid-epoch shard aborts, and fabric faults (dropped or
//!   duplicated frames, worker kills, stalled leases), so every
//!   recovery path is exercised in CI instead of waiting for real
//!   crashes;
//! * [`fabric`] — the deterministic halves of a distributed campaign:
//!   [`fabric::LeaseRunner`] steps a contiguous shard range on a
//!   worker and [`fabric::CampaignMerge`] folds per-shard
//!   [`fabric::EpochDelta`]s in shard-id order on a coordinator, so
//!   the merged result is bit-identical to a single-process
//!   [`ShardedCampaign`] (the `kgpt-fabric` crate adds the protocol:
//!   leases, transports, framing);
//! * [`flight`] — the flight recorder: per-shard capture of compact
//!   delta-coded exec traces ([`kgpt_trace`]) during sharded
//!   campaigns, pinned crash traces that survive checkpoints, and
//!   [`flight::replay_trace`] — deterministic time-travel replay of
//!   any recorded exec, cross-checked byte-for-byte against its
//!   recorded block stream;
//! * crash triage (internal `triage` module over [`kgpt_triage`]) —
//!   shards capture the first crashing `ProgCall` stream per
//!   [`kgpt_vkernel::CrashSignature`]; the driver ddmin-minimizes new
//!   signatures at epoch boundaries in shard-id order, so the
//!   [`campaign::CampaignResult::triage`] report is bit-identical at
//!   any worker thread count.

pub mod campaign;
pub mod checkpoint;
pub mod corpus;
pub mod exec;
pub mod fabric;
pub mod faults;
pub mod flight;
pub mod gen;
pub mod hub;
pub mod program;
pub mod reference;
pub mod shard;
mod triage;

pub use campaign::{Campaign, CampaignConfig, CampaignResult, CrashTally, ShardSnapshot};
pub use checkpoint::{CampaignSnapshot, CheckpointError};
pub use corpus::{Corpus, CorpusEntry, CorpusStats};
pub use exec::{execute, execute_with, ExecResult, ExecScratch};
pub use fabric::{
    reference_run, BoundaryOutcome, CampaignMerge, EpochDelta, EpochPatch, KeptEntry, LeaseRunner,
    ReferenceRun,
};
pub use faults::{Fault, FaultPlan};
pub use flight::{cfg_successors, replay_trace, ReplayOutcome};
pub use gen::Generator;
pub use hub::{HubSeed, SeedHub};
pub use kgpt_trace::{ExecTrace, TraceError, TraceStore};
pub use kgpt_triage::{TriageEntry, TriageReport};
pub use program::{ProgCall, Program};
pub use reference::{ast_execute, ast_execute_with, AstGenerator, AstScratch};
pub use shard::ShardedCampaign;
pub use triage::minimize_program;
