//! # kgpt-fuzzer
//!
//! The spec-guided, coverage-directed syscall fuzzer — the Syzkaller
//! substitute that consumes syzlang suites and drives the virtual
//! kernel.
//!
//! * [`program`] — syscall sequences with resource-threading;
//! * [`gen`] — generation from a [`kgpt_syzlang::SpecDb`]: producers are
//!   prepended to satisfy resource dependencies, values follow the
//!   declared types (ranges, flags, strings, lengths auto-filled by the
//!   encoder) with a small rate of deliberate violations;
//! * [`exec`] — lowers a program to registers + memory segments and
//!   runs it against a [`kgpt_vkernel::VKernel`];
//! * [`campaign`] — the coverage-guided loop: mutate/generate, keep
//!   inputs that reach new blocks, deduplicate crashes by title.

pub mod campaign;
pub mod exec;
pub mod gen;
pub mod program;

pub use campaign::{Campaign, CampaignConfig, CampaignResult};
pub use exec::{execute, ExecResult};
pub use gen::Generator;
pub use program::{Program, ProgCall};
