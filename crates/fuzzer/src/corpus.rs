//! The coverage-keyed seed corpus.
//!
//! A [`Corpus`] is the campaign's memory: every retained program is
//! keyed by the coverage it *contributed* when it was admitted (the
//! bitmap diff against everything the corpus had seen before), and
//! carries per-entry productivity statistics — how often it was
//! picked as a mutation seed and how often one of its mutants was
//! itself admitted. Those statistics drive both scheduling and
//! eviction:
//!
//! * **selection** is weighted by productivity (contributed blocks
//!   and mutation hits, decayed by how often the entry has already
//!   been fuzzed), replacing the old uniform-and-biased
//!   `rng % corpus.len()` pick — the underlying bounded sampler is
//!   rejection-based and exactly unbiased (see [`SplitMix64`]);
//! * **eviction** under the size cap drops the *least productive*
//!   entry (minimum weight, oldest first on ties) instead of the
//!   oldest, so a long campaign keeps the seeds that still earn
//!   coverage.
//!
//! Everything is integer arithmetic over an owned [`SplitMix64`]
//! stream, so a corpus is a pure function of its construction seed
//! and the sequence of `select`/`observe`/`admit_foreign` calls —
//! the determinism the sharded campaign and the cross-shard
//! [`crate::hub::SeedHub`] build on.

use crate::program::Program;
use kgpt_vkernel::CoverageMap;

/// One retained seed with its coverage key and productivity stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The program itself.
    pub program: Program,
    /// Coverage this entry contributed when admitted (its dedup key;
    /// disjoint from every earlier entry's contribution).
    pub contributed: CoverageMap,
    /// Times this entry was selected as a mutation seed.
    pub execs: u64,
    /// Times a mutant of this entry was itself admitted.
    pub hits: u64,
}

impl CorpusEntry {
    /// Scheduling weight: productivity (contributed blocks, mutation
    /// hits) decayed by how much the entry has already been fuzzed.
    /// Always ≥ 1, so every entry stays reachable.
    #[must_use]
    pub fn weight(&self) -> u64 {
        let base = 1 + self.contributed.len() as u64 + 8 * self.hits;
        let fatigue = 4 + self.execs.min(60);
        (base * 16 / fatigue).max(1)
    }
}

/// Counters over a corpus's lifetime (monotone; eviction does not
/// roll them back).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Locally executed programs admitted for new coverage.
    pub admitted: u64,
    /// Seeds imported from the cross-shard hub.
    pub imported: u64,
    /// Entries evicted under the size cap.
    pub evicted: u64,
}

/// A size-bounded, coverage-deduplicated seed corpus with weighted
/// scheduling. See the module docs.
#[derive(Debug, Clone)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    /// Union of every block this corpus knows about — executed here
    /// or imported from the hub. Admission is keyed against this map.
    coverage: CoverageMap,
    cap: usize,
    rng: SplitMix64,
    /// Sum of entry weights, maintained incrementally.
    total_weight: u64,
    stats: CorpusStats,
}

impl Corpus {
    /// Empty corpus holding at most `cap` entries, with its own
    /// deterministic selection stream seeded by `seed`.
    #[must_use]
    pub fn new(cap: usize, seed: u64) -> Corpus {
        Corpus {
            entries: Vec::new(),
            coverage: CoverageMap::new(),
            cap: cap.max(1),
            rng: SplitMix64::new(seed),
            total_weight: 0,
            stats: CorpusStats::default(),
        }
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Union of all coverage this corpus has observed (executed or
    /// imported).
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> CorpusStats {
        self.stats
    }

    /// The incrementally maintained sum of entry weights — the
    /// scheduling denominator. Invariant (pinned by tests): always
    /// equal to summing [`CorpusEntry::weight`] over the entries,
    /// through selections, admissions, imports and evictions.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The program of entry `idx`.
    #[must_use]
    pub fn program(&self, idx: usize) -> &Program {
        &self.entries[idx].program
    }

    /// Entry `idx` (coverage key and stats included).
    #[must_use]
    pub fn entry(&self, idx: usize) -> &CorpusEntry {
        &self.entries[idx]
    }

    /// All retained entries in admission order (checkpointing view).
    #[must_use]
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// The selection stream's raw state, for checkpointing. Restoring
    /// it via [`Corpus::from_parts`] continues the exact pick
    /// sequence.
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rebuild a corpus from checkpointed parts. `total_weight` is
    /// recomputed from the entries (it is derived state), so a
    /// restored corpus upholds the incremental-sum invariant by
    /// construction. Continuing the result is bit-identical to
    /// continuing the corpus the parts were captured from.
    #[must_use]
    pub fn from_parts(
        cap: usize,
        rng_state: u64,
        coverage: CoverageMap,
        entries: Vec<CorpusEntry>,
        stats: CorpusStats,
    ) -> Corpus {
        let total_weight = entries.iter().map(CorpusEntry::weight).sum();
        Corpus {
            entries,
            coverage,
            cap: cap.max(1),
            rng: SplitMix64::from_state(rng_state),
            total_weight,
            stats,
        }
    }

    /// Pick a mutation seed, weighted by entry productivity; `None`
    /// on an empty corpus. Charges one exec against the picked entry
    /// (the fatigue input of its weight).
    pub fn select(&mut self) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let mut r = self.rng.bounded(self.total_weight);
        let mut idx = self.entries.len() - 1;
        for (i, e) in self.entries.iter().enumerate() {
            let w = e.weight();
            if r < w {
                idx = i;
                break;
            }
            r -= w;
        }
        let old = self.entries[idx].weight();
        self.entries[idx].execs += 1;
        self.total_weight = self.total_weight - old + self.entries[idx].weight();
        Some(idx)
    }

    /// Record one execution outcome: merge `cov` into the corpus
    /// coverage and admit `prog` if it contributed new blocks,
    /// crediting `parent` (the mutation seed it came from, if any)
    /// with a hit. Returns the number of newly covered blocks
    /// (0 = nothing new, program dropped). Allocation-free on the
    /// nothing-new path.
    pub fn observe(&mut self, prog: Program, cov: &CoverageMap, parent: Option<usize>) -> usize {
        if self.coverage.new_blocks_in(cov) == 0 {
            return 0;
        }
        if let Some(p) = parent {
            let old = self.entries[p].weight();
            self.entries[p].hits += 1;
            self.total_weight = self.total_weight - old + self.entries[p].weight();
        }
        let contributed = self.coverage.merge_diff(cov);
        let new = contributed.len();
        self.stats.admitted += 1;
        self.push(CorpusEntry {
            program: prog,
            contributed,
            execs: 0,
            hits: 0,
        });
        new
    }

    /// Admit a seed published by another shard: if its claimed
    /// contribution has blocks this corpus does not know, retain a
    /// clone keyed by the unknown part. Returns whether the seed was
    /// taken. Does not touch the selection stream, so an exchange
    /// that imports nothing leaves the corpus bit-identical.
    pub fn admit_foreign(&mut self, prog: &Program, claimed: &CoverageMap) -> bool {
        if self.coverage.new_blocks_in(claimed) == 0 {
            return false;
        }
        let contributed = self.coverage.merge_diff(claimed);
        self.stats.imported += 1;
        self.push(CorpusEntry {
            program: prog.clone(),
            contributed,
            execs: 0,
            hits: 0,
        });
        true
    }

    /// Indices of the `k` highest-weight entries, ordered by weight
    /// descending with index ascending on ties (deterministic).
    #[must_use]
    pub fn top_indices(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.entries.len()).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(self.entries[i].weight()), i));
        idx.truncate(k);
        idx
    }

    /// Decompose into the coverage union and the retained entry
    /// count (the campaign-result view of a finished worker).
    #[must_use]
    pub fn into_coverage(self) -> (CoverageMap, usize) {
        (self.coverage, self.entries.len())
    }

    fn push(&mut self, entry: CorpusEntry) {
        self.total_weight += entry.weight();
        self.entries.push(entry);
        while self.entries.len() > self.cap {
            self.evict_least_productive();
        }
    }

    /// Drop the minimum-weight entry (oldest first on ties). The
    /// corpus coverage keeps the evicted entry's blocks — eviction
    /// bounds memory, it does not forget what was reached.
    fn evict_least_productive(&mut self) {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(i, e)| (e.weight(), *i))
            .map(|(i, _)| i)
            .expect("evict on non-empty corpus");
        let gone = self.entries.remove(victim);
        self.total_weight -= gone.weight();
        self.stats.evicted += 1;
    }
}

/// SplitMix64: the corpus's owned deterministic word stream. Bounded
/// sampling uses rejection (`bounded`), so picks are *exactly*
/// uniform over `0..n` — no modulo bias, unlike the former
/// `(rng >> 33) % len` corpus pick.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The raw stream state (SplitMix64's state is its last counter
    /// value, so this doubles as a seed for [`SplitMix64::from_state`]).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Continue a stream from a state captured with
    /// [`SplitMix64::state`] — restore, not reseeding: the next draws
    /// are bit-identical to continuing the original.
    #[must_use]
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64(state)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Exactly uniform draw from `0..n` (n ≥ 1) by rejection: raw
    /// words below `reject_threshold(n)` are discarded, leaving an
    /// accepted range whose size is a multiple of `n`, so every
    /// residue has the same number of preimages.
    pub fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "bounded(0)");
        let threshold = reject_threshold(n);
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }
}

/// `2^64 mod n`: the count of raw words that must be rejected so the
/// accepted range `threshold..2^64` has a size divisible by `n`.
#[must_use]
pub(crate) fn reject_threshold(n: u64) -> u64 {
    (u64::MAX % n).wrapping_add(1) % n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cov(blocks: &[u64]) -> CoverageMap {
        blocks.iter().copied().collect()
    }

    fn prog() -> Program {
        Program::default()
    }

    #[test]
    fn admits_only_new_coverage_and_keys_entries_by_the_diff() {
        let mut c = Corpus::new(64, 0);
        assert_eq!(c.observe(prog(), &cov(&[1, 2, 3]), None), 3);
        // Overlapping execution: only the delta is the entry's key.
        assert_eq!(c.observe(prog(), &cov(&[2, 3, 4]), None), 1);
        assert_eq!(c.entry(1).contributed, cov(&[4]));
        // Fully covered execution is dropped.
        assert_eq!(c.observe(prog(), &cov(&[1, 4]), None), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.coverage(), &cov(&[1, 2, 3, 4]));
        assert_eq!(c.stats().admitted, 2);
    }

    #[test]
    fn parent_hit_credit_raises_weight() {
        let mut c = Corpus::new(64, 0);
        c.observe(prog(), &cov(&[1]), None);
        let before = c.entry(0).weight();
        c.observe(prog(), &cov(&[2]), Some(0));
        assert_eq!(c.entry(0).hits, 1);
        assert!(c.entry(0).weight() > before);
    }

    #[test]
    fn eviction_drops_the_least_productive_not_the_oldest() {
        let mut c = Corpus::new(3, 0);
        // Entry 0 is old but highly productive (many blocks).
        c.observe(prog(), &cov(&[1, 2, 3, 4, 5, 6, 7, 8]), None);
        // Entries 1 and 2 are single-block.
        c.observe(prog(), &cov(&[100]), None);
        c.observe(prog(), &cov(&[200]), None);
        // Make entry 1 strictly weaker than entry 2 via fatigue.
        c.entries[1].execs = 50;
        let w: Vec<u64> = c.entries.iter().map(CorpusEntry::weight).collect();
        c.total_weight = w.iter().sum();
        assert!(w[1] < w[2] && w[1] < w[0]);
        // Overflow the cap: the weakest (entry 1) goes, not entry 0.
        c.observe(prog(), &cov(&[300]), None);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evicted, 1);
        assert_eq!(c.entry(0).contributed, cov(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(c.entry(1).contributed, cov(&[200]));
        // Evicted coverage is not forgotten: re-observing block 100
        // contributes nothing.
        assert_eq!(c.observe(prog(), &cov(&[100]), None), 0);
    }

    #[test]
    fn selection_is_deterministic_and_favors_productive_entries() {
        let run = |seed: u64| -> Vec<usize> {
            let mut c = Corpus::new(64, seed);
            c.observe(prog(), &cov(&(0..40).collect::<Vec<u64>>()), None);
            c.observe(prog(), &cov(&[100]), None);
            (0..50).map(|_| c.select().unwrap()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same pick sequence");
        assert_ne!(run(7), run(8), "seed is part of the stream");
        let picks = run(7);
        let heavy = picks.iter().filter(|&&i| i == 0).count();
        assert!(heavy > 25, "40-block entry picked only {heavy}/50");
    }

    #[test]
    fn bounded_pick_is_bias_free() {
        // Structural half: the rejection zone leaves an accepted
        // range whose size is an exact multiple of n, so each residue
        // has identical probability — the former `(rng >> 33) % len`
        // pick had no such property. `threshold.wrapping_neg()` is
        // `2^64 - threshold`, the accepted count.
        for n in [1u64, 2, 3, 5, 6, 7, 10, 1000, 2048, (1 << 33) + 1] {
            let threshold = reject_threshold(n);
            assert!(threshold < n, "n={n}");
            assert_eq!(
                threshold.wrapping_neg() % n,
                0,
                "accepted range not a multiple of n={n}"
            );
        }
        // Statistical half: equal-weight entries are picked uniformly.
        let mut rng = SplitMix64::new(0xB1A5);
        let n = 10u64;
        let draws = 100_000u64;
        let mut buckets = [0u64; 10];
        for _ in 0..draws {
            buckets[rng.bounded(n) as usize] += 1;
        }
        let expect = draws / n;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                b.abs_diff(expect) < expect / 10,
                "bucket {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn foreign_admission_dedups_and_skips_the_selection_stream() {
        let mut c = Corpus::new(64, 3);
        c.observe(prog(), &cov(&[1, 2]), None);
        let stream_probe = c.rng.clone().next_u64();
        // Already-known claim: rejected, nothing imported.
        assert!(!c.admit_foreign(&prog(), &cov(&[1])));
        // Partially new claim: retained, keyed by the unknown part.
        assert!(c.admit_foreign(&prog(), &cov(&[2, 3])));
        assert_eq!(c.entry(1).contributed, cov(&[3]));
        assert_eq!(c.stats().imported, 1);
        assert_eq!(
            c.rng.clone().next_u64(),
            stream_probe,
            "imports must not consume selection randomness"
        );
    }

    #[test]
    fn top_indices_order_by_weight_then_age() {
        let mut c = Corpus::new(64, 0);
        c.observe(prog(), &cov(&[1]), None);
        c.observe(prog(), &cov(&[10, 11, 12]), None);
        c.observe(prog(), &cov(&[20]), None);
        // Entries 0 and 2 tie; the older index comes first.
        assert_eq!(c.top_indices(3), vec![1, 0, 2]);
        assert_eq!(c.top_indices(1), vec![1]);
        assert_eq!(c.top_indices(0), Vec::<usize>::new());
    }
}
