//! Program execution: lower to registers + memory, run on the kernel.
//!
//! The hot entry point is [`execute_with`], which runs a program
//! against caller-owned [`ExecScratch`] — VM state, encoder, memory
//! image and return-value buffer are all reused across executions, so
//! a campaign's steady-state loop performs no per-program heap
//! allocation beyond what the generated values themselves own.
//!
//! The scratch is built over a shared
//! [`kgpt_syzlang::lowered::LoweredDb`]: argument encoding walks the
//! flat arena through [`LoweredEncoder`] (no `struct_def` lookup, no
//! constant resolution, no name-keyed `len` targets per call), and
//! dispatch resolves each syscall's base name to a dense
//! [`Sysno`] exactly once at construction — the per-exec path is
//! string-free and AST-free. The pre-lowering walk survives in
//! [`crate::reference`] as the differential oracle.
//!
//! After a run, [`ExecScratch::coverage`] and [`ExecScratch::crash`]
//! expose the outcome the campaign loop feeds into the shared
//! [`crate::corpus::Corpus`].

use crate::program::Program;
use kgpt_syzlang::lowered::{LoweredDb, LoweredEncoder};
use kgpt_syzlang::value::ResRef;
use kgpt_syzlang::{ConstDb, SpecDb};
use kgpt_vkernel::{CoverageMap, CrashReport, MemMap, Sysno, VKernel, VmState};
use std::sync::Arc;

/// Result of executing one program.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Blocks covered by this program.
    pub coverage: CoverageMap,
    /// Crash triggered, if any.
    pub crash: Option<CrashReport>,
    /// Per-call return values (calls after a crash are skipped and
    /// recorded as `-EFAULT`).
    pub rets: Vec<i64>,
}

/// Reusable per-worker execution state. Create once per fuzzing
/// thread; every [`execute_with`] call resets and reuses it.
pub struct ExecScratch {
    lowered: Arc<LoweredDb>,
    /// Per-syscall dense kernel dispatch number, resolved from the
    /// lowered IR's interned base ops once at construction.
    sysno: Vec<Sysno>,
    /// Per-program VM state; readable after `execute_with` returns.
    pub state: VmState,
    /// Per-call return values of the last executed program.
    pub rets: Vec<i64>,
    enc: LoweredEncoder,
    mem: MemMap,
    /// Segment vector shuttling between encoder and memory image so
    /// retired buffers flow back into the encoder's pool.
    shuttle: Vec<(u64, Vec<u8>)>,
}

impl ExecScratch {
    /// Fresh scratch over a spec database and constant table,
    /// lowering them on the spot. Campaign code paths share one
    /// pre-lowered IR via [`ExecScratch::from_lowered`] instead.
    #[must_use]
    pub fn new(db: &SpecDb, consts: &ConstDb) -> ExecScratch {
        ExecScratch::from_lowered(Arc::new(LoweredDb::build(db, consts)))
    }

    /// Fresh scratch over a shared lowered IR.
    #[must_use]
    pub fn from_lowered(lowered: Arc<LoweredDb>) -> ExecScratch {
        let ops: Vec<Sysno> = lowered
            .base_ops()
            .iter()
            .map(|b| Sysno::from_base(b))
            .collect();
        let sysno = (0..lowered.syscall_count())
            .map(|i| ops[lowered.syscall(i).op as usize])
            .collect();
        ExecScratch {
            lowered,
            sysno,
            state: VmState::new(),
            rets: Vec::new(),
            enc: LoweredEncoder::new(),
            mem: MemMap::new(),
            shuttle: Vec::new(),
        }
    }

    /// Coverage of the last executed program — what the campaign
    /// loop feeds to [`crate::corpus::Corpus::observe`] (borrowed, so
    /// the admission test allocates nothing on the nothing-new path).
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.state.coverage
    }

    /// Crash triggered by the last executed program, if any.
    #[must_use]
    pub fn crash(&self) -> Option<&CrashReport> {
        self.state.crash.as_ref()
    }
}

/// Execute a program against a fresh VM state (one-shot convenience
/// wrapper over [`execute_with`]).
///
/// This compiles a fresh [`LoweredDb`] per call — fine for a handful
/// of executions, wrong in a loop. Loops should build one scratch
/// ([`ExecScratch::from_lowered`], or `new` once) and call
/// [`execute_with`].
#[must_use]
pub fn execute(kernel: &VKernel, db: &SpecDb, consts: &ConstDb, prog: &Program) -> ExecResult {
    let mut scratch = ExecScratch::new(db, consts);
    execute_with(kernel, prog, &mut scratch);
    ExecResult {
        coverage: std::mem::take(&mut scratch.state.coverage),
        crash: scratch.state.crash.take(),
        rets: std::mem::take(&mut scratch.rets),
    }
}

/// Execute a program, reusing `scratch` across calls. Afterwards,
/// `scratch.state.coverage`, `scratch.state.crash` and `scratch.rets`
/// hold the program's outcome until the next invocation.
pub fn execute_with(kernel: &VKernel, prog: &Program, scratch: &mut ExecScratch) {
    let ExecScratch {
        lowered,
        sysno,
        state,
        rets,
        enc,
        mem,
        shuttle,
    } = scratch;
    let lowered: &LoweredDb = lowered;
    state.reset();
    rets.clear();
    for (call_index, call) in prog.calls.iter().enumerate() {
        if state.crash.is_some() {
            rets.push(-kgpt_vkernel::errno::EFAULT);
            continue;
        }
        if state.fuel_exhausted() {
            // The fuel watchdog tripped: skip the remaining calls
            // without decoding them (decode itself burns fuel), the
            // same way a crash short-circuits the rest of a program.
            rets.push(-kgpt_vkernel::errno::ENOMEM);
            continue;
        }
        let sys = lowered.syscall(call.sys as usize);
        // Restart the encoder's address space; any segments still in
        // it (from an aborted encode) are recycled into its pool.
        enc.reset();
        let mut regs = [0u64; 6];
        let mut ok = true;
        {
            let rets = &*rets;
            let resolve = |r: &ResRef| -> u64 {
                match r.producer.and_then(|i| rets.get(i)) {
                    Some(v) if *v >= 0 => *v as u64,
                    _ => r.fallback,
                }
            };
            for (i, (param, value)) in sys.params.iter().zip(&call.args).enumerate() {
                if i >= 6 {
                    break;
                }
                match enc.encode_arg(lowered, param.ty, value, &resolve) {
                    Ok(v) => regs[i] = v,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            rets.push(-kgpt_vkernel::errno::EINVAL);
            continue;
        }
        // Auto-fill top-level len/bytesize parameters from the encoded
        // sibling (`setsockopt(..., val, len)`): the encoder fills them
        // inside structs, but register-level lens refer to the pointee
        // segment size. The sibling's index was resolved at lowering;
        // segments are address-sorted, so the lookup is a binary search.
        let segments = enc.segments();
        for (i, param) in sys.params.iter().enumerate().take(6) {
            // Targets past the register window cannot be fixed up
            // (only reachable via unvalidated >6-ary specs).
            if let Some(ti) = param.len_target.filter(|ti| (*ti as usize) < regs.len()) {
                let addr = regs[ti as usize];
                if let Ok(si) = segments.binary_search_by_key(&addr, |s| s.0) {
                    regs[i] = segments[si].1.len() as u64;
                }
            }
        }
        // Move the encoded segments into the memory image; the image's
        // previous segments land back in the encoder for recycling on
        // the next `reset`.
        enc.swap_segments(shuttle);
        mem.load(shuttle);
        enc.recycle(shuttle);
        // Syscall-boundary marker for the flight recorder: calls that
        // were skipped (crash, fuel, encode failure) emit no marker,
        // so the trace's call indices name exactly the calls that
        // reached the kernel. One branch when tracing is off.
        state.trace_mut().call(call_index as u32);
        let ret = kernel.exec_call(state, sysno[call.sys as usize], &regs, mem);
        rets.push(ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Generator;
    use crate::reference::{ast_execute, AstGenerator};
    use kgpt_csrc::KernelCorpus;
    use kgpt_vkernel::VKernel;
    use std::collections::BTreeSet;

    #[test]
    fn generated_dm_programs_reach_coverage() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 11);
        let mut total = BTreeSet::new();
        for _ in 0..200 {
            let p = g.gen_program(6);
            let r = execute(&kernel, &db, kc.consts(), &p);
            total.extend(r.coverage);
        }
        // Open blocks + several command bodies must be reachable.
        assert!(total.len() > 30, "coverage too small: {}", total.len());
    }

    #[test]
    fn scratch_reuse_matches_one_shot_execution() {
        // The lowered IR arrives through the shared cache here:
        // execution is oblivious to whether it is owned or cached.
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let (db, lowered) = kgpt_syzlang::SpecCache::global()
            .get_or_build_lowered(&[kc.blueprints()[0].ground_truth_spec()], kc.consts());
        let db = &*db;
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(db, kc.consts(), 23);
        let progs: Vec<Program> = (0..100).map(|_| g.gen_program(8)).collect();
        let mut scratch = ExecScratch::from_lowered(lowered);
        for p in &progs {
            let one_shot = execute(&kernel, db, kc.consts(), p);
            execute_with(&kernel, p, &mut scratch);
            assert_eq!(scratch.state.coverage, one_shot.coverage);
            assert_eq!(scratch.state.crash, one_shot.crash);
            assert_eq!(scratch.rets, one_shot.rets);
        }
    }

    #[test]
    fn lowered_execution_matches_ast_walk() {
        // The full differential: AST-generated, AST-executed programs
        // versus the lowered generate→encode→dispatch pipeline.
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 77);
        let mut ag = AstGenerator::new(&db, kc.consts(), 77);
        let mut scratch = ExecScratch::new(&db, kc.consts());
        for i in 0..150 {
            let p = g.gen_program(8);
            assert_eq!(p, ag.gen_program(8), "program {i}");
            let ast = ast_execute(&kernel, &db, kc.consts(), &p);
            execute_with(&kernel, &p, &mut scratch);
            assert_eq!(scratch.rets, ast.rets, "program {i}");
            assert_eq!(scratch.state.coverage, ast.coverage, "program {i}");
            assert_eq!(scratch.state.crash, ast.crash, "program {i}");
        }
    }

    #[test]
    fn truth_spec_triggers_dm_bugs_eventually() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 5);
        let mut titles = BTreeSet::new();
        let mut scratch = ExecScratch::new(&db, kc.consts());
        for _ in 0..3000 {
            let p = g.gen_program(8);
            execute_with(&kernel, &p, &mut scratch);
            if let Some(c) = &scratch.state.crash {
                titles.insert(c.title.clone());
            }
        }
        assert!(
            titles.contains("kmalloc bug in ctl_ioctl"),
            "found: {titles:?}"
        );
    }

    #[test]
    fn wrong_device_name_spec_gets_no_driver_coverage() {
        // A SyzDescribe-style spec with the wrong path opens nothing.
        let spec = kgpt_syzlang::parse(
            "wrong",
            "resource fd_w[fd]\nopenat$w(dir const[0], file ptr[in, string[\"/dev/dm-controller\"]], flags const[2], mode const[0]) fd_w\nioctl$W(fd fd_w, cmd const[3], arg ptr[in, array[int8]])\n",
        )
        .unwrap();
        let db = SpecDb::from_files(vec![spec]);
        let consts = ConstDb::new();
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, &consts, 1);
        let mut total = BTreeSet::new();
        for _ in 0..100 {
            let p = g.gen_program(4);
            let r = execute(&kernel, &db, &consts, &p);
            total.extend(r.coverage);
        }
        assert!(total.is_empty(), "unexpected coverage: {total:?}");
    }
}
