//! Program execution: lower to registers + memory, run on the kernel.
//!
//! The hot entry point is [`execute_with`], which runs a program
//! against caller-owned [`ExecScratch`] — VM state, encoder, memory
//! image and return-value buffer are all reused across executions, so
//! a campaign's steady-state loop performs no per-program heap
//! allocation beyond what the generated values themselves own. The
//! [`execute`] convenience wrapper allocates a one-shot scratch and
//! returns an owned [`ExecResult`].
//!
//! Both entry points take the compiled database by plain reference,
//! so they compose with either an owned [`SpecDb`] or a shared
//! [`kgpt_syzlang::SpecCache`] handle (`&Arc<SpecDb>` derefs to
//! `&SpecDb`); campaigns hold the latter and pay compilation once per
//! distinct suite. After a run, [`ExecScratch::coverage`] and
//! [`ExecScratch::crash`] expose the outcome the campaign loop feeds
//! into the shared [`crate::corpus::Corpus`].

use crate::program::Program;
use kgpt_syzlang::value::{MemBuilder, ResRef};
use kgpt_syzlang::{ConstDb, SpecDb};
use kgpt_vkernel::{CoverageMap, CrashReport, MemMap, VKernel, VmState};

/// Result of executing one program.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Blocks covered by this program.
    pub coverage: CoverageMap,
    /// Crash triggered, if any.
    pub crash: Option<CrashReport>,
    /// Per-call return values (calls after a crash are skipped and
    /// recorded as `-EFAULT`).
    pub rets: Vec<i64>,
}

/// Reusable per-worker execution state. Create once per fuzzing
/// thread; every [`execute_with`] call resets and reuses it.
pub struct ExecScratch<'a> {
    db: &'a SpecDb,
    /// Per-program VM state; readable after `execute_with` returns.
    pub state: VmState,
    /// Per-call return values of the last executed program.
    pub rets: Vec<i64>,
    mb: MemBuilder<'a>,
    mem: MemMap,
    /// Segment vector shuttling between encoder and memory image so
    /// retired buffers flow back into the encoder's pool.
    shuttle: Vec<(u64, Vec<u8>)>,
}

impl<'a> ExecScratch<'a> {
    /// Fresh scratch over a spec database and constant table.
    #[must_use]
    pub fn new(db: &'a SpecDb, consts: &'a ConstDb) -> ExecScratch<'a> {
        ExecScratch {
            db,
            state: VmState::new(),
            rets: Vec::new(),
            mb: MemBuilder::new(db, consts),
            mem: MemMap::new(),
            shuttle: Vec::new(),
        }
    }

    /// Coverage of the last executed program — what the campaign
    /// loop feeds to [`crate::corpus::Corpus::observe`] (borrowed, so
    /// the admission test allocates nothing on the nothing-new path).
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.state.coverage
    }

    /// Crash triggered by the last executed program, if any.
    #[must_use]
    pub fn crash(&self) -> Option<&CrashReport> {
        self.state.crash.as_ref()
    }
}

/// Execute a program against a fresh VM state (one-shot convenience
/// wrapper over [`execute_with`]).
#[must_use]
pub fn execute(kernel: &VKernel, db: &SpecDb, consts: &ConstDb, prog: &Program) -> ExecResult {
    let mut scratch = ExecScratch::new(db, consts);
    execute_with(kernel, prog, &mut scratch);
    ExecResult {
        coverage: std::mem::take(&mut scratch.state.coverage),
        crash: scratch.state.crash.take(),
        rets: std::mem::take(&mut scratch.rets),
    }
}

/// Execute a program, reusing `scratch` across calls. Afterwards,
/// `scratch.state.coverage`, `scratch.state.crash` and `scratch.rets`
/// hold the program's outcome until the next invocation.
pub fn execute_with(kernel: &VKernel, prog: &Program, scratch: &mut ExecScratch<'_>) {
    scratch.state.reset();
    scratch.rets.clear();
    let db = scratch.db;
    for call in &prog.calls {
        if scratch.state.crash.is_some() {
            scratch.rets.push(-kgpt_vkernel::errno::EFAULT);
            continue;
        }
        let sys = call.syscall(db);
        // Restart the encoder's address space; any segments still in
        // it (from an aborted encode) are recycled into its pool.
        scratch.mb.reset();
        let mut regs = [0u64; 6];
        let mut ok = true;
        {
            let rets = &scratch.rets;
            let resolve = |r: &ResRef| -> u64 {
                match r.producer.and_then(|i| rets.get(i)) {
                    Some(v) if *v >= 0 => *v as u64,
                    _ => r.fallback,
                }
            };
            for (i, (param, value)) in sys.params.iter().zip(&call.args).enumerate() {
                if i >= 6 {
                    break;
                }
                match scratch.mb.encode_arg(&param.ty, value, &resolve) {
                    Ok(v) => regs[i] = v,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            scratch.rets.push(-kgpt_vkernel::errno::EINVAL);
            continue;
        }
        // Auto-fill top-level len/bytesize parameters from the encoded
        // sibling (`setsockopt(..., val, len)`): the encoder fills them
        // inside structs, but register-level lens refer to the pointee
        // segment size. Segments are address-sorted, so the lookup is
        // a binary search.
        let segments = scratch.mb.segments();
        for (i, param) in sys.params.iter().enumerate().take(6) {
            if let kgpt_syzlang::Type::Bytesize { target, .. }
            | kgpt_syzlang::Type::Len { target, .. } = &param.ty
            {
                if let Some((ti, _)) = sys
                    .params
                    .iter()
                    .enumerate()
                    .find(|(_, p)| &p.name == target)
                {
                    let addr = regs[ti];
                    if let Ok(si) = segments.binary_search_by_key(&addr, |s| s.0) {
                        regs[i] = segments[si].1.len() as u64;
                    }
                }
            }
        }
        // Move the encoded segments into the memory image; the image's
        // previous segments land back in the encoder for recycling on
        // the next `reset`.
        scratch.mb.swap_segments(&mut scratch.shuttle);
        scratch.mem.load(&mut scratch.shuttle);
        scratch.mb.recycle(&mut scratch.shuttle);
        let ret = kernel.exec_call(&mut scratch.state, &sys.base, &regs, &scratch.mem);
        scratch.rets.push(ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Generator;
    use kgpt_csrc::KernelCorpus;
    use kgpt_vkernel::VKernel;
    use std::collections::BTreeSet;

    #[test]
    fn generated_dm_programs_reach_coverage() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 11);
        let mut total = BTreeSet::new();
        for _ in 0..200 {
            let p = g.gen_program(6);
            let r = execute(&kernel, &db, kc.consts(), &p);
            total.extend(r.coverage);
        }
        // Open blocks + several command bodies must be reachable.
        assert!(total.len() > 30, "coverage too small: {}", total.len());
    }

    #[test]
    fn scratch_reuse_matches_one_shot_execution() {
        // The db arrives through the shared cache here: execution is
        // oblivious to whether the database is owned or cached.
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = kgpt_syzlang::SpecCache::global()
            .get_or_build(&[kc.blueprints()[0].ground_truth_spec()]);
        let db = &*db;
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(db, kc.consts(), 23);
        let progs: Vec<Program> = (0..100).map(|_| g.gen_program(8)).collect();
        let mut scratch = ExecScratch::new(db, kc.consts());
        for p in &progs {
            let one_shot = execute(&kernel, db, kc.consts(), p);
            execute_with(&kernel, p, &mut scratch);
            assert_eq!(scratch.state.coverage, one_shot.coverage);
            assert_eq!(scratch.state.crash, one_shot.crash);
            assert_eq!(scratch.rets, one_shot.rets);
        }
    }

    #[test]
    fn truth_spec_triggers_dm_bugs_eventually() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 5);
        let mut titles = BTreeSet::new();
        let mut scratch = ExecScratch::new(&db, kc.consts());
        for _ in 0..3000 {
            let p = g.gen_program(8);
            execute_with(&kernel, &p, &mut scratch);
            if let Some(c) = &scratch.state.crash {
                titles.insert(c.title.clone());
            }
        }
        assert!(
            titles.contains("kmalloc bug in ctl_ioctl"),
            "found: {titles:?}"
        );
    }

    #[test]
    fn wrong_device_name_spec_gets_no_driver_coverage() {
        // A SyzDescribe-style spec with the wrong path opens nothing.
        let spec = kgpt_syzlang::parse(
            "wrong",
            "resource fd_w[fd]\nopenat$w(dir const[0], file ptr[in, string[\"/dev/dm-controller\"]], flags const[2], mode const[0]) fd_w\nioctl$W(fd fd_w, cmd const[3], arg ptr[in, array[int8]])\n",
        )
        .unwrap();
        let db = SpecDb::from_files(vec![spec]);
        let consts = ConstDb::new();
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, &consts, 1);
        let mut total = BTreeSet::new();
        for _ in 0..100 {
            let p = g.gen_program(4);
            let r = execute(&kernel, &db, &consts, &p);
            total.extend(r.coverage);
        }
        assert!(total.is_empty(), "unexpected coverage: {total:?}");
    }
}
