//! Program execution: lower to registers + memory, run on the kernel.

use crate::program::Program;
use kgpt_syzlang::value::{MemBuilder, ResRef};
use kgpt_syzlang::{ConstDb, SpecDb};
use kgpt_vkernel::{CrashReport, MemMap, VKernel, VmState};
use std::collections::BTreeSet;

/// Result of executing one program.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Blocks covered by this program.
    pub coverage: BTreeSet<u64>,
    /// Crash triggered, if any.
    pub crash: Option<CrashReport>,
    /// Per-call return values (calls after a crash are skipped and
    /// recorded as `-EFAULT`).
    pub rets: Vec<i64>,
}

/// Execute a program against a fresh VM state.
#[must_use]
pub fn execute(
    kernel: &VKernel,
    db: &SpecDb,
    consts: &ConstDb,
    prog: &Program,
) -> ExecResult {
    let mut state = VmState::new();
    let mut rets: Vec<i64> = Vec::with_capacity(prog.calls.len());
    for call in &prog.calls {
        if state.crash.is_some() {
            rets.push(-kgpt_vkernel::errno::EFAULT);
            continue;
        }
        let resolve = |r: &ResRef| -> u64 {
            match r.producer.and_then(|i| rets.get(i)) {
                Some(v) if *v >= 0 => *v as u64,
                _ => r.fallback,
            }
        };
        let mut mb = MemBuilder::new(db, consts);
        let mut regs = [0u64; 6];
        let mut ok = true;
        for (i, (param, value)) in call.syscall.params.iter().zip(&call.args).enumerate() {
            if i >= 6 {
                break;
            }
            match mb.encode_arg(&param.ty, value, &resolve) {
                Ok(v) => regs[i] = v,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            rets.push(-kgpt_vkernel::errno::EINVAL);
            continue;
        }
        // Auto-fill top-level len/bytesize parameters from the encoded
        // sibling (`setsockopt(..., val, len)`): the encoder fills them
        // inside structs, but register-level lens refer to the pointee
        // segment size.
        let segments = mb.into_segments();
        for (i, param) in call.syscall.params.iter().enumerate().take(6) {
            if let kgpt_syzlang::Type::Bytesize { target, .. }
            | kgpt_syzlang::Type::Len { target, .. } = &param.ty
            {
                if let Some((ti, _)) = call
                    .syscall
                    .params
                    .iter()
                    .enumerate()
                    .find(|(_, p)| &p.name == target)
                {
                    let addr = regs[ti];
                    if let Some((_, bytes)) = segments.iter().find(|(a, _)| *a == addr) {
                        regs[i] = bytes.len() as u64;
                    }
                }
            }
        }
        let mem = MemMap::from_segments(segments);
        let ret = kernel.exec_call(&mut state, &call.syscall.base, &regs, &mem);
        rets.push(ret);
    }
    ExecResult {
        coverage: state.coverage,
        crash: state.crash,
        rets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Generator;
    use kgpt_csrc::KernelCorpus;
    use kgpt_vkernel::VKernel;

    #[test]
    fn generated_dm_programs_reach_coverage() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 11);
        let mut total = BTreeSet::new();
        for _ in 0..200 {
            let p = g.gen_program(6);
            let r = execute(&kernel, &db, kc.consts(), &p);
            total.extend(r.coverage);
        }
        // Open blocks + several command bodies must be reachable.
        assert!(total.len() > 30, "coverage too small: {}", total.len());
    }

    #[test]
    fn truth_spec_triggers_dm_bugs_eventually() {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, kc.consts(), 5);
        let mut titles = BTreeSet::new();
        for _ in 0..3000 {
            let p = g.gen_program(8);
            let r = execute(&kernel, &db, kc.consts(), &p);
            if let Some(c) = r.crash {
                titles.insert(c.title);
            }
        }
        assert!(
            titles.contains("kmalloc bug in ctl_ioctl"),
            "found: {titles:?}"
        );
    }

    #[test]
    fn wrong_device_name_spec_gets_no_driver_coverage() {
        // A SyzDescribe-style spec with the wrong path opens nothing.
        let spec = kgpt_syzlang::parse(
            "wrong",
            "resource fd_w[fd]\nopenat$w(dir const[0], file ptr[in, string[\"/dev/dm-controller\"]], flags const[2], mode const[0]) fd_w\nioctl$W(fd fd_w, cmd const[3], arg ptr[in, array[int8]])\n",
        )
        .unwrap();
        let db = SpecDb::from_files(vec![spec]);
        let consts = ConstDb::new();
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let mut g = Generator::new(&db, &consts, 1);
        let mut total = BTreeSet::new();
        for _ in 0..100 {
            let p = g.gen_program(4);
            let r = execute(&kernel, &db, &consts, &p);
            total.extend(r.coverage);
        }
        assert!(total.is_empty(), "unexpected coverage: {total:?}");
    }
}
