//! Campaign-side crash triage: per-shard signature capture and the
//! driving-thread minimization pass.
//!
//! The split mirrors the seed hub's discipline:
//!
//! * **capture** happens inside the shard loop ([`ShardTriage`]): the
//!   first time a shard observes a [`CrashSignature`], it clones the
//!   crashing `ProgCall` stream (a cold path — at most once per
//!   signature per shard) and counts every further observation;
//! * **minimization** happens on the driving thread at epoch
//!   boundaries, draining shards **in shard-id order**
//!   ([`TriageMinimizer::drain`]): a signature new to the campaign's
//!   [`TriageReport`] is admitted first-publisher-wins and its raw
//!   reproducer is ddmin-minimized by replaying candidate
//!   subsequences through the shared lowered [`ExecScratch`] path —
//!   so the report is a pure function of `(config, shards)` and the
//!   worker thread count never changes it.

use crate::exec::{execute_with, ExecScratch};
use crate::program::Program;
use kgpt_syzlang::lowered::LoweredDb;
use kgpt_triage::{minimize, TriageEntry, TriageReport};
use kgpt_vkernel::{CrashReport, CrashSignature, VKernel};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A first-seen signature capture waiting for the next boundary.
pub(crate) struct TriageCapture {
    signature: CrashSignature,
    title: String,
    cve: Option<String>,
    program: Program,
    epoch: u64,
}

/// Per-shard triage state: which signatures this shard has seen, the
/// captures and observation counts accumulated since the last drain.
#[derive(Default)]
pub(crate) struct ShardTriage {
    /// Signatures this shard has ever observed (capture-once guard).
    seen: BTreeSet<CrashSignature>,
    /// First-seen captures since the last drain.
    fresh: Vec<TriageCapture>,
    /// Observation counts since the last drain.
    counts: BTreeMap<CrashSignature, u64>,
}

impl ShardTriage {
    /// Record one crashing execution. `prog` is only cloned on the
    /// first local observation of the signature.
    pub(crate) fn observe(&mut self, crash: &CrashReport, prog: &Program, epoch: u64) {
        let sig = crash.signature;
        *self.counts.entry(sig).or_insert(0) += 1;
        if self.seen.insert(sig) {
            self.fresh.push(TriageCapture {
                signature: sig,
                title: crash.title.clone(),
                cve: crash.cve.clone(),
                program: prog.clone(),
                epoch,
            });
        }
    }
}

/// The driving thread's minimization engine: one reusable lowered
/// execution scratch, shared by every shard's drain.
pub(crate) struct TriageMinimizer {
    scratch: ExecScratch,
}

impl TriageMinimizer {
    pub(crate) fn new(lowered: &Arc<LoweredDb>) -> TriageMinimizer {
        TriageMinimizer {
            scratch: ExecScratch::from_lowered(Arc::clone(lowered)),
        }
    }

    /// Drain one shard into the campaign report: admit fresh captures
    /// (first-publisher-wins; only an admitted capture is minimized)
    /// and fold observation counts. Callers must drain shards in
    /// ascending id order at every boundary.
    pub(crate) fn drain(
        &mut self,
        kernel: &VKernel,
        shard_id: u32,
        triage: &mut ShardTriage,
        report: &mut TriageReport,
    ) {
        for cap in triage.fresh.drain(..) {
            let sig = cap.signature;
            if report.contains(&sig) {
                // First-publisher-wins: an earlier shard (or epoch)
                // already owns this signature; the duplicate capture
                // is dropped and only its counts (below) fold in.
                continue;
            }
            let scratch = &mut self.scratch;
            let outcome = minimize(&cap.program, |candidate| {
                execute_with(kernel, candidate, scratch);
                scratch.crash().is_some_and(|c| c.signature == sig)
            });
            let taken = report.admit(TriageEntry {
                signature: sig,
                title: cap.title,
                cve: cap.cve,
                first_epoch: cap.epoch,
                first_shard: shard_id,
                count: 0,
                raw: cap.program,
                minimized: outcome.program,
                minimize_execs: outcome.execs,
            });
            debug_assert!(taken, "signature admitted twice in one drain");
        }
        for (sig, n) in std::mem::take(&mut triage.counts) {
            report.add_count(&sig, n);
        }
    }
}
