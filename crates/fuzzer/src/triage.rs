//! Campaign-side crash triage: per-shard signature capture and the
//! driving-thread minimization pass.
//!
//! The split mirrors the seed hub's discipline:
//!
//! * **capture** happens inside the shard loop ([`ShardTriage`]): the
//!   first time a shard observes a [`CrashSignature`], it clones the
//!   crashing `ProgCall` stream (a cold path — at most once per
//!   signature per shard) and counts every further observation;
//! * **minimization** happens on the driving thread at epoch
//!   boundaries, draining shards **in shard-id order**
//!   ([`TriageMinimizer::drain`]): a signature new to the campaign's
//!   [`TriageReport`] is admitted first-publisher-wins and its raw
//!   reproducer is ddmin-minimized by replaying candidate
//!   subsequences through the shared lowered [`ExecScratch`] path —
//!   so the report is a pure function of `(config, shards)` and the
//!   worker thread count never changes it.

use crate::exec::{execute_with, ExecScratch};
use crate::program::Program;
use kgpt_syzlang::lowered::LoweredDb;
use kgpt_triage::{minimize_guided, MinimizeOutcome, TraceGuide, TriageEntry, TriageReport};
use kgpt_vkernel::{CrashReport, CrashSignature, TraceEvent, VKernel};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A first-seen signature capture waiting for the next boundary.
pub(crate) struct TriageCapture {
    signature: CrashSignature,
    title: String,
    cve: Option<String>,
    program: Program,
    epoch: u64,
}

/// Per-shard triage state: which signatures this shard has seen, the
/// captures and observation counts accumulated since the last drain.
#[derive(Default)]
pub(crate) struct ShardTriage {
    /// Signatures this shard has ever observed (capture-once guard).
    seen: BTreeSet<CrashSignature>,
    /// First-seen captures since the last drain.
    fresh: Vec<TriageCapture>,
    /// Observation counts since the last drain.
    counts: BTreeMap<CrashSignature, u64>,
}

impl ShardTriage {
    /// Signatures this shard has ever observed. At epoch boundaries
    /// (post-drain) this is the shard's *entire* triage state —
    /// `fresh` and `counts` are empty — so it is what the checkpoint
    /// layer persists.
    pub(crate) fn seen(&self) -> &BTreeSet<CrashSignature> {
        &self.seen
    }

    /// Rebuild boundary-state triage from a checkpointed seen-set
    /// (fresh captures and pending counts are empty at boundaries by
    /// construction).
    pub(crate) fn from_seen(seen: BTreeSet<CrashSignature>) -> ShardTriage {
        ShardTriage {
            seen,
            fresh: Vec::new(),
            counts: BTreeMap::new(),
        }
    }

    /// Record one crashing execution. `prog` is only cloned on the
    /// first local observation of the signature.
    pub(crate) fn observe(&mut self, crash: &CrashReport, prog: &Program, epoch: u64) {
        let sig = crash.signature;
        *self.counts.entry(sig).or_insert(0) += 1;
        if self.seen.insert(sig) {
            self.fresh.push(TriageCapture {
                signature: sig,
                title: crash.title.clone(),
                cve: crash.cve.clone(),
                program: prog.clone(),
                epoch,
            });
        }
    }
}

/// The driving thread's minimization engine: one reusable lowered
/// execution scratch, shared by every shard's drain.
pub(crate) struct TriageMinimizer {
    scratch: ExecScratch,
}

impl TriageMinimizer {
    pub(crate) fn new(lowered: &Arc<LoweredDb>) -> TriageMinimizer {
        TriageMinimizer {
            scratch: ExecScratch::from_lowered(Arc::clone(lowered)),
        }
    }

    /// Drain one shard into the campaign report: admit fresh captures
    /// (first-publisher-wins; only an admitted capture is minimized)
    /// and fold observation counts. Callers must drain shards in
    /// ascending id order at every boundary.
    pub(crate) fn drain(
        &mut self,
        kernel: &VKernel,
        shard_id: u32,
        triage: &mut ShardTriage,
        report: &mut TriageReport,
    ) {
        for cap in triage.fresh.drain(..) {
            if report.contains(&cap.signature) {
                // First-publisher-wins: an earlier shard (or epoch)
                // already owns this signature; the duplicate capture
                // is dropped and only its counts (below) fold in.
                continue;
            }
            let entry = self.minimize_capture(kernel, shard_id, cap);
            let taken = report.admit(entry);
            debug_assert!(taken, "signature admitted twice in one drain");
        }
        for (sig, n) in std::mem::take(&mut triage.counts) {
            report.add_count(&sig, n);
        }
    }

    /// Drain one shard into *candidate* entries instead of a shared
    /// report — the worker half of the distributed drain (see
    /// [`crate::fabric`]). Every fresh capture is minimized locally
    /// (the coordinator cannot replay programs; it only merges), and
    /// the coordinator applies the same first-publisher-wins admission
    /// in shard-id order, so the merged report is bit-identical to
    /// [`TriageMinimizer::drain`] on a driving thread. A capture whose
    /// signature another shard already owns globally costs a wasted
    /// local minimization here; it is dropped at admission, never
    /// changing the result. Counts are returned in signature order
    /// (the same order `drain`'s `BTreeMap` iteration folds them).
    pub(crate) fn drain_to_candidates(
        &mut self,
        kernel: &VKernel,
        shard_id: u32,
        triage: &mut ShardTriage,
    ) -> (Vec<TriageEntry>, Vec<(CrashSignature, u64)>) {
        let candidates = triage
            .fresh
            .drain(..)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|cap| self.minimize_capture(kernel, shard_id, cap))
            .collect();
        let counts = std::mem::take(&mut triage.counts).into_iter().collect();
        (candidates, counts)
    }

    /// Minimize one fresh capture into a report entry (`count` 0; the
    /// caller folds observation counts separately). Pure function of
    /// `(capture, kernel, lowered)`: the probe and every ddmin replay
    /// run on this boundary scratch and draw no campaign randomness,
    /// so both the driving-thread drain and the worker-local fabric
    /// drain produce the same entry for the same capture.
    fn minimize_capture(
        &mut self,
        kernel: &VKernel,
        shard_id: u32,
        cap: TriageCapture,
    ) -> TriageEntry {
        let sig = cap.signature;
        let (outcome, reproducible) =
            minimize_program(kernel, &mut self.scratch, &cap.program, sig);
        TriageEntry {
            signature: sig,
            title: cap.title,
            cve: cap.cve,
            first_epoch: cap.epoch,
            first_shard: shard_id,
            count: 0,
            raw: cap.program,
            minimized: outcome.program,
            minimize_execs: outcome.execs,
            reproducible,
        }
    }
}

/// Minimize a crashing program against its [`CrashSignature`], guided
/// by the flight-recorder trace of a single probe execution.
///
/// The probe runs `raw` once with tracing temporarily enabled on
/// `scratch` (the caller's enabled flag is restored before any ddmin
/// replay, so minimization probes pay no tracing cost). If the probe
/// no longer triggers `sig` — a stale capture — the program comes
/// back unchanged, non-reproducible, at a cost of one recorded exec.
/// Otherwise the probe's trace becomes a [`TraceGuide`]: the crashing
/// call index, per-call retired block counts, and per-call error
/// returns, which [`minimize_guided`] uses to attempt one verified
/// prune before running plain ddmin.
///
/// Guidance never changes the result — a pruned candidate must replay
/// to the same signature before it is used, so the outcome is exactly
/// as 1-minimal as unguided [`fn@kgpt_triage::minimize`], and bad or
/// stale hints only cost probes. Returns the minimization outcome and
/// whether the capture reproduced. The outcome's `execs` counts the
/// ddmin replays (and the guided prune probe, if attempted), not the
/// initial reproduction probe.
pub fn minimize_program(
    kernel: &VKernel,
    scratch: &mut ExecScratch,
    raw: &Program,
    sig: CrashSignature,
) -> (MinimizeOutcome, bool) {
    let was_tracing = scratch.state.trace().enabled();
    scratch.state.trace_mut().set_enabled(true);
    execute_with(kernel, raw, scratch);
    let reproducible = scratch.crash().is_some_and(|c| c.signature == sig);
    let guide = guide_from_scratch(scratch, raw.len());
    scratch.state.trace_mut().set_enabled(was_tracing);
    if !reproducible {
        // Mirrors `minimize`'s non-reproducing contract: the program
        // comes back unchanged at a cost of one probe.
        let outcome = MinimizeOutcome {
            program: raw.clone(),
            execs: 1,
        };
        return (outcome, false);
    }
    let outcome = minimize_guided(raw, &guide, |candidate| {
        execute_with(kernel, candidate, scratch);
        scratch.crash().is_some_and(|c| c.signature == sig)
    });
    (outcome, true)
}

/// Distil the last execution's trace (and return values) on `scratch`
/// into a [`TraceGuide`] for a `prog_len`-call program.
///
/// Call markers in the trace name exactly the calls that reached the
/// kernel (skipped calls emit none — see [`execute_with`]), so block
/// events are attributed to the most recent marker. `rets` holds one
/// entry per call on every path, which keeps the error vector aligned
/// with the program even when a crash short-circuits the tail.
fn guide_from_scratch(scratch: &ExecScratch, prog_len: usize) -> TraceGuide {
    let mut guide = TraceGuide {
        crash_call: None,
        call_blocks: vec![0u64; prog_len],
        call_errs: scratch.rets.iter().map(|r| *r < 0).collect(),
    };
    let mut cur: Option<usize> = None;
    for ev in scratch.state.trace().events() {
        match *ev {
            TraceEvent::Call { index } => cur = Some(index as usize),
            TraceEvent::Block { len, .. } => {
                if let Some(c) = cur.filter(|c| *c < guide.call_blocks.len()) {
                    guide.call_blocks[c] += u64::from(len);
                }
            }
            TraceEvent::Crash { .. } => guide.crash_call = cur,
        }
    }
    guide
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_syzlang::lowered::LoweredDb;
    use kgpt_syzlang::SpecDb;
    use kgpt_vkernel::{SanitizerKind, Sysno};

    #[test]
    fn stale_capture_is_reported_non_reproducible_without_panicking() {
        // A capture whose program no longer triggers its signature
        // (oracle returns false on the boundary replay): the drain
        // must admit it unchanged, flag it non-reproducible, and keep
        // going — not panic or loop in the minimizer. Fabricated by
        // observing a signature against a benign (empty) program.
        let kc = kgpt_csrc::KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        let kernel = kgpt_vkernel::VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let lowered = std::sync::Arc::new(LoweredDb::build(&db, kc.consts()));

        let sig = kgpt_vkernel::CrashSignature {
            sysno: Sysno::Ioctl,
            chain_depth: 1,
            sanitizer: SanitizerKind::Kmalloc,
            site: 42,
        };
        let crash = kgpt_vkernel::CrashReport {
            title: "stale capture".into(),
            cve: None,
            handler: "dm".into(),
            signature: sig,
        };
        let mut shard = ShardTriage::default();
        shard.observe(&crash, &Program::default(), 3);
        shard.observe(&crash, &Program::default(), 3);

        let mut report = TriageReport::new();
        TriageMinimizer::new(&lowered).drain(&kernel, 0, &mut shard, &mut report);

        let e = report.get(&sig).expect("stale capture still reported");
        assert!(!e.reproducible);
        assert_eq!(e.minimized, e.raw, "non-reproducing capture kept as-is");
        assert_eq!(e.minimize_execs, 1, "one probe, no ddmin");
        assert_eq!(e.count, 2);
        // The drained shard state is reusable: the campaign continues.
        assert!(shard.fresh.is_empty());
        assert!(shard.counts.is_empty());
        assert!(shard.seen().contains(&sig));
    }

    #[test]
    fn seen_round_trip_restores_boundary_state() {
        let sig = kgpt_vkernel::CrashSignature {
            sysno: Sysno::Close,
            chain_depth: 2,
            sanitizer: SanitizerKind::Odebug,
            site: 9,
        };
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(sig);
        let restored = ShardTriage::from_seen(seen.clone());
        assert_eq!(restored.seen(), &seen);
        assert!(restored.fresh.is_empty());
        assert!(restored.counts.is_empty());
    }
}
