//! Process-fabric building blocks: worker-side lease running and
//! coordinator-side delta merging for distributed campaigns.
//!
//! A [`crate::ShardedCampaign`] is already a pure function of
//! `(config, shards)`; this module splits its epoch-major loop across
//! process boundaries **without changing the result**. The protocol
//! (leases, transports, frames) lives in the `kgpt-fabric` crate —
//! here live the two deterministic halves it moves bytes between:
//!
//! * [`LeaseRunner`] — the worker half: a contiguous shard range
//!   stepped one epoch at a time by the existing
//!   [`crate::campaign`] shard stepper. After each epoch it drains
//!   its shards' fresh crash captures through the *same* ddmin
//!   minimizer the driving thread would use
//!   (worker-local minimization is a pure function of
//!   `(capture, kernel, lowered)`) and emits one [`EpochDelta`] per
//!   shard: the full boundary [`ShardSnapshot`] plus minimized triage
//!   candidates and observation counts.
//! * [`CampaignMerge`] — the coordinator half: collects one delta per
//!   shard at every boundary and replays, **in shard-id order**,
//!   exactly what `ShardedCampaign::run_from` does on the driving
//!   thread: triage admission (first-publisher-wins) and count
//!   folding, then hub publish, then hub import, then commit of the
//!   post-import snapshots. The coordinator never executes a program
//!   — it needs no kernel and no lowered IR — yet its
//!   [`CampaignMerge::finish`] result is bit-identical to the
//!   single-process run because every state transition it applies is
//!   the same pure function applied in the same order.
//!
//! The wire encodings here reuse the [`crate::checkpoint`] framing
//! (the same dense little-endian codec, the same per-shard layout),
//! so a delta is literally a checkpoint fragment: anything that can
//! round-trip through a `CampaignSnapshot` can round-trip through the
//! fabric.
//!
//! Failure semantics (driven by the `kgpt-fabric` coordinator):
//! committed state only ever advances at full-boundary barriers, so a
//! worker that dies mid-lease loses only uncommitted epochs — the
//! replacement restores the last committed [`ShardSnapshot`]s via
//! [`LeaseRunner::restore`] and re-runs from that boundary,
//! bit-identically. Duplicate deltas are not re-merged (the caller
//! re-acks instead), keeping the merge idempotent.

use crate::campaign::{
    CampaignConfig, CampaignResult, CrashTally, ShardSnapshot, ShardState, CORPUS_CAP,
};
use crate::checkpoint::{
    config_fingerprint, decode_corpus_entry, decode_shard, decode_triage_entry,
    encode_corpus_entry, encode_shard, encode_triage_entry, put_coverage, put_opt_str,
    put_signature, put_str, put_u32, put_u64, put_word_diff, take_coverage, take_opt_str,
    take_signature, take_str, take_u32, take_u64, take_u8, take_word_diff, CheckpointError,
};
use crate::corpus::{Corpus, CorpusEntry, CorpusStats};
use crate::hub::{HubSeed, SeedHub};
use crate::program::Program;
use crate::triage::TriageMinimizer;
use kgpt_syzlang::lowered::LoweredDb;
use kgpt_triage::{TriageEntry, TriageReport};
use kgpt_vkernel::{CoverageMap, CoverageWordDiff, CrashSignature, VKernel};
use std::sync::Arc;

/// Execution budget of shard `i` in a campaign split over `shards`
/// shards: `execs` divided as evenly as possible, earlier shards
/// taking the remainder. The same split [`crate::ShardedCampaign`]
/// uses, exposed so fabric workers reconstruct identical budgets.
#[must_use]
pub fn shard_execs(config: &CampaignConfig, shards: u32, i: u32) -> u64 {
    let n = u64::from(shards.max(1));
    config.execs / n + u64::from(u64::from(i) < config.execs % n)
}

/// One shard's contribution to an epoch boundary: its complete
/// boundary state (the checkpoint-framed [`ShardSnapshot`]) plus the
/// locally minimized triage candidates and observation counts the
/// driving-thread drain would have produced for this boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDelta {
    pub(crate) snapshot: ShardSnapshot,
    /// Fresh captures, minimized worker-side, in capture order.
    pub(crate) candidates: Vec<TriageEntry>,
    /// Observation counts since the last boundary, in signature order.
    pub(crate) counts: Vec<(CrashSignature, u64)>,
}

impl EpochDelta {
    /// The shard this delta belongs to.
    #[must_use]
    pub fn shard_id(&self) -> u32 {
        self.snapshot.id
    }

    /// Executions the shard still owes after this boundary.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.snapshot.remaining
    }

    /// Append the checkpoint-framed encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_shard(&self.snapshot, out);
        put_u32(
            out,
            u32::try_from(self.candidates.len()).unwrap_or(u32::MAX),
        );
        for e in &self.candidates {
            encode_triage_entry(e, out);
        }
        put_u32(out, u32::try_from(self.counts.len()).unwrap_or(u32::MAX));
        for (sig, n) in &self.counts {
            put_signature(out, sig);
            put_u64(out, *n);
        }
    }

    /// Decode one delta from `bytes` at `pos` (inverse of
    /// [`EpochDelta::encode_into`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on any malformed field.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<EpochDelta, CheckpointError> {
        let snapshot = decode_shard(bytes, pos)?;
        let n_candidates = take_u32(bytes, pos)? as usize;
        let mut candidates = Vec::new();
        for _ in 0..n_candidates {
            candidates.push(decode_triage_entry(bytes, pos)?);
        }
        let n_counts = take_u32(bytes, pos)? as usize;
        let mut counts = Vec::new();
        for _ in 0..n_counts {
            let sig = take_signature(bytes, pos)?;
            let n = take_u64(bytes, pos)?;
            counts.push((sig, n));
        }
        Ok(EpochDelta {
            snapshot,
            candidates,
            counts,
        })
    }
}

// ---- wire codecs shared with the kgpt-fabric protocol --------------------

/// Append a [`CampaignConfig`] in the checkpoint framing.
pub fn encode_config(config: &CampaignConfig, out: &mut Vec<u8>) {
    put_u64(out, config.execs);
    put_u64(out, config.seed);
    put_u64(out, config.max_prog_len as u64);
    match &config.enabled {
        None => out.push(0),
        Some(names) => {
            out.push(1);
            put_u32(out, u32::try_from(names.len()).unwrap_or(u32::MAX));
            for n in names {
                put_str(out, n);
            }
        }
    }
    put_u64(out, config.hub_epoch);
    put_u64(out, config.hub_top_k as u64);
    put_u64(out, config.exec_fuel);
    put_u64(out, config.trace_ring as u64);
}

/// Decode a [`CampaignConfig`] (inverse of [`encode_config`]).
///
/// # Errors
///
/// Returns a [`CheckpointError`] on any malformed field.
pub fn decode_config(bytes: &[u8], pos: &mut usize) -> Result<CampaignConfig, CheckpointError> {
    let execs = take_u64(bytes, pos)?;
    let seed = take_u64(bytes, pos)?;
    let max_prog_len = usize::try_from(take_u64(bytes, pos)?)
        .map_err(|_| CheckpointError::new("max_prog_len out of range"))?;
    let enabled = match take_u8(bytes, pos)? {
        0 => None,
        1 => {
            let n = take_u32(bytes, pos)? as usize;
            let mut names = Vec::new();
            for _ in 0..n {
                names.push(take_str(bytes, pos)?);
            }
            Some(names)
        }
        t => {
            return Err(CheckpointError::new(format!(
                "bad enabled tag {t} at {pos}"
            )))
        }
    };
    let hub_epoch = take_u64(bytes, pos)?;
    let hub_top_k = usize::try_from(take_u64(bytes, pos)?)
        .map_err(|_| CheckpointError::new("hub top_k out of range"))?;
    let exec_fuel = take_u64(bytes, pos)?;
    let trace_ring = usize::try_from(take_u64(bytes, pos)?)
        .map_err(|_| CheckpointError::new("trace_ring out of range"))?;
    Ok(CampaignConfig {
        execs,
        seed,
        max_prog_len,
        enabled,
        hub_epoch,
        hub_top_k,
        exec_fuel,
        trace_ring,
    })
}

/// Append a list of committed [`ShardSnapshot`]s (lease grants carry
/// the restore state of a reassigned range this way).
pub fn encode_snapshots(snaps: &[ShardSnapshot], out: &mut Vec<u8>) {
    put_u32(out, u32::try_from(snaps.len()).unwrap_or(u32::MAX));
    for s in snaps {
        encode_shard(s, out);
    }
}

/// Decode a list of [`ShardSnapshot`]s (inverse of
/// [`encode_snapshots`]).
///
/// # Errors
///
/// Returns a [`CheckpointError`] on any malformed field.
pub fn decode_snapshots(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Vec<ShardSnapshot>, CheckpointError> {
    let n = take_u32(bytes, pos)? as usize;
    let mut snaps = Vec::new();
    for _ in 0..n {
        snaps.push(decode_shard(bytes, pos)?);
    }
    Ok(snaps)
}

/// Append a list of [`HubSeed`]s (the boundary reply carries the
/// seeds newly retained by the hub this way).
pub fn encode_seeds(seeds: &[HubSeed], out: &mut Vec<u8>) {
    put_u32(out, u32::try_from(seeds.len()).unwrap_or(u32::MAX));
    for seed in seeds {
        put_u32(out, seed.shard);
        seed.program.encode_into(out);
        put_coverage(out, &seed.contributed);
    }
}

/// Decode a list of [`HubSeed`]s (inverse of [`encode_seeds`]).
///
/// # Errors
///
/// Returns a [`CheckpointError`] on any malformed field.
pub fn decode_seeds(bytes: &[u8], pos: &mut usize) -> Result<Vec<HubSeed>, CheckpointError> {
    let n = take_u32(bytes, pos)? as usize;
    let mut seeds = Vec::new();
    for _ in 0..n {
        let shard = take_u32(bytes, pos)?;
        let program = Program::decode_from(bytes, pos)?;
        let contributed = take_coverage(bytes, pos)?;
        seeds.push(HubSeed {
            shard,
            program,
            contributed,
        });
    }
    Ok(seeds)
}

/// Append a list of [`EpochDelta`]s (one worker delta frame carries
/// its whole range this way).
pub fn encode_deltas(deltas: &[EpochDelta], out: &mut Vec<u8>) {
    put_u32(out, u32::try_from(deltas.len()).unwrap_or(u32::MAX));
    for d in deltas {
        d.encode_into(out);
    }
}

/// Decode a list of [`EpochDelta`]s (inverse of [`encode_deltas`]).
///
/// # Errors
///
/// Returns a [`CheckpointError`] on any malformed field.
pub fn decode_deltas(bytes: &[u8], pos: &mut usize) -> Result<Vec<EpochDelta>, CheckpointError> {
    let n = take_u32(bytes, pos)? as usize;
    let mut deltas = Vec::new();
    for _ in 0..n {
        deltas.push(EpochDelta::decode_from(bytes, pos)?);
    }
    Ok(deltas)
}

// ---- incremental boundary frames -----------------------------------------

/// A baseline corpus entry that survived an epoch, identified by its
/// position in the baseline entry list, with its refreshed scheduler
/// counters. The program and contributed coverage of a surviving
/// entry never change, so the patch ships 20 bytes instead of the
/// whole entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeptEntry {
    /// Index into the baseline snapshot's entry list.
    pub index: u32,
    /// Times the entry was picked as a mutation seed, post-epoch.
    pub execs: u64,
    /// Times a mutant of the entry was itself admitted, post-epoch.
    pub hits: u64,
}

/// One shard's epoch boundary as an increment against the shard's
/// last *committed* snapshot: scalar boundary state verbatim (RNGs,
/// budgets, stats — a few dozen bytes), everything bulky as a diff.
///
/// * corpus — [`KeptEntry`] records for baseline survivors (eviction
///   is implicit: a baseline entry with no record is gone) plus the
///   full bodies of newly admitted entries. Entry identity is stable
///   because the corpus preserves survivor order and appends new
///   admissions, and an entry's `(program, contributed)` pair is
///   unique within a shard (contributions are pairwise disjoint).
/// * coverage — a [`CoverageWordDiff`] against the baseline map.
/// * crashes / triage-seen — only new or changed records; both maps
///   grow monotonically between boundaries.
/// * triage candidates / counts — already per-boundary increments in
///   [`EpochDelta`]; carried verbatim.
///
/// A patch only means something relative to the snapshot it was
/// diffed against, so the fabric protocol must guarantee baseline
/// agreement: patches are diffed by the worker against its post-ack
/// import state, which the barrier commit makes byte-identical to
/// the coordinator's committed snapshot for that boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPatch {
    pub shard_id: u32,
    pub epoch: u64,
    pub rng_pick: u64,
    pub remaining: u64,
    pub fuel_exhausted: u64,
    pub gen_rng: [u64; 4],
    pub corpus_rng: u64,
    pub corpus_stats: CorpusStats,
    /// Coverage words that changed since the baseline.
    pub cov_diff: CoverageWordDiff,
    /// Baseline survivors, in (strictly ascending) baseline order.
    pub kept: Vec<KeptEntry>,
    /// Newly admitted entries, appended after the survivors.
    pub added: Vec<CorpusEntry>,
    /// Crash-tally records that are new or changed since the baseline.
    pub crashes: Vec<(String, u64, Option<String>)>,
    /// Triage signatures seen for the first time since the baseline.
    pub seen: Vec<CrashSignature>,
    /// Fresh minimized captures, verbatim from the [`EpochDelta`].
    pub candidates: Vec<TriageEntry>,
    /// Observation counts, verbatim from the [`EpochDelta`].
    pub counts: Vec<(CrashSignature, u64)>,
}

impl EpochPatch {
    /// Whether `delta` can be expressed as an increment against
    /// `base`. False only on id misalignment or if a monotonic map
    /// shrank (impossible for real shard evolution, but diffing is
    /// fallible by construction — the caller falls back to a full
    /// frame rather than ship a lossy patch).
    fn diffable(base: &ShardSnapshot, delta: &EpochDelta) -> bool {
        base.id == delta.snapshot.id
            && base
                .crashes
                .keys()
                .all(|t| delta.snapshot.crashes.contains_key(t))
            && base.triage_seen.is_subset(&delta.snapshot.triage_seen)
    }

    /// Diff `delta` against `base` (requires [`EpochPatch::diffable`]).
    ///
    /// Survivor matching is a greedy two-pointer scan: the corpus
    /// preserves survivor order, so each new entry either matches the
    /// next unconsumed baseline entry with the same
    /// `(program, contributed)` pair, or it (and everything after it)
    /// is a new admission. A mismatch can only cost bytes, never
    /// correctness — unmatched entries ship in full, and
    /// [`EpochPatch::apply`] reconstructs the identical entry list
    /// either way.
    fn diff(base: &ShardSnapshot, delta: EpochDelta) -> EpochPatch {
        let EpochDelta {
            snapshot,
            candidates,
            counts,
        } = delta;
        let mut kept = Vec::new();
        let mut added = Vec::new();
        let mut next = 0usize;
        for e in snapshot.corpus_entries {
            let survivor = if added.is_empty() {
                base.corpus_entries[next..]
                    .iter()
                    .position(|b| b.program == e.program && b.contributed == e.contributed)
                    .map(|off| next + off)
            } else {
                // Admissions append; once one is seen, the rest of
                // the list is admissions too.
                None
            };
            match survivor {
                Some(idx) => {
                    kept.push(KeptEntry {
                        index: u32::try_from(idx).unwrap_or(u32::MAX),
                        execs: e.execs,
                        hits: e.hits,
                    });
                    next = idx + 1;
                }
                None => added.push(e),
            }
        }
        let crashes = snapshot
            .crashes
            .iter()
            .filter(|(title, record)| base.crashes.get(*title) != Some(record))
            .map(|(t, (c, cve))| (t.clone(), *c, cve.clone()))
            .collect();
        let seen = snapshot
            .triage_seen
            .difference(&base.triage_seen)
            .copied()
            .collect();
        EpochPatch {
            shard_id: snapshot.id,
            epoch: snapshot.epoch,
            rng_pick: snapshot.rng_pick,
            remaining: snapshot.remaining,
            fuel_exhausted: snapshot.fuel_exhausted,
            gen_rng: snapshot.gen_rng,
            corpus_rng: snapshot.corpus_rng,
            corpus_stats: snapshot.corpus_stats,
            cov_diff: snapshot
                .corpus_coverage
                .diff_words_since(&base.corpus_coverage),
            kept,
            added,
            crashes,
            seen,
            candidates,
            counts,
        }
    }

    /// The shard this patch belongs to.
    #[must_use]
    pub fn shard_id(&self) -> u32 {
        self.shard_id
    }

    /// Reconstruct the full [`EpochDelta`] this patch encodes,
    /// against the baseline snapshot it was diffed from.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the patch does not fit the
    /// baseline (wrong shard id, kept index out of range or out of
    /// order) — the coordinator treats that as a protocol violation,
    /// exactly like a delta frame for the wrong shard range.
    pub fn apply(self, base: &ShardSnapshot) -> Result<EpochDelta, CheckpointError> {
        if base.id != self.shard_id {
            return Err(CheckpointError::new(format!(
                "patch for shard {} applied to baseline of shard {}",
                self.shard_id, base.id
            )));
        }
        let mut entries = Vec::with_capacity(self.kept.len() + self.added.len());
        let mut min_next = 0u64;
        for k in &self.kept {
            if u64::from(k.index) < min_next {
                return Err(CheckpointError::new(format!(
                    "kept index {} out of order in shard {} patch",
                    k.index, self.shard_id
                )));
            }
            let Some(b) = base.corpus_entries.get(k.index as usize) else {
                return Err(CheckpointError::new(format!(
                    "kept index {} out of range (baseline of shard {} has {} entries)",
                    k.index,
                    self.shard_id,
                    base.corpus_entries.len()
                )));
            };
            min_next = u64::from(k.index) + 1;
            entries.push(CorpusEntry {
                program: b.program.clone(),
                contributed: b.contributed.clone(),
                execs: k.execs,
                hits: k.hits,
            });
        }
        entries.extend(self.added);
        let corpus_coverage = base.corpus_coverage.apply_word_diff(&self.cov_diff);
        let mut crashes = base.crashes.clone();
        for (title, count, cve) in self.crashes {
            crashes.insert(title, (count, cve));
        }
        let mut triage_seen = base.triage_seen.clone();
        triage_seen.extend(self.seen);
        Ok(EpochDelta {
            snapshot: ShardSnapshot {
                id: self.shard_id,
                gen_rng: self.gen_rng,
                corpus_rng: self.corpus_rng,
                corpus_coverage,
                corpus_entries: entries,
                corpus_stats: self.corpus_stats,
                crashes,
                triage_seen,
                epoch: self.epoch,
                rng_pick: self.rng_pick,
                remaining: self.remaining,
                fuel_exhausted: self.fuel_exhausted,
            },
            candidates: self.candidates,
            counts: self.counts,
        })
    }

    /// Append the checkpoint-framed encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shard_id);
        put_u64(out, self.epoch);
        put_u64(out, self.rng_pick);
        put_u64(out, self.remaining);
        put_u64(out, self.fuel_exhausted);
        for w in self.gen_rng {
            put_u64(out, w);
        }
        put_u64(out, self.corpus_rng);
        put_u64(out, self.corpus_stats.admitted);
        put_u64(out, self.corpus_stats.imported);
        put_u64(out, self.corpus_stats.evicted);
        put_word_diff(out, &self.cov_diff);
        put_u32(out, u32::try_from(self.kept.len()).unwrap_or(u32::MAX));
        for k in &self.kept {
            put_u32(out, k.index);
            put_u64(out, k.execs);
            put_u64(out, k.hits);
        }
        put_u32(out, u32::try_from(self.added.len()).unwrap_or(u32::MAX));
        for e in &self.added {
            encode_corpus_entry(e, out);
        }
        put_u32(out, u32::try_from(self.crashes.len()).unwrap_or(u32::MAX));
        for (title, count, cve) in &self.crashes {
            put_str(out, title);
            put_u64(out, *count);
            put_opt_str(out, cve.as_deref());
        }
        put_u32(out, u32::try_from(self.seen.len()).unwrap_or(u32::MAX));
        for sig in &self.seen {
            put_signature(out, sig);
        }
        put_u32(
            out,
            u32::try_from(self.candidates.len()).unwrap_or(u32::MAX),
        );
        for e in &self.candidates {
            encode_triage_entry(e, out);
        }
        put_u32(out, u32::try_from(self.counts.len()).unwrap_or(u32::MAX));
        for (sig, n) in &self.counts {
            put_signature(out, sig);
            put_u64(out, *n);
        }
    }

    /// Decode one patch from `bytes` at `pos` (inverse of
    /// [`EpochPatch::encode_into`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on any malformed field.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<EpochPatch, CheckpointError> {
        let shard_id = take_u32(bytes, pos)?;
        let epoch = take_u64(bytes, pos)?;
        let rng_pick = take_u64(bytes, pos)?;
        let remaining = take_u64(bytes, pos)?;
        let fuel_exhausted = take_u64(bytes, pos)?;
        let mut gen_rng = [0u64; 4];
        for w in &mut gen_rng {
            *w = take_u64(bytes, pos)?;
        }
        let corpus_rng = take_u64(bytes, pos)?;
        let corpus_stats = CorpusStats {
            admitted: take_u64(bytes, pos)?,
            imported: take_u64(bytes, pos)?,
            evicted: take_u64(bytes, pos)?,
        };
        let cov_diff = take_word_diff(bytes, pos)?;
        let n_kept = take_u32(bytes, pos)? as usize;
        let mut kept = Vec::new();
        for _ in 0..n_kept {
            kept.push(KeptEntry {
                index: take_u32(bytes, pos)?,
                execs: take_u64(bytes, pos)?,
                hits: take_u64(bytes, pos)?,
            });
        }
        let n_added = take_u32(bytes, pos)? as usize;
        let mut added = Vec::new();
        for _ in 0..n_added {
            added.push(decode_corpus_entry(bytes, pos)?);
        }
        let n_crashes = take_u32(bytes, pos)? as usize;
        let mut crashes = Vec::new();
        for _ in 0..n_crashes {
            let title = take_str(bytes, pos)?;
            let count = take_u64(bytes, pos)?;
            let cve = take_opt_str(bytes, pos)?;
            crashes.push((title, count, cve));
        }
        let n_seen = take_u32(bytes, pos)? as usize;
        let mut seen = Vec::new();
        for _ in 0..n_seen {
            seen.push(take_signature(bytes, pos)?);
        }
        let n_candidates = take_u32(bytes, pos)? as usize;
        let mut candidates = Vec::new();
        for _ in 0..n_candidates {
            candidates.push(decode_triage_entry(bytes, pos)?);
        }
        let n_counts = take_u32(bytes, pos)? as usize;
        let mut counts = Vec::new();
        for _ in 0..n_counts {
            let sig = take_signature(bytes, pos)?;
            let n = take_u64(bytes, pos)?;
            counts.push((sig, n));
        }
        Ok(EpochPatch {
            shard_id,
            epoch,
            rng_pick,
            remaining,
            fuel_exhausted,
            gen_rng,
            corpus_rng,
            corpus_stats,
            cov_diff,
            kept,
            added,
            crashes,
            seen,
            candidates,
            counts,
        })
    }
}

/// Diff a boundary's [`EpochDelta`]s against the matching baseline
/// snapshots (both in shard-id order), or hand the deltas back when
/// they cannot be expressed as increments — the caller then sends a
/// full frame instead. A worker's first boundary after a grant has no
/// agreed baseline, so it always takes the `Err` path.
///
/// # Errors
///
/// Returns the deltas unchanged when `base` does not align with them
/// shard-for-shard.
pub fn diff_boundary(
    base: &[ShardSnapshot],
    deltas: Vec<EpochDelta>,
) -> Result<Vec<EpochPatch>, Vec<EpochDelta>> {
    if base.len() != deltas.len()
        || !base
            .iter()
            .zip(&deltas)
            .all(|(b, d)| EpochPatch::diffable(b, d))
    {
        return Err(deltas);
    }
    Ok(base
        .iter()
        .zip(deltas)
        .map(|(b, d)| EpochPatch::diff(b, d))
        .collect())
}

/// Reconstruct a boundary's [`EpochDelta`]s from patches and the
/// baseline snapshots they were diffed against (both in shard-id
/// order).
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the patches do not fit the
/// baseline shard-for-shard.
pub fn apply_patches(
    base: &[ShardSnapshot],
    patches: Vec<EpochPatch>,
) -> Result<Vec<EpochDelta>, CheckpointError> {
    if base.len() != patches.len() {
        return Err(CheckpointError::new(format!(
            "{} patches against {} baseline snapshots",
            patches.len(),
            base.len()
        )));
    }
    base.iter().zip(patches).map(|(b, p)| p.apply(b)).collect()
}

/// Append a list of [`EpochPatch`]es (one incremental worker delta
/// frame carries its whole range this way).
pub fn encode_patches(patches: &[EpochPatch], out: &mut Vec<u8>) {
    put_u32(out, u32::try_from(patches.len()).unwrap_or(u32::MAX));
    for p in patches {
        p.encode_into(out);
    }
}

/// Decode a list of [`EpochPatch`]es (inverse of [`encode_patches`]).
///
/// # Errors
///
/// Returns a [`CheckpointError`] on any malformed field.
pub fn decode_patches(bytes: &[u8], pos: &mut usize) -> Result<Vec<EpochPatch>, CheckpointError> {
    let n = take_u32(bytes, pos)? as usize;
    let mut patches = Vec::new();
    for _ in 0..n {
        patches.push(EpochPatch::decode_from(bytes, pos)?);
    }
    Ok(patches)
}

/// Hand-rolled two-shard boundary fixture — baseline snapshots plus
/// the deltas of the next boundary, wired so [`diff_boundary`]
/// produces nontrivial patches (kept + added entries, coverage runs,
/// a changed crash record, a fresh triage signature). The snapshot
/// fields are crate-private on purpose; protocol-crate tests and
/// benches build realistic frames through this instead.
#[doc(hidden)]
#[must_use]
pub fn sample_boundary() -> (Vec<ShardSnapshot>, Vec<EpochDelta>) {
    let sig = |site: u64| CrashSignature {
        sysno: kgpt_vkernel::Sysno::Ioctl,
        chain_depth: 1,
        sanitizer: kgpt_vkernel::SanitizerKind::UseAfterFree,
        site,
    };
    let entry = |sys: u32, word: usize, bit: u64, execs: u64, hits: u64| {
        let mut words = vec![0u64; word + 1];
        words[word] = bit;
        CorpusEntry {
            program: Program {
                calls: vec![crate::program::ProgCall {
                    sys,
                    args: Vec::new(),
                }],
            },
            contributed: CoverageMap::from_words(words),
            execs,
            hits,
        }
    };
    let snap = |id: u32, epoch: u64, words: Vec<u64>, entries: Vec<CorpusEntry>| ShardSnapshot {
        id,
        gen_rng: [0x9E37_79B9_7F4A_7C15 ^ u64::from(id), 2, 3, 4 + epoch],
        corpus_rng: 0xD1B5_4A32_D192_ED03 ^ epoch,
        corpus_coverage: CoverageMap::from_words(words),
        corpus_entries: entries,
        corpus_stats: CorpusStats {
            admitted: epoch * 3,
            imported: epoch,
            evicted: 0,
        },
        crashes: [(
            format!("KASAN: use-after-free in shard {id}"),
            (epoch + 1, Some("CVE-2023-0001".to_string())),
        )]
        .into_iter()
        .collect(),
        triage_seen: (0..=epoch).map(|i| sig(100 + i)).collect(),
        epoch,
        rng_pick: epoch * 17,
        remaining: 1000 - epoch * 128,
        fuel_exhausted: 0,
    };
    let base = vec![
        snap(
            0,
            1,
            vec![0xFF, 0, 0x10],
            vec![
                entry(1, 0, 0x01, 10, 2),
                entry(2, 0, 0x02, 7, 0),
                entry(3, 1, 0x04, 4, 1),
            ],
        ),
        snap(1, 1, vec![0x0F], vec![entry(4, 0, 0x08, 3, 0)]),
    ];
    // Shard 0 evicts its middle entry, refreshes the survivors'
    // counters, and admits one new entry; shard 1 only admits.
    let next = vec![
        snap(
            0,
            2,
            vec![0xFF, 0x01, 0x10, 0x800],
            vec![
                entry(1, 0, 0x01, 12, 2),
                entry(3, 1, 0x04, 5, 1),
                entry(5, 3, 0x800, 0, 0),
            ],
        ),
        snap(
            1,
            2,
            vec![0x0F, 0, 0, 0x22],
            vec![entry(4, 0, 0x08, 6, 1), entry(6, 3, 0x22, 0, 0)],
        ),
    ];
    let deltas = next
        .into_iter()
        .map(|snapshot| EpochDelta {
            snapshot,
            candidates: Vec::new(),
            counts: vec![(sig(101), 3)],
        })
        .collect();
    (base, deltas)
}

/// Re-export of the crash-tally/option codec used for crash maps in
/// shard snapshots — the protocol crate never needs it directly, but
/// tests exercising the framing do.
#[doc(hidden)]
pub fn crash_tally_roundtrip(tally: &CrashTally) -> CrashTally {
    let mut out = Vec::new();
    put_u32(&mut out, u32::try_from(tally.len()).unwrap_or(u32::MAX));
    for (title, (count, cve)) in tally {
        put_str(&mut out, title);
        put_u64(&mut out, *count);
        put_opt_str(&mut out, cve.as_deref());
    }
    let mut pos = 0usize;
    let n = take_u32(&out, &mut pos).unwrap() as usize;
    let mut back = CrashTally::new();
    for _ in 0..n {
        let title = take_str(&out, &mut pos).unwrap();
        let count = take_u64(&out, &mut pos).unwrap();
        let cve = take_opt_str(&out, &mut pos).unwrap();
        back.insert(title, (count, cve));
    }
    back
}

// ---- worker half ---------------------------------------------------------

/// The worker half of a distributed campaign: a contiguous range of
/// shards stepped one epoch at a time, with worker-local triage
/// minimization. Thin wrapper over the exact shard stepper
/// [`crate::ShardedCampaign`] drives — the per-shard state evolution
/// is byte-for-byte the same.
pub struct LeaseRunner {
    config: CampaignConfig,
    epoch_budget: u64,
    states: Vec<ShardState>,
    minimizer: TriageMinimizer,
}

impl LeaseRunner {
    /// Fresh lease over shards `lo..hi` of a `shards_total`-shard
    /// campaign (boundary 0): each shard gets the budget and seed the
    /// single-process campaign would give it.
    #[must_use]
    pub fn fresh(
        lowered: &Arc<LoweredDb>,
        config: &CampaignConfig,
        shards_total: u32,
        lo: u32,
        hi: u32,
    ) -> LeaseRunner {
        let states = (lo..hi)
            .map(|i| {
                ShardState::new(
                    lowered,
                    config,
                    i,
                    shard_execs(config, shards_total, i),
                    config.seed.wrapping_add(u64::from(i)),
                )
            })
            .collect();
        LeaseRunner::from_states(lowered, config, states)
    }

    /// Reassigned lease: restore the range from its last committed
    /// boundary snapshots (in shard-id order). Continuing the restored
    /// range is bit-identical to continuing the original worker —
    /// the epochs it never committed are simply re-run.
    #[must_use]
    pub fn restore(
        lowered: &Arc<LoweredDb>,
        config: &CampaignConfig,
        snapshots: &[ShardSnapshot],
    ) -> LeaseRunner {
        let states = snapshots
            .iter()
            .map(|s| ShardState::restore(lowered, config, s))
            .collect();
        LeaseRunner::from_states(lowered, config, states)
    }

    fn from_states(
        lowered: &Arc<LoweredDb>,
        config: &CampaignConfig,
        states: Vec<ShardState>,
    ) -> LeaseRunner {
        LeaseRunner {
            config: config.clone(),
            epoch_budget: match config.hub_epoch {
                0 => u64::MAX,
                e => e,
            },
            states,
            minimizer: TriageMinimizer::new(lowered),
        }
    }

    /// The campaign config this lease runs under.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Shard ids this lease covers, ascending.
    #[must_use]
    pub fn shard_ids(&self) -> Vec<u32> {
        self.states.iter().map(|s| s.id).collect()
    }

    /// Executions the range still owes (summed over its shards).
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.states.iter().map(|s| s.remaining).sum()
    }

    /// Current boundary snapshots of the range, in shard-id order.
    /// Captured right after the import pass of an acked boundary,
    /// these are byte-identical to the snapshots the coordinator
    /// committed for that boundary — the baseline agreement that
    /// makes [`diff_boundary`] increments safe to ship.
    #[must_use]
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.states.iter().map(ShardState::snapshot).collect()
    }

    /// Run one epoch on every shard of the range (ascending id order)
    /// and return one [`EpochDelta`] per shard. Shards are independent
    /// between boundaries, so stepping them here is bit-identical to
    /// the single-process chunk run; the triage drain is the
    /// worker-local half of the driving-thread drain (the crate's
    /// internal `triage` module).
    #[must_use]
    pub fn run_epoch(&mut self, kernel: &VKernel) -> Vec<EpochDelta> {
        self.states
            .iter_mut()
            .map(|state| {
                state.run_epoch(kernel, self.epoch_budget);
                let (candidates, counts) =
                    self.minimizer
                        .drain_to_candidates(kernel, state.id, &mut state.triage);
                EpochDelta {
                    snapshot: state.snapshot(),
                    candidates,
                    counts,
                }
            })
            .collect()
    }

    /// Apply the boundary reply: admit every hub seed newly retained
    /// this boundary into each shard of the range (skipping a shard's
    /// own publications), exactly as `SeedHub::import_into` would.
    /// Seeds retained at *earlier* boundaries are provably no-ops for
    /// a corpus that already processed them (their claims are a subset
    /// of its seen coverage), so shipping only the new ones keeps the
    /// worker bit-identical to the single-process import pass.
    pub fn import(&mut self, seeds: &[HubSeed]) {
        for state in &mut self.states {
            for seed in seeds {
                if seed.shard == state.id {
                    continue;
                }
                let _ = state.corpus.admit_foreign(&seed.program, &seed.contributed);
            }
        }
    }
}

// ---- coordinator half ----------------------------------------------------

/// What a boundary merge produced: whether the campaign is finished,
/// and the hub seeds newly retained this boundary (to ship back to
/// every worker for their import pass; empty on the final boundary,
/// which — like the single-process loop — skips the exchange).
#[derive(Debug, Clone)]
pub struct BoundaryOutcome {
    /// All shards exhausted their budgets at this boundary.
    pub finished: bool,
    /// Hub seeds retained by this boundary's publish pass, in
    /// publication order.
    pub seeds: Vec<HubSeed>,
}

/// The coordinator half of a distributed campaign: the deterministic
/// merge of per-shard [`EpochDelta`]s into hub, triage report, and
/// committed boundary state. Replays exactly the driving-thread
/// boundary sequence of [`crate::ShardedCampaign`] — drain, publish,
/// import, commit, all in shard-id order — without ever executing a
/// program (no kernel, no lowered IR).
pub struct CampaignMerge {
    config: CampaignConfig,
    shards_total: u32,
    hub: SeedHub,
    triage: TriageReport,
    /// Last committed boundary state per shard, in shard-id order
    /// (empty until the first boundary commits).
    committed: Vec<ShardSnapshot>,
    epochs_done: u64,
    finished: bool,
}

impl CampaignMerge {
    /// Fresh merge state for a campaign of `shards_total` shards.
    #[must_use]
    pub fn new(config: CampaignConfig, shards_total: u32) -> CampaignMerge {
        let hub = SeedHub::new(config.hub_top_k);
        CampaignMerge {
            config,
            shards_total: shards_total.max(1),
            hub,
            triage: TriageReport::new(),
            committed: Vec::new(),
            epochs_done: 0,
            finished: false,
        }
    }

    /// The campaign config this merge was built for.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Total shard count.
    #[must_use]
    pub fn shards_total(&self) -> u32 {
        self.shards_total
    }

    /// Fingerprint of the campaign's deterministic identity (what
    /// grants advertise and what a resume-style check would validate).
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        config_fingerprint(&self.config, self.shards_total)
    }

    /// Boundaries fully merged so far.
    #[must_use]
    pub fn epochs_done(&self) -> u64 {
        self.epochs_done
    }

    /// Whether the final boundary has been merged.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Executions the committed boundaries account for: the
    /// campaign's total exec budget minus what the committed shard
    /// snapshots still have remaining. Zero before the first boundary
    /// commits; equal to `config.execs` once finished. A pure
    /// function of `(config, shards, boundaries merged)` — identical
    /// at any worker count — which makes it the deterministic coin a
    /// per-tenant exec budget charges.
    #[must_use]
    pub fn execs_done(&self) -> u64 {
        if self.committed.is_empty() {
            return 0;
        }
        let remaining: u64 = self.committed.iter().map(|s| s.remaining).sum();
        self.config.execs.saturating_sub(remaining)
    }

    /// Committed boundary snapshots for shards `lo..hi` — what a
    /// grant for a reassigned range carries. Empty before the first
    /// boundary commits (a fresh grant: the worker builds fresh
    /// states itself).
    #[must_use]
    pub fn snapshots(&self, lo: u32, hi: u32) -> Vec<ShardSnapshot> {
        if self.committed.is_empty() {
            return Vec::new();
        }
        self.committed[lo as usize..hi as usize].to_vec()
    }

    /// Merge one full boundary: exactly one delta per shard, in
    /// ascending shard-id order, all at boundary `epochs_done + 1`.
    /// Replays the driving-thread sequence: per shard, admit triage
    /// candidates (first-publisher-wins) and fold counts; then, unless
    /// every shard is out of budget, publish every shard's corpus to
    /// the hub and import back, both in shard-id order; finally commit
    /// the post-import snapshots as the new boundary state.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the delta set does not cover
    /// exactly the configured shards in order (a protocol violation —
    /// the caller should drop the offending lease, not the campaign).
    pub fn apply_boundary(
        &mut self,
        deltas: Vec<EpochDelta>,
    ) -> Result<BoundaryOutcome, CheckpointError> {
        if self.finished {
            return Err(CheckpointError::new("merge already finished"));
        }
        if deltas.len() != self.shards_total as usize
            || deltas
                .iter()
                .enumerate()
                .any(|(i, d)| d.snapshot.id as usize != i)
        {
            return Err(CheckpointError::new(format!(
                "boundary delta set inconsistent: {} deltas for {} shards",
                deltas.len(),
                self.shards_total
            )));
        }
        let mut deltas = deltas;
        // Triage drain, shard-id order: candidates first (an earlier
        // shard's admission wins), then counts (which may reference a
        // signature admitted by any earlier drain — same invariant as
        // the driving-thread loop).
        for d in &mut deltas {
            for cand in d.candidates.drain(..) {
                if !self.triage.contains(&cand.signature) {
                    let taken = self.triage.admit(cand);
                    debug_assert!(taken, "signature admitted twice in one boundary");
                }
            }
            for (sig, n) in d.counts.drain(..) {
                self.triage.add_count(&sig, n);
            }
        }
        self.epochs_done += 1;
        // Final boundary: like the single-process loop, break *before*
        // the exchange — the last drain happens, the last publish does
        // not.
        if deltas.iter().all(|d| d.snapshot.remaining == 0) {
            self.committed = deltas.into_iter().map(|d| d.snapshot).collect();
            self.finished = true;
            return Ok(BoundaryOutcome {
                finished: true,
                seeds: Vec::new(),
            });
        }
        // Exchange: rebuild each shard's corpus from its snapshot
        // (Corpus::from_parts is the checkpoint-restore path), then
        // publish all, then import all — shard-id order throughout,
        // including the hub's `published` offer counter.
        let mut corpora: Vec<Corpus> = deltas
            .iter()
            .map(|d| {
                Corpus::from_parts(
                    CORPUS_CAP,
                    d.snapshot.corpus_rng,
                    d.snapshot.corpus_coverage.clone(),
                    d.snapshot.corpus_entries.clone(),
                    d.snapshot.corpus_stats,
                )
            })
            .collect();
        let seeds_before = self.hub.seeds().len();
        for (d, corpus) in deltas.iter().zip(&corpora) {
            let _ = self.hub.publish(d.snapshot.id, corpus);
        }
        let seeds = self.hub.seeds()[seeds_before..].to_vec();
        for (d, corpus) in deltas.iter().zip(&mut corpora) {
            let _ = self.hub.import_into(d.snapshot.id, corpus);
        }
        // Commit the post-import state — the same capture point the
        // single-process checkpoint uses, so a reassigned range
        // restored from here re-enters the loop with nothing replayed
        // and nothing lost.
        self.committed = deltas
            .into_iter()
            .zip(corpora)
            .map(|(d, corpus)| {
                let mut snap = d.snapshot;
                snap.corpus_rng = corpus.rng_state();
                snap.corpus_stats = corpus.stats();
                snap.corpus_coverage = corpus.coverage().clone();
                snap.corpus_entries = corpus.entries().to_vec();
                snap
            })
            .collect();
        Ok(BoundaryOutcome {
            finished: false,
            seeds,
        })
    }

    /// Fold the finished campaign into its result — the same merge,
    /// in the same shard-id order, as the single-process
    /// `ShardedCampaign`, so the result is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when called before the final
    /// boundary was merged.
    pub fn finish(self) -> Result<CampaignResult, CheckpointError> {
        if !self.finished {
            return Err(CheckpointError::new(format!(
                "campaign not finished: {} boundaries merged",
                self.epochs_done
            )));
        }
        let execs = self.config.execs;
        Ok(self.fold(execs))
    }

    /// Fold the campaign at its **current committed boundary** —
    /// graceful budget termination. The result is bit-identical to an
    /// unlimited run of the same config halted at the same boundary
    /// (same fold of the same committed snapshots), with `execs` set
    /// to [`CampaignMerge::execs_done`]. Delegates to
    /// [`CampaignMerge::finish`] when the final boundary has already
    /// merged.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when no boundary has committed
    /// yet — there is no state to fold, and terminating a tenant
    /// before its first boundary would not be a boundary-aligned
    /// truncation.
    pub fn finish_early(self) -> Result<CampaignResult, CheckpointError> {
        if self.finished {
            return self.finish();
        }
        if self.committed.is_empty() {
            return Err(CheckpointError::new(
                "no boundary committed: nothing to fold early",
            ));
        }
        let execs = self.execs_done();
        Ok(self.fold(execs))
    }

    /// The shared result fold: merge the committed snapshots in
    /// shard-id order — the same fold, in the same order, as the
    /// single-process `ShardedCampaign`.
    fn fold(self, execs: u64) -> CampaignResult {
        let mut coverage = CoverageMap::new();
        let mut crashes = CrashTally::new();
        let mut corpus_size = 0usize;
        let mut fuel_exhausted = 0u64;
        for s in self.committed {
            coverage.merge(&s.corpus_coverage);
            for (title, (count, cve)) in s.crashes {
                let e = crashes.entry(title).or_insert((0, cve));
                e.0 += count;
            }
            corpus_size += s.corpus_entries.len();
            fuel_exhausted += s.fuel_exhausted;
        }
        CampaignResult {
            coverage,
            crashes,
            execs,
            corpus_size,
            triage: self.triage,
            fuel_exhausted,
        }
    }
}

/// What [`reference_run`] produced: the single-process reference a
/// distributed (possibly budget-truncated) campaign is compared
/// against bit-for-bit.
#[derive(Debug)]
pub struct ReferenceRun {
    /// The merged result.
    pub result: CampaignResult,
    /// Boundaries merged before the run stopped.
    pub boundaries: u64,
    /// Whether an exec quota stopped the run before its natural final
    /// boundary.
    pub budget_exhausted: bool,
}

/// Drive a whole campaign through [`LeaseRunner`] + [`CampaignMerge`]
/// in one process — the reference that any fabric execution of the
/// same config must reproduce bit-identically at any worker count.
///
/// `exec_quota` is a per-campaign exec budget (`None` = unlimited):
/// after each merged boundary, if the committed
/// [`CampaignMerge::execs_done`] has reached the quota the run stops
/// *at that boundary* and folds early — exactly the graceful
/// budget-exhaustion termination the multi-tenant fabric service
/// performs, so a starved tenant can be checked against this
/// reference too.
#[must_use]
pub fn reference_run(
    kernel: &VKernel,
    lowered: &Arc<LoweredDb>,
    config: &CampaignConfig,
    shards: u32,
    exec_quota: Option<u64>,
) -> ReferenceRun {
    let mut merge = CampaignMerge::new(config.clone(), shards);
    let mut runner = LeaseRunner::fresh(lowered, config, shards, 0, shards);
    loop {
        let deltas = runner.run_epoch(kernel);
        let outcome = merge.apply_boundary(deltas).expect("reference boundary");
        if outcome.finished {
            let boundaries = merge.epochs_done();
            return ReferenceRun {
                result: merge.finish().expect("reference finished"),
                boundaries,
                budget_exhausted: false,
            };
        }
        if exec_quota.is_some_and(|quota| merge.execs_done() >= quota) {
            let boundaries = merge.epochs_done();
            return ReferenceRun {
                result: merge.finish_early().expect("reference early fold"),
                boundaries,
                budget_exhausted: true,
            };
        }
        runner.import(&outcome.seeds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;
    use kgpt_syzlang::{ConstDb, SpecCache, SpecFile};

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    fn cfg(execs: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            execs,
            seed,
            hub_epoch: 250,
            hub_top_k: 4,
            ..CampaignConfig::default()
        }
    }

    /// Drive a whole campaign through LeaseRunner + CampaignMerge in
    /// one process, `ranges` leases wide.
    fn fabric_inline(
        kernel: &VKernel,
        suite: &[SpecFile],
        consts: &ConstDb,
        config: &CampaignConfig,
        shards: u32,
        ranges: &[(u32, u32)],
    ) -> CampaignResult {
        let db = SpecCache::global().get_or_build(suite);
        let lowered = SpecCache::global().get_or_lower(&db, consts);
        let mut merge = CampaignMerge::new(config.clone(), shards);
        let mut runners: Vec<LeaseRunner> = ranges
            .iter()
            .map(|&(lo, hi)| LeaseRunner::fresh(&lowered, config, shards, lo, hi))
            .collect();
        loop {
            let mut deltas = Vec::new();
            for r in &mut runners {
                deltas.extend(r.run_epoch(kernel));
            }
            let outcome = merge.apply_boundary(deltas).expect("boundary");
            if outcome.finished {
                break;
            }
            for r in &mut runners {
                r.import(&outcome.seeds);
            }
        }
        merge.finish().expect("finished")
    }

    #[test]
    fn inline_fabric_matches_sharded_campaign_at_any_range_split() {
        let (kernel, suite, consts) = dm_setup();
        let config = cfg(2000, 11);
        let reference = crate::ShardedCampaign::new(&kernel, &suite, &consts, config.clone())
            .with_shards(4)
            .run();
        for ranges in [
            vec![(0u32, 4u32)],
            vec![(0, 2), (2, 4)],
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
        ] {
            let r = fabric_inline(&kernel, &suite, &consts, &config, 4, &ranges);
            assert_eq!(reference.coverage, r.coverage, "{ranges:?}");
            assert_eq!(reference.crashes, r.crashes, "{ranges:?}");
            assert_eq!(reference.corpus_size, r.corpus_size, "{ranges:?}");
            assert_eq!(reference.triage, r.triage, "{ranges:?}");
            assert_eq!(reference.fuel_exhausted, r.fuel_exhausted, "{ranges:?}");
        }
    }

    #[test]
    fn restored_lease_rerun_is_bit_identical() {
        // Run 2 ranges; at every boundary, throw away range 1's live
        // runner and restore it from the committed snapshots — the
        // "worker died, replacement re-runs from the last committed
        // boundary" path — and the result must not change.
        let (kernel, suite, consts) = dm_setup();
        let config = cfg(2000, 7);
        let reference = fabric_inline(&kernel, &suite, &consts, &config, 4, &[(0, 2), (2, 4)]);

        let db = SpecCache::global().get_or_build(&suite);
        let lowered = SpecCache::global().get_or_lower(&db, &consts);
        let mut merge = CampaignMerge::new(config.clone(), 4);
        let mut left = LeaseRunner::fresh(&lowered, &config, 4, 0, 2);
        loop {
            // Range 1 is rebuilt every boundary: fresh at boundary 0,
            // restored from committed state afterwards — replaying the
            // epoch its predecessor "lost".
            let mut right = if merge.epochs_done() == 0 {
                LeaseRunner::fresh(&lowered, &config, 4, 2, 4)
            } else {
                LeaseRunner::restore(&lowered, &config, &merge.snapshots(2, 4))
            };
            let mut deltas = left.run_epoch(&kernel);
            deltas.extend(right.run_epoch(&kernel));
            let outcome = merge.apply_boundary(deltas).expect("boundary");
            if outcome.finished {
                break;
            }
            left.import(&outcome.seeds);
            // `right` is dropped here *before* importing: its
            // replacement restores the committed post-import state.
        }
        let r = merge.finish().expect("finished");
        assert_eq!(reference.coverage, r.coverage);
        assert_eq!(reference.crashes, r.crashes);
        assert_eq!(reference.corpus_size, r.corpus_size);
        assert_eq!(reference.triage, r.triage);
    }

    #[test]
    fn delta_and_grant_codecs_round_trip() {
        let (kernel, suite, consts) = dm_setup();
        let config = CampaignConfig {
            enabled: Some(vec!["ioctl$dm".into(), "openat$dm".into()]),
            ..cfg(600, 3)
        };
        let db = SpecCache::global().get_or_build(&suite);
        let lowered = SpecCache::global().get_or_lower(&db, &consts);
        let mut runner = LeaseRunner::fresh(&lowered, &config, 2, 0, 2);
        let deltas = runner.run_epoch(&kernel);
        assert_eq!(deltas.len(), 2);

        let mut out = Vec::new();
        encode_deltas(&deltas, &mut out);
        let mut pos = 0usize;
        let back = decode_deltas(&out, &mut pos).expect("deltas decode");
        assert_eq!(pos, out.len());
        assert_eq!(deltas, back);

        let mut out = Vec::new();
        encode_config(&config, &mut out);
        let mut pos = 0usize;
        let back = decode_config(&out, &mut pos).expect("config decode");
        assert_eq!(pos, out.len());
        assert_eq!(
            config_fingerprint(&config, 2),
            config_fingerprint(&back, 2),
            "config round-trip must preserve the fingerprint"
        );

        let snaps: Vec<ShardSnapshot> = deltas.iter().map(|d| d.snapshot.clone()).collect();
        let mut out = Vec::new();
        encode_snapshots(&snaps, &mut out);
        let mut pos = 0usize;
        assert_eq!(decode_snapshots(&out, &mut pos).expect("snaps"), snaps);

        let seeds = vec![HubSeed {
            shard: 1,
            program: Program::default(),
            contributed: [7u64, 9].iter().copied().collect(),
        }];
        let mut out = Vec::new();
        encode_seeds(&seeds, &mut out);
        let mut pos = 0usize;
        assert_eq!(decode_seeds(&out, &mut pos).expect("seeds"), seeds);
    }

    #[test]
    fn sample_boundary_patches_round_trip_and_shrink() {
        let (base, deltas) = sample_boundary();
        let patches = diff_boundary(&base, deltas.clone()).expect("diffable fixture");
        // The fixture is wired to exercise every increment kind.
        assert_eq!(patches[0].kept.len(), 2, "two shard-0 survivors");
        assert_eq!(patches[0].added.len(), 1, "one shard-0 admission");
        assert_eq!(patches[0].kept[0].index, 0);
        assert_eq!(patches[0].kept[1].index, 2, "middle entry evicted");
        assert_eq!(patches[1].kept.len(), 1);
        assert_eq!(patches[1].added.len(), 1);
        assert!(!patches[0].cov_diff.is_empty());
        assert_eq!(patches[0].crashes.len(), 1, "crash count changed");
        assert_eq!(patches[0].seen.len(), 1, "one fresh signature");

        let mut incr = Vec::new();
        encode_patches(&patches, &mut incr);
        let mut pos = 0usize;
        let back = decode_patches(&incr, &mut pos).expect("patches decode");
        assert_eq!(pos, incr.len());
        assert_eq!(patches, back);
        assert_eq!(apply_patches(&base, back).expect("apply"), deltas);

        let mut full = Vec::new();
        encode_deltas(&deltas, &mut full);
        assert!(
            incr.len() < full.len(),
            "incremental ({}) must be smaller than full ({})",
            incr.len(),
            full.len()
        );
    }

    #[test]
    fn real_epoch_patches_reconstruct_deltas_exactly() {
        let (kernel, suite, consts) = dm_setup();
        let config = cfg(1500, 5);
        let db = SpecCache::global().get_or_build(&suite);
        let lowered = SpecCache::global().get_or_lower(&db, &consts);
        let mut merge = CampaignMerge::new(config.clone(), 2);
        let mut runner = LeaseRunner::fresh(&lowered, &config, 2, 0, 2);

        // Boundary 1 has no agreed baseline yet — it ships full.
        let deltas = runner.run_epoch(&kernel);
        let outcome = merge.apply_boundary(deltas).expect("boundary 1");
        assert!(!outcome.finished);
        runner.import(&outcome.seeds);

        // Baseline agreement: the worker's post-import snapshots are
        // byte-identical to what the coordinator committed.
        let baseline = runner.snapshots();
        assert_eq!(baseline, merge.snapshots(0, 2));

        // Boundary 2 diffs against that baseline; the patches must
        // reconstruct the deltas exactly and cost fewer bytes.
        let deltas = runner.run_epoch(&kernel);
        let patches =
            diff_boundary(&baseline, deltas.clone()).expect("committed baseline is diffable");
        let mut incr = Vec::new();
        encode_patches(&patches, &mut incr);
        let mut pos = 0usize;
        let back = decode_patches(&incr, &mut pos).expect("decode");
        assert_eq!(apply_patches(&baseline, back).expect("apply"), deltas);

        let mut full = Vec::new();
        encode_deltas(&deltas, &mut full);
        assert!(
            incr.len() < full.len(),
            "incremental ({}) must be smaller than full ({})",
            incr.len(),
            full.len()
        );
    }

    #[test]
    fn patch_apply_rejects_bad_fits() {
        let (base, deltas) = sample_boundary();
        let patches = diff_boundary(&base, deltas).expect("diffable fixture");

        // Wrong baseline order ⇒ shard-id mismatch.
        let swapped: Vec<ShardSnapshot> = vec![base[1].clone(), base[0].clone()];
        assert!(apply_patches(&swapped, patches.clone()).is_err());

        // Kept index past the end of the baseline entry list.
        let mut bad = patches.clone();
        bad[0].kept[0].index = 999;
        assert!(apply_patches(&base, bad).is_err());

        // Kept indices out of order (decode accepts them — the fit
        // check is the applier's job).
        let mut bad = patches.clone();
        bad[0].kept.swap(0, 1);
        assert!(apply_patches(&base, bad).is_err());

        // Count mismatch.
        assert!(apply_patches(&base[..1], patches).is_err());

        // A fresh grant has no baseline: diffing against an empty
        // baseline must hand the deltas back for a full frame.
        let (_, deltas) = sample_boundary();
        assert!(diff_boundary(&[], deltas).is_err());
    }

    #[test]
    fn merge_rejects_malformed_boundaries() {
        let (kernel, suite, consts) = dm_setup();
        let config = cfg(500, 1);
        let db = SpecCache::global().get_or_build(&suite);
        let lowered = SpecCache::global().get_or_lower(&db, &consts);
        let mut runner = LeaseRunner::fresh(&lowered, &config, 2, 0, 2);
        let deltas = runner.run_epoch(&kernel);

        // Too few deltas.
        let mut merge = CampaignMerge::new(config.clone(), 2);
        assert!(merge.apply_boundary(deltas[..1].to_vec()).is_err());
        // Wrong order.
        let mut swapped = deltas.clone();
        swapped.swap(0, 1);
        assert!(merge.apply_boundary(swapped).is_err());
        // Finish before the final boundary.
        assert!(CampaignMerge::new(config, 2).finish().is_err());
    }

    #[test]
    fn shard_execs_matches_the_sharded_split() {
        let config = CampaignConfig {
            execs: 1003,
            ..CampaignConfig::default()
        };
        let total: u64 = (0..8).map(|i| shard_execs(&config, 8, i)).sum();
        assert_eq!(total, 1003);
        assert!((0..8).all(|i| [125u64, 126].contains(&shard_execs(&config, 8, i))));
    }
}
