//! Program representation — re-exported from
//! [`kgpt_syzlang::prog`], where the type moved so the crash-triage
//! subsystem (`kgpt-triage`) can project and minimize programs
//! without depending on the fuzzing loop. The fuzzer keeps this
//! module as the conventional path (`kgpt_fuzzer::program::Program`).

pub use kgpt_syzlang::prog::{ProgCall, Program};
