//! Program representation: an ordered list of syscalls with concrete
//! argument values and resource references into earlier calls.

use kgpt_syzlang::{Syscall, Value};
use serde::{Deserialize, Serialize};

/// One call in a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgCall {
    /// The syscall description this call instantiates.
    pub syscall: Syscall,
    /// One value per parameter.
    pub args: Vec<Value>,
}

/// A syscall sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Calls in execution order.
    pub calls: Vec<ProgCall>,
}

impl Program {
    /// Number of calls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Drop trailing calls, keeping resource references valid (they
    /// only ever point backwards).
    pub fn truncate(&mut self, len: usize) {
        self.calls.truncate(len);
    }

    /// Human-readable one-line-per-call rendering (for crash reports).
    #[must_use]
    pub fn display(&self) -> String {
        self.calls
            .iter()
            .map(|c| c.syscall.name())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_and_display() {
        let sys = Syscall {
            base: "close".into(),
            variant: None,
            params: vec![],
            ret: None,
        };
        let mut p = Program {
            calls: vec![
                ProgCall {
                    syscall: sys.clone(),
                    args: vec![],
                },
                ProgCall {
                    syscall: sys,
                    args: vec![],
                },
            ],
        };
        assert_eq!(p.len(), 2);
        p.truncate(1);
        assert_eq!(p.display(), "close");
        assert!(!p.is_empty());
    }
}
