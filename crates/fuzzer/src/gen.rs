//! Spec-driven program generation and mutation.

use crate::program::{ProgCall, Program};
use kgpt_syzlang::ast::{ArrayLen, Dir, Type};
use kgpt_syzlang::value::ResRef;
use kgpt_syzlang::{ConstDb, SpecDb, Syscall, Value};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Interesting scalar boundary values the generator favours.
const INTERESTING: &[u64] = &[
    0,
    1,
    2,
    3,
    7,
    8,
    16,
    64,
    127,
    128,
    255,
    0x7fff,
    0xffff,
    0x7fff_ffff,
    0xffff_ffff,
    u64::MAX,
];

/// Generates and mutates programs from a specification database.
pub struct Generator<'a> {
    db: &'a SpecDb,
    consts: &'a ConstDb,
    rng: StdRng,
    enabled: Vec<String>,
}

impl<'a> Generator<'a> {
    /// Create a generator over all syscalls of the database.
    #[must_use]
    pub fn new(db: &'a SpecDb, consts: &'a ConstDb, seed: u64) -> Generator<'a> {
        let enabled = db.syscalls().map(Syscall::name).collect();
        Generator {
            db,
            consts,
            rng: StdRng::seed_from_u64(seed),
            enabled,
        }
    }

    /// Restrict generation to the given syscalls (per-driver runs).
    #[must_use]
    pub fn with_enabled(mut self, enabled: Vec<String>) -> Generator<'a> {
        self.enabled = enabled
            .into_iter()
            .filter(|n| self.db.syscall(n).is_some())
            .collect();
        self
    }

    /// Number of enabled syscalls.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled.len()
    }

    /// Generate a fresh program of at most `max_len` calls.
    pub fn gen_program(&mut self, max_len: usize) -> Program {
        let mut prog = Program::default();
        let want = self.rng.random_range(1..=max_len.max(1));
        for _ in 0..want {
            if self.enabled.is_empty() {
                break;
            }
            let name = self.enabled[self.rng.random_range(0..self.enabled.len())].clone();
            self.append_call(&mut prog, &name, 0);
            if prog.len() >= max_len {
                break;
            }
        }
        prog
    }

    /// Append a call (prepending producers for its resources).
    fn append_call(&mut self, prog: &mut Program, name: &str, depth: usize) -> Option<usize> {
        if depth > 6 || prog.len() > 24 {
            return None;
        }
        let sys = self.db.syscall(name)?.clone();
        // Resource context: resource name → producing call index.
        let mut ctx: BTreeMap<String, usize> = BTreeMap::new();
        for (i, c) in prog.calls.iter().enumerate() {
            if let Some(r) = &c.syscall.ret {
                ctx.insert(r.clone(), i);
            }
        }
        // Satisfy consumed resources.
        for p in &sys.params {
            if let Type::Resource(r) = &p.ty {
                if !ctx.contains_key(r) && self.db.resource(r).is_some() {
                    let producers: Vec<String> =
                        self.db.producers_of(r).map(Syscall::name).collect();
                    if let Some(pn) = producers.choose(&mut self.rng).cloned() {
                        if let Some(idx) = self.append_call(prog, &pn, depth + 1) {
                            ctx.insert(r.clone(), idx);
                        }
                    }
                }
            }
        }
        let args = sys
            .params
            .iter()
            .map(|p| self.gen_value(&p.ty, &ctx, 0))
            .collect();
        prog.calls.push(ProgCall { syscall: sys, args });
        Some(prog.len() - 1)
    }

    /// Generate a value for a type.
    fn gen_value(&mut self, ty: &Type, ctx: &BTreeMap<String, usize>, depth: usize) -> Value {
        if depth > 12 {
            return Value::Int(0);
        }
        match ty {
            Type::Int { bits, range } => {
                let v = match range {
                    // Mostly respect declared ranges; occasionally probe
                    // outside them (the kernel should EINVAL).
                    Some((lo, hi)) if self.rng.random_bool(0.85) => {
                        if hi > lo {
                            lo + self.rng.random_range(0..=(hi - lo))
                        } else {
                            *lo
                        }
                    }
                    _ => self.gen_int(),
                };
                Value::Int(bits.truncate(v))
            }
            Type::Const { .. } => Value::Int(0), // encoder substitutes
            Type::Flags { set, bits } => {
                let values: Vec<u64> = self
                    .db
                    .flags_def(set)
                    .map(|fd| {
                        fd.values
                            .iter()
                            .filter_map(|v| self.consts.resolve(v))
                            .collect()
                    })
                    .unwrap_or_default();
                let mut acc = 0u64;
                for v in &values {
                    if self.rng.random_bool(0.4) {
                        acc |= v;
                    }
                }
                if values.is_empty() || self.rng.random_bool(0.05) {
                    acc = self.gen_int();
                }
                Value::Int(bits.truncate(acc))
            }
            Type::StringLit { values } => {
                let s = values
                    .choose(&mut self.rng)
                    .cloned()
                    .unwrap_or_default();
                Value::Bytes(s.into_bytes())
            }
            Type::Ptr { elem, .. } => {
                if self.rng.random_bool(0.03) {
                    Value::Ptr { pointee: None }
                } else {
                    Value::ptr_to(self.gen_value(elem, ctx, depth + 1))
                }
            }
            Type::Array { elem, len } => {
                let n = match len {
                    ArrayLen::Fixed(n) => *n,
                    ArrayLen::Range(lo, hi) => {
                        if hi > lo {
                            lo + self.rng.random_range(0..=(hi - lo).min(16))
                        } else {
                            *lo
                        }
                    }
                    // Long-tailed sizes: mostly small, sometimes page-
                    // scale (large payloads are how the sendmsg-path
                    // bugs are reached).
                    ArrayLen::Unsized => match self.rng.random_range(0..10u32) {
                        0..=6 => self.rng.random_range(0..8),
                        7 | 8 => self.rng.random_range(8..256),
                        _ => self.rng.random_range(256..4096),
                    },
                };
                // Byte arrays as raw buffers (cheaper, and what the
                // kernel decodes anyway).
                if matches!(
                    elem.as_ref(),
                    Type::Int {
                        bits: kgpt_syzlang::IntBits::I8,
                        ..
                    }
                ) {
                    let mut bytes = vec![0u8; n as usize];
                    for b in &mut bytes {
                        *b = self.rng.random_range(0..=255u32) as u8;
                    }
                    return Value::Bytes(bytes);
                }
                let mut vs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    vs.push(self.gen_value(elem, ctx, depth + 1));
                }
                Value::Group(vs)
            }
            Type::Len { .. } | Type::Bytesize { .. } => Value::Int(0), // auto-filled
            Type::Resource(r) => Value::Res(ResRef {
                producer: ctx.get(r).copied(),
                // Dangling references land on small fds/ids sometimes.
                fallback: if self.rng.random_bool(0.5) {
                    self.rng.random_range(0..6)
                } else {
                    u64::MAX
                },
            }),
            Type::Named(n) => {
                let Some(def) = self.db.struct_def(n) else {
                    return Value::Int(0);
                };
                let def = def.clone();
                if def.is_union {
                    let arm = self.rng.random_range(0..def.fields.len().max(1));
                    let v = def
                        .fields
                        .get(arm)
                        .map(|f| self.gen_value(&f.ty, ctx, depth + 1))
                        .unwrap_or(Value::Int(0));
                    Value::Union {
                        arm,
                        value: Box::new(v),
                    }
                } else {
                    let vs = def
                        .fields
                        .iter()
                        .map(|f| self.gen_value(&f.ty, ctx, depth + 1))
                        .collect();
                    Value::Group(vs)
                }
            }
            Type::Proc { start, per, .. } => Value::Int(start + per),
            Type::Void => Value::Group(Vec::new()),
        }
    }

    fn gen_int(&mut self) -> u64 {
        if self.rng.random_bool(0.7) {
            *INTERESTING.choose(&mut self.rng).expect("non-empty")
        } else {
            self.rng.random()
        }
    }

    /// Mutate a program: regenerate an argument, append a call, or
    /// truncate. Returns a fresh program (input untouched).
    pub fn mutate(&mut self, prog: &Program, max_len: usize) -> Program {
        let mut p = prog.clone();
        if p.is_empty() {
            return self.gen_program(max_len);
        }
        match self.rng.random_range(0..10u32) {
            // Regenerate one argument of one call.
            0..=5 => {
                let ci = self.rng.random_range(0..p.calls.len());
                let ctx: BTreeMap<String, usize> = p.calls[..ci]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.syscall.ret.clone().map(|r| (r, i)))
                    .collect();
                let call = &mut p.calls[ci];
                if !call.args.is_empty() {
                    let ai = self.rng.random_range(0..call.args.len());
                    let ty = call.syscall.params[ai].ty.clone();
                    call.args[ai] = self.gen_value(&ty, &ctx, 0);
                }
            }
            // Append a random enabled call.
            6..=8 => {
                if !self.enabled.is_empty() && p.len() < max_len {
                    let name =
                        self.enabled[self.rng.random_range(0..self.enabled.len())].clone();
                    self.append_call(&mut p, &name, 0);
                }
            }
            // Truncate.
            _ => {
                let keep = self.rng.random_range(1..=p.calls.len());
                p.truncate(keep);
            }
        }
        p
    }
}

/// Direction of the pointer a value sits behind (needed by tests).
#[must_use]
pub fn top_dir(ty: &Type) -> Dir {
    match ty {
        Type::Ptr { dir, .. } => *dir,
        _ => Dir::In,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;

    fn dm_db() -> (SpecDb, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        (db, kc.consts().clone())
    }

    #[test]
    fn generates_programs_with_producers() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 7);
        let mut saw_dependent = false;
        for _ in 0..50 {
            let p = g.gen_program(5);
            assert!(!p.is_empty());
            // Any ioctl must be preceded by its openat producer.
            for (i, c) in p.calls.iter().enumerate() {
                if c.syscall.base == "ioctl" {
                    for r in c.args.iter().flat_map(Value::res_refs) {
                        if let Some(pi) = r.producer {
                            assert!(pi < i, "producer after consumer");
                            assert_eq!(p.calls[pi].syscall.base, "openat");
                            saw_dependent = true;
                        }
                    }
                }
            }
        }
        assert!(saw_dependent, "no dependent calls generated in 50 programs");
    }

    #[test]
    fn generation_is_deterministic() {
        let (db, consts) = dm_db();
        let a: Vec<Program> = {
            let mut g = Generator::new(&db, &consts, 42);
            (0..10).map(|_| g.gen_program(4)).collect()
        };
        let b: Vec<Program> = {
            let mut g = Generator::new(&db, &consts, 42);
            (0..10).map(|_| g.gen_program(4)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn enabled_filter_restricts() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 1)
            .with_enabled(vec!["openat$dm".into(), "bogus$x".into()]);
        assert_eq!(g.enabled_count(), 1);
        for _ in 0..10 {
            let p = g.gen_program(3);
            for c in &p.calls {
                assert_eq!(c.syscall.name(), "openat$dm");
            }
        }
    }

    #[test]
    fn mutation_keeps_program_well_formed() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 3);
        let mut p = g.gen_program(4);
        for _ in 0..100 {
            p = g.mutate(&p, 8);
            assert!(p.len() <= 25);
            for c in &p.calls {
                assert_eq!(c.args.len(), c.syscall.params.len());
            }
        }
    }
}
