//! Spec-driven program generation and mutation.
//!
//! The generator is interning-based: syscalls are picked as dense
//! [`SpecDb`] indices (no name `String` clone per pick), producer
//! lists per resource are precomputed once at construction, and
//! resource contexts are resolved by scanning the program under
//! construction — the per-call path clones no specification AST.

use crate::program::{ProgCall, Program};
use kgpt_syzlang::ast::{ArrayLen, Dir, Type};
use kgpt_syzlang::value::ResRef;
use kgpt_syzlang::{ConstDb, SpecDb, Value};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Interesting scalar boundary values the generator favours.
const INTERESTING: &[u64] = &[
    0,
    1,
    2,
    3,
    7,
    8,
    16,
    64,
    127,
    128,
    255,
    0x7fff,
    0xffff,
    0x7fff_ffff,
    0xffff_ffff,
    u64::MAX,
];

/// Generates and mutates programs from a specification database.
pub struct Generator<'a> {
    db: &'a SpecDb,
    consts: &'a ConstDb,
    rng: StdRng,
    /// Enabled syscalls as dense database indices.
    enabled: Vec<u32>,
    /// Resource name → producing syscall indices, precomputed once.
    producers: BTreeMap<String, Vec<u32>>,
}

impl<'a> Generator<'a> {
    /// Create a generator over all syscalls of the database.
    #[must_use]
    pub fn new(db: &'a SpecDb, consts: &'a ConstDb, seed: u64) -> Generator<'a> {
        // Precompute producer index lists for every resource consumed
        // by a top-level parameter — the only lookups generation does.
        let mut producers: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for sys in db.syscalls() {
            for p in &sys.params {
                if let Type::Resource(r) = &p.ty {
                    if !producers.contains_key(r) && db.resource(r).is_some() {
                        let list = db
                            .producers_of(r)
                            .filter_map(|s| db.syscall_index(&s.name()))
                            .map(|i| i as u32)
                            .collect();
                        producers.insert(r.clone(), list);
                    }
                }
            }
        }
        Generator {
            db,
            consts,
            rng: StdRng::seed_from_u64(seed),
            enabled: (0..db.syscall_count() as u32).collect(),
            producers,
        }
    }

    /// Restrict generation to the given syscalls (per-driver runs).
    #[must_use]
    pub fn with_enabled(mut self, enabled: Vec<String>) -> Generator<'a> {
        self.enabled = enabled
            .iter()
            .filter_map(|n| self.db.syscall_index(n))
            .map(|i| i as u32)
            .collect();
        self
    }

    /// Number of enabled syscalls.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled.len()
    }

    /// Generate a fresh program of at most `max_len` calls.
    pub fn gen_program(&mut self, max_len: usize) -> Program {
        let mut prog = Program::default();
        let want = self.rng.random_range(1..=max_len.max(1));
        for _ in 0..want {
            if self.enabled.is_empty() {
                break;
            }
            let pick = self.enabled[self.rng.random_range(0..self.enabled.len())];
            self.append_call(&mut prog, pick, 0);
            if prog.len() >= max_len {
                break;
            }
        }
        prog
    }

    /// Index of the most recent call in `prog.calls[..upto]` whose
    /// return value produces `resource`.
    fn find_producer(&self, prog: &Program, upto: usize, resource: &str) -> Option<usize> {
        let db = self.db;
        prog.calls[..upto.min(prog.len())]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| c.syscall(db).ret.as_deref() == Some(resource))
            .map(|(i, _)| i)
    }

    /// Append a call (prepending producers for its resources).
    fn append_call(&mut self, prog: &mut Program, sys_idx: u32, depth: usize) -> Option<usize> {
        if depth > 6 || prog.len() > 24 {
            return None;
        }
        let db = self.db;
        let sys = db.syscall_at(sys_idx as usize);
        // Satisfy consumed resources.
        for p in &sys.params {
            if let Type::Resource(r) = &p.ty {
                if self.find_producer(prog, prog.len(), r).is_none() {
                    if let Some(pick) = self
                        .producers
                        .get(r)
                        .and_then(|list| list.choose(&mut self.rng))
                        .copied()
                    {
                        self.append_call(prog, pick, depth + 1);
                    }
                }
            }
        }
        let args = sys
            .params
            .iter()
            .map(|p| self.gen_value(&p.ty, prog, prog.len(), 0))
            .collect();
        prog.calls.push(ProgCall { sys: sys_idx, args });
        Some(prog.len() - 1)
    }

    /// Generate a value for a type, resolving resource references
    /// against the first `upto` calls of `prog`.
    fn gen_value(&mut self, ty: &Type, prog: &Program, upto: usize, depth: usize) -> Value {
        if depth > 12 {
            return Value::Int(0);
        }
        match ty {
            Type::Int { bits, range } => {
                let v = match range {
                    // Mostly respect declared ranges; occasionally probe
                    // outside them (the kernel should EINVAL).
                    Some((lo, hi)) if self.rng.random_bool(0.85) => {
                        if hi > lo {
                            lo + self.rng.random_range(0..=(hi - lo))
                        } else {
                            *lo
                        }
                    }
                    _ => self.gen_int(),
                };
                Value::Int(bits.truncate(v))
            }
            Type::Const { .. } => Value::Int(0), // encoder substitutes
            Type::Flags { set, bits } => {
                let values: Vec<u64> = self
                    .db
                    .flags_def(set)
                    .map(|fd| {
                        fd.values
                            .iter()
                            .filter_map(|v| self.consts.resolve(v))
                            .collect()
                    })
                    .unwrap_or_default();
                let mut acc = 0u64;
                for v in &values {
                    if self.rng.random_bool(0.4) {
                        acc |= v;
                    }
                }
                if values.is_empty() || self.rng.random_bool(0.05) {
                    acc = self.gen_int();
                }
                Value::Int(bits.truncate(acc))
            }
            Type::StringLit { values } => {
                let s = values.choose(&mut self.rng).cloned().unwrap_or_default();
                Value::Bytes(s.into_bytes())
            }
            Type::Ptr { elem, .. } => {
                if self.rng.random_bool(0.03) {
                    Value::Ptr { pointee: None }
                } else {
                    Value::ptr_to(self.gen_value(elem, prog, upto, depth + 1))
                }
            }
            Type::Array { elem, len } => {
                let n = match len {
                    ArrayLen::Fixed(n) => *n,
                    ArrayLen::Range(lo, hi) => {
                        if hi > lo {
                            lo + self.rng.random_range(0..=(hi - lo).min(16))
                        } else {
                            *lo
                        }
                    }
                    // Long-tailed sizes: mostly small, sometimes page-
                    // scale (large payloads are how the sendmsg-path
                    // bugs are reached).
                    ArrayLen::Unsized => match self.rng.random_range(0..10u32) {
                        0..=6 => self.rng.random_range(0..8),
                        7 | 8 => self.rng.random_range(8..256),
                        _ => self.rng.random_range(256..4096),
                    },
                };
                // Byte arrays as raw buffers (cheaper, and what the
                // kernel decodes anyway).
                if matches!(
                    elem.as_ref(),
                    Type::Int {
                        bits: kgpt_syzlang::IntBits::I8,
                        ..
                    }
                ) {
                    let mut bytes = vec![0u8; n as usize];
                    for b in &mut bytes {
                        *b = self.rng.random_range(0..=255u32) as u8;
                    }
                    return Value::Bytes(bytes);
                }
                let mut vs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    vs.push(self.gen_value(elem, prog, upto, depth + 1));
                }
                Value::Group(vs)
            }
            Type::Len { .. } | Type::Bytesize { .. } => Value::Int(0), // auto-filled
            Type::Resource(r) => Value::Res(ResRef {
                producer: self.find_producer(prog, upto, r),
                // Dangling references land on small fds/ids sometimes.
                fallback: if self.rng.random_bool(0.5) {
                    self.rng.random_range(0..6)
                } else {
                    u64::MAX
                },
            }),
            Type::Named(n) => {
                let db = self.db;
                let Some(def) = db.struct_def(n) else {
                    return Value::Int(0);
                };
                if def.is_union {
                    let arm = self.rng.random_range(0..def.fields.len().max(1));
                    let v = def
                        .fields
                        .get(arm)
                        .map(|f| self.gen_value(&f.ty, prog, upto, depth + 1))
                        .unwrap_or(Value::Int(0));
                    Value::Union {
                        arm,
                        value: Box::new(v),
                    }
                } else {
                    let vs = def
                        .fields
                        .iter()
                        .map(|f| self.gen_value(&f.ty, prog, upto, depth + 1))
                        .collect();
                    Value::Group(vs)
                }
            }
            Type::Proc { start, per, .. } => Value::Int(start + per),
            Type::Void => Value::Group(Vec::new()),
        }
    }

    fn gen_int(&mut self) -> u64 {
        if self.rng.random_bool(0.7) {
            *INTERESTING.choose(&mut self.rng).expect("non-empty")
        } else {
            self.rng.random()
        }
    }

    /// Mutate a program: regenerate an argument, append a call, or
    /// truncate. Returns a fresh program (input untouched).
    pub fn mutate(&mut self, prog: &Program, max_len: usize) -> Program {
        let mut p = prog.clone();
        if p.is_empty() {
            return self.gen_program(max_len);
        }
        match self.rng.random_range(0..10u32) {
            // Regenerate one argument of one call.
            0..=5 => {
                let ci = self.rng.random_range(0..p.calls.len());
                let n_args = p.calls[ci].args.len();
                if n_args > 0 {
                    let ai = self.rng.random_range(0..n_args);
                    let ty = &self.db.syscall_at(p.calls[ci].sys as usize).params[ai].ty;
                    let v = self.gen_value(ty, &p, ci, 0);
                    p.calls[ci].args[ai] = v;
                }
            }
            // Append a random enabled call.
            6..=8 => {
                if !self.enabled.is_empty() && p.len() < max_len {
                    let pick = self.enabled[self.rng.random_range(0..self.enabled.len())];
                    self.append_call(&mut p, pick, 0);
                }
            }
            // Truncate.
            _ => {
                let keep = self.rng.random_range(1..=p.calls.len());
                p.truncate(keep);
            }
        }
        p
    }
}

/// Direction of the pointer a value sits behind (needed by tests).
#[must_use]
pub fn top_dir(ty: &Type) -> Dir {
    match ty {
        Type::Ptr { dir, .. } => *dir,
        _ => Dir::In,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;

    fn dm_db() -> (SpecDb, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        (db, kc.consts().clone())
    }

    #[test]
    fn generates_programs_with_producers() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 7);
        let mut saw_dependent = false;
        for _ in 0..50 {
            let p = g.gen_program(5);
            assert!(!p.is_empty());
            // Any ioctl must be preceded by its openat producer.
            for (i, c) in p.calls.iter().enumerate() {
                if c.syscall(&db).base == "ioctl" {
                    for r in c.args.iter().flat_map(Value::res_refs) {
                        if let Some(pi) = r.producer {
                            assert!(pi < i, "producer after consumer");
                            assert_eq!(p.calls[pi].syscall(&db).base, "openat");
                            saw_dependent = true;
                        }
                    }
                }
            }
        }
        assert!(saw_dependent, "no dependent calls generated in 50 programs");
    }

    #[test]
    fn generation_is_deterministic() {
        let (db, consts) = dm_db();
        let a: Vec<Program> = {
            let mut g = Generator::new(&db, &consts, 42);
            (0..10).map(|_| g.gen_program(4)).collect()
        };
        let b: Vec<Program> = {
            let mut g = Generator::new(&db, &consts, 42);
            (0..10).map(|_| g.gen_program(4)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn enabled_filter_restricts() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 1)
            .with_enabled(vec!["openat$dm".into(), "bogus$x".into()]);
        assert_eq!(g.enabled_count(), 1);
        for _ in 0..10 {
            let p = g.gen_program(3);
            for c in &p.calls {
                assert_eq!(c.syscall(&db).name(), "openat$dm");
            }
        }
    }

    #[test]
    fn mutation_keeps_program_well_formed() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 3);
        let mut p = g.gen_program(4);
        for _ in 0..100 {
            p = g.mutate(&p, 8);
            assert!(p.len() <= 25);
            for c in &p.calls {
                assert_eq!(c.args.len(), c.syscall(&db).params.len());
            }
        }
    }
}
