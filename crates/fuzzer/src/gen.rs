//! Spec-driven program generation and mutation over the lowered IR.
//!
//! The generator walks the flat [`LoweredDb`] arena: flag sets are
//! pre-resolved `u64` slices, struct fields are index tables, and
//! resource producers are integer lists — the per-value path performs
//! no name lookup, no `flags_def`/`struct_def` call, and no constant
//! resolution. The RNG draw sequence is **identical** to the AST walk
//! ([`crate::reference::AstGenerator`]), so program streams are
//! bit-for-bit the same; `tests/properties.rs` and the `lowering`
//! section of `fuzz_bench` pin that equivalence.

use crate::program::{ProgCall, Program};
use crate::reference::INTERESTING;
use kgpt_syzlang::ast::ArrayLen;
use kgpt_syzlang::lowered::{LType, LoweredDb};
use kgpt_syzlang::value::ResRef;
use kgpt_syzlang::{ConstDb, SpecDb, Value};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Generates and mutates programs from a lowered specification.
pub struct Generator {
    lowered: Arc<LoweredDb>,
    rng: StdRng,
    /// Enabled syscalls as dense database indices.
    enabled: Vec<u32>,
}

impl Generator {
    /// Create a generator over all syscalls of a database, lowering
    /// it on the spot. Campaign code paths share one pre-lowered IR
    /// via [`Generator::from_lowered`] instead.
    #[must_use]
    pub fn new(db: &SpecDb, consts: &ConstDb, seed: u64) -> Generator {
        Generator::from_lowered(Arc::new(LoweredDb::build(db, consts)), seed)
    }

    /// Create a generator over a shared lowered IR.
    #[must_use]
    pub fn from_lowered(lowered: Arc<LoweredDb>, seed: u64) -> Generator {
        let enabled = (0..lowered.syscall_count() as u32).collect();
        Generator {
            lowered,
            rng: StdRng::seed_from_u64(seed),
            enabled,
        }
    }

    /// Restrict generation to the given syscalls (per-driver runs).
    #[must_use]
    pub fn with_enabled(mut self, enabled: Vec<String>) -> Generator {
        self.enabled = enabled
            .iter()
            .filter_map(|n| self.lowered.syscall_index(n))
            .map(|i| i as u32)
            .collect();
        self
    }

    /// Number of enabled syscalls.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled.len()
    }

    /// The shared lowered IR this generator draws from.
    #[must_use]
    pub fn lowered(&self) -> &Arc<LoweredDb> {
        &self.lowered
    }

    /// The raw RNG state words, for checkpointing mid-campaign.
    #[must_use]
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Continue the draw stream from state captured with
    /// [`Generator::rng_state`]: restore, not reseeding — subsequent
    /// programs are bit-identical to continuing the original
    /// generator.
    pub fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Generate a fresh program of at most `max_len` calls.
    pub fn gen_program(&mut self, max_len: usize) -> Program {
        let Generator {
            lowered,
            rng,
            enabled,
        } = self;
        let mut prog = Program::default();
        let want = rng.random_range(1..=max_len.max(1));
        for _ in 0..want {
            if enabled.is_empty() {
                break;
            }
            let pick = enabled[rng.random_range(0..enabled.len())];
            append_call(lowered, rng, &mut prog, pick, 0);
            if prog.len() >= max_len {
                break;
            }
        }
        prog
    }

    /// Mutate a program: regenerate an argument, append a call, or
    /// truncate. Returns a fresh program (input untouched), cloning
    /// only what the result keeps: the truncate arm copies the kept
    /// prefix, and the regenerate arm never clones the value tree it
    /// replaces. Output and draws are bit-identical to the deep-clone
    /// [`crate::reference::AstGenerator::mutate`].
    pub fn mutate(&mut self, prog: &Program, max_len: usize) -> Program {
        if prog.is_empty() {
            return self.gen_program(max_len);
        }
        let Generator {
            lowered,
            rng,
            enabled,
        } = self;
        match rng.random_range(0..10u32) {
            // Regenerate one argument of one call.
            0..=5 => {
                let ci = rng.random_range(0..prog.calls.len());
                let n_args = prog.calls[ci].args.len();
                let mut fresh = if n_args > 0 {
                    let ai = rng.random_range(0..n_args);
                    let ty = lowered.syscall(prog.calls[ci].sys as usize).params[ai].ty;
                    // Generation only reads calls before `ci`, which the
                    // output shares with the input — so drawing against
                    // the input is identical to drawing against a clone.
                    Some((ai, gen_value(lowered, rng, ty, prog, ci, 0)))
                } else {
                    None
                };
                let calls = prog
                    .calls
                    .iter()
                    .enumerate()
                    .map(|(i, c)| match &mut fresh {
                        Some((ai, v)) if i == ci => ProgCall {
                            sys: c.sys,
                            args: c
                                .args
                                .iter()
                                .enumerate()
                                .map(|(j, a)| {
                                    if j == *ai {
                                        std::mem::take(v)
                                    } else {
                                        a.clone()
                                    }
                                })
                                .collect(),
                        },
                        _ => c.clone(),
                    })
                    .collect();
                Program { calls }
            }
            // Append a random enabled call.
            6..=8 => {
                let mut p = prog.clone();
                if !enabled.is_empty() && p.len() < max_len {
                    let pick = enabled[rng.random_range(0..enabled.len())];
                    append_call(lowered, rng, &mut p, pick, 0);
                }
                p
            }
            // Truncate: clone only the kept prefix.
            _ => {
                let keep = rng.random_range(1..=prog.calls.len());
                Program {
                    calls: prog.calls[..keep].to_vec(),
                }
            }
        }
    }
}

/// Index of the most recent call in `prog.calls[..upto]` whose return
/// value produces `res` — a dense-id compare per call, where the AST
/// walk compared name strings.
fn find_producer(
    lowered: &LoweredDb,
    prog: &Program,
    upto: usize,
    res: kgpt_syzlang::lowered::ResourceId,
) -> Option<usize> {
    prog.calls[..upto.min(prog.len())]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, c)| lowered.syscall(c.sys as usize).ret_resource == Some(res))
        .map(|(i, _)| i)
}

/// Append a call (prepending producers for its resources).
fn append_call(
    lowered: &LoweredDb,
    rng: &mut StdRng,
    prog: &mut Program,
    sys_idx: u32,
    depth: usize,
) -> Option<usize> {
    if depth > 6 || prog.len() > 24 {
        return None;
    }
    let sys = lowered.syscall(sys_idx as usize);
    // Satisfy consumed resources.
    for p in &sys.params {
        if let LType::Resource { res } = lowered.ltype(p.ty) {
            if find_producer(lowered, prog, prog.len(), res).is_none() {
                if let Some(pick) = lowered
                    .lresource(res)
                    .producer_list()
                    .and_then(|list| list.choose(rng))
                    .copied()
                {
                    append_call(lowered, rng, prog, pick, depth + 1);
                }
            }
        }
    }
    let args = sys
        .params
        .iter()
        .map(|p| gen_value(lowered, rng, p.ty, prog, prog.len(), 0))
        .collect();
    prog.calls.push(ProgCall { sys: sys_idx, args });
    Some(prog.len() - 1)
}

/// Generate a value for a lowered type, resolving resource references
/// against the first `upto` calls of `prog`.
fn gen_value(
    lowered: &LoweredDb,
    rng: &mut StdRng,
    ty: kgpt_syzlang::lowered::TypeId,
    prog: &Program,
    upto: usize,
    depth: usize,
) -> Value {
    if depth > 12 {
        return Value::Int(0);
    }
    match lowered.ltype(ty) {
        LType::Int { bits, range } => {
            let v = match range {
                // Mostly respect declared ranges; occasionally probe
                // outside them (the kernel should EINVAL).
                Some((lo, hi)) if rng.random_bool(0.85) => {
                    if hi > lo {
                        lo + rng.random_range(0..=(hi - lo))
                    } else {
                        lo
                    }
                }
                _ => gen_int(rng),
            };
            Value::Int(bits.truncate(v))
        }
        LType::Const { .. } => Value::Int(0), // encoder substitutes
        LType::Flags { values, bits } => {
            let members = lowered.flag_values(values);
            let mut acc = 0u64;
            for v in members {
                if rng.random_bool(0.4) {
                    acc |= v;
                }
            }
            if members.is_empty() || rng.random_bool(0.05) {
                acc = gen_int(rng);
            }
            Value::Int(bits.truncate(acc))
        }
        LType::StringLit { strs } => {
            let s = lowered
                .strings(strs)
                .choose(rng)
                .cloned()
                .unwrap_or_default();
            Value::Bytes(s)
        }
        LType::Ptr { elem, .. } => {
            if rng.random_bool(0.03) {
                Value::Ptr { pointee: None }
            } else {
                Value::ptr_to(gen_value(lowered, rng, elem, prog, upto, depth + 1))
            }
        }
        LType::Array {
            elem,
            len,
            byte_elem,
        } => {
            let n = match len {
                ArrayLen::Fixed(n) => n,
                ArrayLen::Range(lo, hi) => {
                    if hi > lo {
                        lo + rng.random_range(0..=(hi - lo).min(16))
                    } else {
                        lo
                    }
                }
                // Long-tailed sizes: mostly small, sometimes page-
                // scale (large payloads are how the sendmsg-path
                // bugs are reached).
                ArrayLen::Unsized => match rng.random_range(0..10u32) {
                    0..=6 => rng.random_range(0..8),
                    7 | 8 => rng.random_range(8..256),
                    _ => rng.random_range(256..4096),
                },
            };
            // Byte arrays as raw buffers (cheaper, and what the
            // kernel decodes anyway).
            if byte_elem {
                let mut bytes = vec![0u8; n as usize];
                for b in &mut bytes {
                    *b = rng.random_range(0..=255u32) as u8;
                }
                return Value::Bytes(bytes);
            }
            let mut vs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                vs.push(gen_value(lowered, rng, elem, prog, upto, depth + 1));
            }
            Value::Group(vs)
        }
        LType::Len { .. } | LType::Bytesize { .. } => Value::Int(0), // auto-filled
        LType::Resource { res } => Value::Res(ResRef {
            producer: find_producer(lowered, prog, upto, res),
            // Dangling references land on small fds/ids sometimes.
            fallback: if rng.random_bool(0.5) {
                rng.random_range(0..6)
            } else {
                u64::MAX
            },
        }),
        LType::Struct { id } => {
            let def = lowered.lstruct(id);
            if def.is_union {
                let arm = rng.random_range(0..def.fields.len().max(1));
                let v = def
                    .fields
                    .get(arm)
                    .map(|f| gen_value(lowered, rng, f.ty, prog, upto, depth + 1))
                    .unwrap_or(Value::Int(0));
                Value::Union {
                    arm,
                    value: Box::new(v),
                }
            } else {
                let vs = def
                    .fields
                    .iter()
                    .map(|f| gen_value(lowered, rng, f.ty, prog, upto, depth + 1))
                    .collect();
                Value::Group(vs)
            }
        }
        LType::UnknownNamed { .. } => Value::Int(0),
        LType::Proc { start, per, .. } => Value::Int(start + per),
        LType::Void => Value::Group(Vec::new()),
    }
}

fn gen_int(rng: &mut StdRng) -> u64 {
    if rng.random_bool(0.7) {
        *INTERESTING.choose(rng).expect("non-empty")
    } else {
        rng.random()
    }
}

/// Direction of the pointer a value sits behind (needed by tests).
#[must_use]
pub fn top_dir(ty: &kgpt_syzlang::Type) -> kgpt_syzlang::Dir {
    match ty {
        kgpt_syzlang::Type::Ptr { dir, .. } => *dir,
        _ => kgpt_syzlang::Dir::In,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::AstGenerator;
    use kgpt_csrc::KernelCorpus;

    fn dm_db() -> (SpecDb, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
        (db, kc.consts().clone())
    }

    #[test]
    fn generates_programs_with_producers() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 7);
        let mut saw_dependent = false;
        for _ in 0..50 {
            let p = g.gen_program(5);
            assert!(!p.is_empty());
            // Any ioctl must be preceded by its openat producer.
            for (i, c) in p.calls.iter().enumerate() {
                if c.syscall(&db).base == "ioctl" {
                    for r in c.args.iter().flat_map(Value::res_refs) {
                        if let Some(pi) = r.producer {
                            assert!(pi < i, "producer after consumer");
                            assert_eq!(p.calls[pi].syscall(&db).base, "openat");
                            saw_dependent = true;
                        }
                    }
                }
            }
        }
        assert!(saw_dependent, "no dependent calls generated in 50 programs");
    }

    #[test]
    fn generation_is_deterministic() {
        let (db, consts) = dm_db();
        let a: Vec<Program> = {
            let mut g = Generator::new(&db, &consts, 42);
            (0..10).map(|_| g.gen_program(4)).collect()
        };
        let b: Vec<Program> = {
            let mut g = Generator::new(&db, &consts, 42);
            (0..10).map(|_| g.gen_program(4)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_bit_identical_to_ast_walk() {
        let (db, consts) = dm_db();
        let mut lowered = Generator::new(&db, &consts, 42);
        let mut ast = AstGenerator::new(&db, &consts, 42);
        for i in 0..40 {
            assert_eq!(lowered.gen_program(6), ast.gen_program(6), "program {i}");
        }
    }

    #[test]
    fn mutation_is_bit_identical_to_ast_walk() {
        let (db, consts) = dm_db();
        let mut lowered = Generator::new(&db, &consts, 5);
        let mut ast = AstGenerator::new(&db, &consts, 5);
        let mut lp = lowered.gen_program(5);
        let mut ap = ast.gen_program(5);
        assert_eq!(lp, ap);
        for i in 0..200 {
            lp = lowered.mutate(&lp, 8);
            ap = ast.mutate(&ap, 8);
            assert_eq!(lp, ap, "mutation {i}");
        }
    }

    #[test]
    fn enabled_filter_restricts() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 1)
            .with_enabled(vec!["openat$dm".into(), "bogus$x".into()]);
        assert_eq!(g.enabled_count(), 1);
        for _ in 0..10 {
            let p = g.gen_program(3);
            for c in &p.calls {
                assert_eq!(c.syscall(&db).name(), "openat$dm");
            }
        }
    }

    #[test]
    fn mutation_keeps_program_well_formed() {
        let (db, consts) = dm_db();
        let mut g = Generator::new(&db, &consts, 3);
        let mut p = g.gen_program(4);
        for _ in 0..100 {
            p = g.mutate(&p, 8);
            assert!(p.len() <= 25);
            for c in &p.calls {
                assert_eq!(c.args.len(), c.syscall(&db).params.len());
            }
        }
    }
}
