//! Crash-safe campaign checkpointing.
//!
//! A [`CampaignSnapshot`] is the complete serializable identity of a
//! paused [`crate::ShardedCampaign`] at an epoch boundary: config and
//! spec fingerprints, every shard's RNG streams / corpus / crash
//! tally / triage seen-set in shard-id order, the cross-shard
//! [`crate::hub::SeedHub`] contents, and the campaign
//! [`TriageReport`]. Restoring it and continuing is **bit-identical**
//! to never having stopped (pinned by `tests/durability.rs`).
//!
//! The encoding is a dense little-endian binary format written by
//! hand — the vendored `serde` derives are no-ops, and `kgpt_bench`
//! depends on this crate, so neither an external codec nor the bench
//! JSON writer is available here. The on-disk layout is:
//!
//! ```text
//! magic "KGPTCKPT" | version u32 | checksum u64 (FNV-1a of payload) | payload
//! ```
//!
//! Writes are atomic and keep one generation of history: the payload
//! goes to `<path>.tmp`, the current snapshot (if any) rotates to
//! `<path>.prev`, and the temp file renames over `<path>`.
//! [`CampaignSnapshot::load`] verifies magic, version and checksum,
//! and falls back to the previous-good rotation when the current file
//! is truncated or corrupt — a torn write costs one epoch of
//! progress, never the campaign.

use crate::campaign::{CampaignConfig, CrashTally, ShardSnapshot};
use crate::corpus::{CorpusEntry, CorpusStats};
use crate::hub::{HubSeed, SeedHub};
use crate::program::Program;
use kgpt_triage::{TriageEntry, TriageReport};
use kgpt_vkernel::{CoverageMap, CoverageWordDiff, CrashSignature, SanitizerKind, Sysno};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// File magic: identifies a campaign checkpoint.
const MAGIC: &[u8; 8] = b"KGPTCKPT";

/// Current snapshot format version. Bumped on any layout change; a
/// reader never guesses at an unknown version. Version 2 appended the
/// flight recorder's per-shard trace stores; version-1 snapshots are
/// still read (their trace section is simply empty — resume starts
/// with fresh rings, losing no campaign state).
const VERSION: u32 = 2;

/// Error reading, writing, or validating a campaign snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// What went wrong (always names the failing stage).
    pub message: String,
}

impl CheckpointError {
    pub(crate) fn new(message: impl Into<String>) -> CheckpointError {
        CheckpointError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CheckpointError {}

impl From<kgpt_syzlang::prog::DecodeError> for CheckpointError {
    fn from(e: kgpt_syzlang::prog::DecodeError) -> CheckpointError {
        CheckpointError::new(format!("program decode failed: {e}"))
    }
}

/// FNV-1a over a byte slice — the payload checksum. Deterministic,
/// dependency-free, and strong enough to catch truncation and bitrot
/// (the threat model; this is not a cryptographic seal).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a campaign's deterministic identity: every
/// [`CampaignConfig`] field plus the shard count. Two campaigns with
/// equal fingerprints produce bit-identical results, so resume
/// refuses a snapshot whose fingerprint differs.
#[must_use]
pub fn config_fingerprint(config: &CampaignConfig, shards: u32) -> u64 {
    let mut bytes = Vec::new();
    put_u64(&mut bytes, config.execs);
    put_u64(&mut bytes, config.seed);
    put_u64(&mut bytes, config.max_prog_len as u64);
    match &config.enabled {
        None => bytes.push(0),
        Some(names) => {
            bytes.push(1);
            put_u32(&mut bytes, u32::try_from(names.len()).unwrap_or(u32::MAX));
            for n in names {
                put_str(&mut bytes, n);
            }
        }
    }
    put_u64(&mut bytes, config.hub_epoch);
    put_u64(&mut bytes, config.hub_top_k as u64);
    put_u64(&mut bytes, config.exec_fuel);
    put_u64(&mut bytes, config.trace_ring as u64);
    put_u32(&mut bytes, shards);
    fnv1a(&bytes)
}

/// The complete persisted state of a paused campaign. See the module
/// docs for the durability contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSnapshot {
    /// [`config_fingerprint`] of the writing campaign.
    pub(crate) config_fingerprint: u64,
    /// Spec-suite fingerprint ([`kgpt_syzlang::SpecCache::fingerprint`]).
    pub(crate) spec_fingerprint: u64,
    /// Driver epochs completed when the snapshot was taken.
    pub(crate) epochs_done: u64,
    /// Per-shard state, in shard-id order.
    pub(crate) shards: Vec<ShardSnapshot>,
    /// Hub publication budget.
    pub(crate) hub_top_k: usize,
    /// Hub publish-attempt counter.
    pub(crate) hub_published: u64,
    /// Hub claimed-coverage union.
    pub(crate) hub_coverage: CoverageMap,
    /// Retained hub seeds, in publication order.
    pub(crate) hub_seeds: Vec<HubSeed>,
    /// The campaign triage report so far.
    pub(crate) triage: TriageReport,
    /// The flight recorder's serialized per-shard trace stores
    /// (`(shard id, kgpt_trace::TraceStore::to_bytes)`), in shard-id
    /// order; empty when the campaign runs untraced or the snapshot
    /// predates version 2. Kept opaque here — the store bytes carry
    /// their own framing and are validated by the resume path.
    pub(crate) traces: Vec<(u32, Vec<u8>)>,
}

impl CampaignSnapshot {
    /// Driver epochs completed when this snapshot was taken.
    #[must_use]
    pub fn epochs_done(&self) -> u64 {
        self.epochs_done
    }

    /// Capture a paused campaign (shard states given in id order).
    pub(crate) fn capture(
        config_fp: u64,
        spec_fp: u64,
        epochs_done: u64,
        shards: Vec<ShardSnapshot>,
        hub: &SeedHub,
        triage: &TriageReport,
        traces: Vec<(u32, Vec<u8>)>,
    ) -> CampaignSnapshot {
        CampaignSnapshot {
            config_fingerprint: config_fp,
            spec_fingerprint: spec_fp,
            epochs_done,
            shards,
            hub_top_k: hub.top_k(),
            hub_published: hub.published(),
            hub_coverage: hub.coverage().clone(),
            hub_seeds: hub.seeds().to_vec(),
            triage: triage.clone(),
            traces,
        }
    }

    /// Serialize to the versioned, checksummed on-disk format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.config_fingerprint);
        put_u64(&mut payload, self.spec_fingerprint);
        put_u64(&mut payload, self.epochs_done);
        put_u32(
            &mut payload,
            u32::try_from(self.shards.len()).unwrap_or(u32::MAX),
        );
        for s in &self.shards {
            encode_shard(s, &mut payload);
        }
        put_u64(&mut payload, self.hub_top_k as u64);
        put_u64(&mut payload, self.hub_published);
        put_coverage(&mut payload, &self.hub_coverage);
        put_u32(
            &mut payload,
            u32::try_from(self.hub_seeds.len()).unwrap_or(u32::MAX),
        );
        for seed in &self.hub_seeds {
            put_u32(&mut payload, seed.shard);
            seed.program.encode_into(&mut payload);
            put_coverage(&mut payload, &seed.contributed);
        }
        let entries: Vec<&TriageEntry> = self.triage.entries().collect();
        put_u32(
            &mut payload,
            u32::try_from(entries.len()).unwrap_or(u32::MAX),
        );
        for e in entries {
            encode_triage_entry(e, &mut payload);
        }
        put_u32(
            &mut payload,
            u32::try_from(self.traces.len()).unwrap_or(u32::MAX),
        );
        for (id, store) in &self.traces {
            put_u32(&mut payload, *id);
            put_u32(&mut payload, u32::try_from(store.len()).unwrap_or(u32::MAX));
            payload.extend_from_slice(store);
        }

        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Parse a snapshot from bytes previously produced by
    /// [`CampaignSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on wrong magic, unknown version,
    /// checksum mismatch (truncation/bitrot), or any malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<CampaignSnapshot, CheckpointError> {
        if bytes.len() < MAGIC.len() + 12 {
            return Err(CheckpointError::new(format!(
                "snapshot too short ({} bytes)",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(CheckpointError::new("bad snapshot magic"));
        }
        let mut pos = 8usize;
        let version = take_u32(bytes, &mut pos)?;
        if version != VERSION && version != 1 {
            return Err(CheckpointError::new(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        let checksum = take_u64(bytes, &mut pos)?;
        let payload = &bytes[pos..];
        if fnv1a(payload) != checksum {
            return Err(CheckpointError::new("snapshot checksum mismatch"));
        }

        let bytes = payload;
        let mut pos = 0usize;
        let config_fingerprint = take_u64(bytes, &mut pos)?;
        let spec_fingerprint = take_u64(bytes, &mut pos)?;
        let epochs_done = take_u64(bytes, &mut pos)?;
        let n_shards = take_u32(bytes, &mut pos)? as usize;
        let mut shards = Vec::new();
        for _ in 0..n_shards {
            shards.push(decode_shard(bytes, &mut pos)?);
        }
        let hub_top_k = usize::try_from(take_u64(bytes, &mut pos)?)
            .map_err(|_| CheckpointError::new("hub top_k out of range"))?;
        let hub_published = take_u64(bytes, &mut pos)?;
        let hub_coverage = take_coverage(bytes, &mut pos)?;
        let n_seeds = take_u32(bytes, &mut pos)? as usize;
        let mut hub_seeds = Vec::new();
        for _ in 0..n_seeds {
            let shard = take_u32(bytes, &mut pos)?;
            let program = Program::decode_from(bytes, &mut pos)?;
            let contributed = take_coverage(bytes, &mut pos)?;
            hub_seeds.push(HubSeed {
                shard,
                program,
                contributed,
            });
        }
        let n_triage = take_u32(bytes, &mut pos)? as usize;
        let mut triage = TriageReport::new();
        for _ in 0..n_triage {
            let entry = decode_triage_entry(bytes, &mut pos)?;
            if !triage.admit(entry) {
                return Err(CheckpointError::new("duplicate triage signature"));
            }
        }
        // The trace section arrived with version 2; version-1
        // snapshots simply have none.
        let mut traces = Vec::new();
        if version >= 2 {
            let n_traces = take_u32(bytes, &mut pos)? as usize;
            for _ in 0..n_traces {
                let id = take_u32(bytes, &mut pos)?;
                let len = take_u32(bytes, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|&e| e <= bytes.len())
                    .ok_or_else(|| {
                        CheckpointError::new(format!("truncated trace store at {pos}"))
                    })?;
                traces.push((id, bytes[pos..end].to_vec()));
                pos = end;
            }
        }
        if pos != bytes.len() {
            return Err(CheckpointError::new(format!(
                "{} trailing bytes after snapshot payload",
                bytes.len() - pos
            )));
        }
        Ok(CampaignSnapshot {
            config_fingerprint,
            spec_fingerprint,
            epochs_done,
            shards,
            hub_top_k,
            hub_published,
            hub_coverage,
            hub_seeds,
            triage,
            traces,
        })
    }

    /// Write atomically to `path`: serialize to `<path>.tmp`, rotate
    /// any current snapshot to `<path>.prev` (the previous-good
    /// fallback), then rename the temp file into place. A crash at any
    /// point leaves either the old snapshot or the new one intact —
    /// never a torn file under `path` alone.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the filesystem rejects the
    /// temp-file write or a rename.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = sibling(path, "tmp");
        std::fs::write(&tmp, self.to_bytes())
            .map_err(|e| CheckpointError::new(format!("write {} failed: {e}", tmp.display())))?;
        if path.exists() {
            std::fs::rename(path, sibling(path, "prev")).map_err(|e| {
                CheckpointError::new(format!("rotate {} failed: {e}", path.display()))
            })?;
        }
        std::fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::new(format!("install {} failed: {e}", path.display())))
    }

    /// Load the snapshot at `path`, falling back to the previous-good
    /// rotation (`<path>.prev`) when the current file is missing,
    /// truncated, or corrupt. Falling back costs the epochs between
    /// the two snapshots — they are simply re-executed on resume — and
    /// never determinism.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] describing both failures when
    /// neither generation parses.
    pub fn load(path: &Path) -> Result<CampaignSnapshot, CheckpointError> {
        let current = read_and_parse(path);
        match current {
            Ok(snap) => Ok(snap),
            Err(e) => match read_and_parse(&sibling(path, "prev")) {
                Ok(snap) => Ok(snap),
                Err(e2) => Err(CheckpointError::new(format!(
                    "no intact snapshot: current: {e}; previous: {e2}"
                ))),
            },
        }
    }

    /// Validate that this snapshot belongs to a campaign with the
    /// given fingerprints.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] naming the mismatched fingerprint.
    pub fn validate(&self, config_fp: u64, spec_fp: u64) -> Result<(), CheckpointError> {
        if self.config_fingerprint != config_fp {
            return Err(CheckpointError::new(format!(
                "config fingerprint mismatch: snapshot {:#x}, campaign {:#x}",
                self.config_fingerprint, config_fp
            )));
        }
        if self.spec_fingerprint != spec_fp {
            return Err(CheckpointError::new(format!(
                "spec fingerprint mismatch: snapshot {:#x}, campaign {:#x}",
                self.spec_fingerprint, spec_fp
            )));
        }
        Ok(())
    }
}

fn read_and_parse(path: &Path) -> Result<CampaignSnapshot, CheckpointError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CheckpointError::new(format!("read {} failed: {e}", path.display())))?;
    CampaignSnapshot::from_bytes(&bytes)
}

/// `<path>.<ext>` with the extension appended (not substituted), so
/// `campaign.ckpt` rotates to `campaign.ckpt.prev`.
fn sibling(path: &Path, ext: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".");
    s.push(ext);
    PathBuf::from(s)
}

// ---- primitive writers/readers ------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

pub(crate) fn put_coverage(out: &mut Vec<u8>, cov: &CoverageMap) {
    let words = cov.words();
    put_u32(out, u32::try_from(words.len()).unwrap_or(u32::MAX));
    for &w in words {
        put_u64(out, w);
    }
}

pub(crate) fn take_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, CheckpointError> {
    let Some(&b) = bytes.get(*pos) else {
        return Err(CheckpointError::new(format!("truncated byte at {pos}")));
    };
    *pos += 1;
    Ok(b)
}

pub(crate) fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, CheckpointError> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(CheckpointError::new(format!("truncated u32 at {pos}")));
    };
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

pub(crate) fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CheckpointError> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(CheckpointError::new(format!("truncated u64 at {pos}")));
    };
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

pub(crate) fn take_str(bytes: &[u8], pos: &mut usize) -> Result<String, CheckpointError> {
    let len = take_u32(bytes, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(CheckpointError::new(format!("truncated string at {pos}")));
    };
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| CheckpointError::new(format!("invalid utf-8 string at {pos}")))?
        .to_owned();
    *pos = end;
    Ok(s)
}

pub(crate) fn take_opt_str(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Option<String>, CheckpointError> {
    match take_u8(bytes, pos)? {
        0 => Ok(None),
        1 => Ok(Some(take_str(bytes, pos)?)),
        t => Err(CheckpointError::new(format!("bad option tag {t} at {pos}"))),
    }
}

pub(crate) fn take_coverage(bytes: &[u8], pos: &mut usize) -> Result<CoverageMap, CheckpointError> {
    let n = take_u32(bytes, pos)? as usize;
    let mut words = Vec::new();
    for _ in 0..n {
        words.push(take_u64(bytes, pos)?);
    }
    Ok(CoverageMap::from_words(words))
}

/// Tag bytes of the two [`CoverageWordDiff`] shapes on the wire.
const DIFF_SPARSE: u8 = 0;
const DIFF_DENSE: u8 = 1;

pub(crate) fn put_word_diff(out: &mut Vec<u8>, diff: &CoverageWordDiff) {
    match diff {
        CoverageWordDiff::Sparse(runs) => {
            out.push(DIFF_SPARSE);
            put_u32(out, u32::try_from(runs.len()).unwrap_or(u32::MAX));
            for (start, words) in runs {
                put_u32(out, *start);
                put_u32(out, u32::try_from(words.len()).unwrap_or(u32::MAX));
                for &w in words {
                    put_u64(out, w);
                }
            }
        }
        CoverageWordDiff::Dense(words) => {
            out.push(DIFF_DENSE);
            put_u32(out, u32::try_from(words.len()).unwrap_or(u32::MAX));
            for &w in words {
                put_u64(out, w);
            }
        }
    }
}

pub(crate) fn take_word_diff(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<CoverageWordDiff, CheckpointError> {
    match take_u8(bytes, pos)? {
        DIFF_SPARSE => {
            let n_runs = take_u32(bytes, pos)? as usize;
            let mut runs = Vec::new();
            let mut next_free = 0u64;
            for _ in 0..n_runs {
                let start = take_u32(bytes, pos)?;
                if u64::from(start) < next_free {
                    return Err(CheckpointError::new(format!(
                        "word-diff runs out of order at {pos}"
                    )));
                }
                let len = take_u32(bytes, pos)? as usize;
                if len == 0 {
                    return Err(CheckpointError::new(format!(
                        "empty word-diff run at {pos}"
                    )));
                }
                let mut words = Vec::new();
                for _ in 0..len {
                    words.push(take_u64(bytes, pos)?);
                }
                next_free = u64::from(start) + words.len() as u64;
                runs.push((start, words));
            }
            Ok(CoverageWordDiff::Sparse(runs))
        }
        DIFF_DENSE => {
            let n = take_u32(bytes, pos)? as usize;
            let mut words = Vec::new();
            for _ in 0..n {
                words.push(take_u64(bytes, pos)?);
            }
            Ok(CoverageWordDiff::Dense(words))
        }
        t => Err(CheckpointError::new(format!(
            "bad word-diff tag {t} at {pos}"
        ))),
    }
}

pub(crate) fn put_signature(out: &mut Vec<u8>, sig: &CrashSignature) {
    out.push(sig.sysno.as_index());
    out.push(sig.chain_depth);
    out.push(sig.sanitizer.as_index());
    put_u64(out, sig.site);
}

pub(crate) fn take_signature(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<CrashSignature, CheckpointError> {
    let sysno = Sysno::from_index(take_u8(bytes, pos)?)
        .ok_or_else(|| CheckpointError::new(format!("bad sysno index at {pos}")))?;
    let chain_depth = take_u8(bytes, pos)?;
    let sanitizer = SanitizerKind::from_index(take_u8(bytes, pos)?)
        .ok_or_else(|| CheckpointError::new(format!("bad sanitizer index at {pos}")))?;
    let site = take_u64(bytes, pos)?;
    Ok(CrashSignature {
        sysno,
        chain_depth,
        sanitizer,
        site,
    })
}

// ---- aggregate encoders/decoders ----------------------------------------

pub(crate) fn encode_corpus_entry(e: &CorpusEntry, out: &mut Vec<u8>) {
    e.program.encode_into(out);
    put_coverage(out, &e.contributed);
    put_u64(out, e.execs);
    put_u64(out, e.hits);
}

pub(crate) fn decode_corpus_entry(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<CorpusEntry, CheckpointError> {
    let program = Program::decode_from(bytes, pos)?;
    let contributed = take_coverage(bytes, pos)?;
    let execs = take_u64(bytes, pos)?;
    let hits = take_u64(bytes, pos)?;
    Ok(CorpusEntry {
        program,
        contributed,
        execs,
        hits,
    })
}

pub(crate) fn encode_shard(s: &ShardSnapshot, out: &mut Vec<u8>) {
    put_u32(out, s.id);
    put_u64(out, s.epoch);
    put_u64(out, s.rng_pick);
    put_u64(out, s.remaining);
    put_u64(out, s.fuel_exhausted);
    for w in s.gen_rng {
        put_u64(out, w);
    }
    put_u64(out, s.corpus_rng);
    put_coverage(out, &s.corpus_coverage);
    put_u64(out, s.corpus_stats.admitted);
    put_u64(out, s.corpus_stats.imported);
    put_u64(out, s.corpus_stats.evicted);
    put_u32(
        out,
        u32::try_from(s.corpus_entries.len()).unwrap_or(u32::MAX),
    );
    for e in &s.corpus_entries {
        encode_corpus_entry(e, out);
    }
    put_u32(out, u32::try_from(s.crashes.len()).unwrap_or(u32::MAX));
    for (title, (count, cve)) in &s.crashes {
        put_str(out, title);
        put_u64(out, *count);
        put_opt_str(out, cve.as_deref());
    }
    put_u32(out, u32::try_from(s.triage_seen.len()).unwrap_or(u32::MAX));
    for sig in &s.triage_seen {
        put_signature(out, sig);
    }
}

pub(crate) fn decode_shard(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<ShardSnapshot, CheckpointError> {
    let id = take_u32(bytes, pos)?;
    let epoch = take_u64(bytes, pos)?;
    let rng_pick = take_u64(bytes, pos)?;
    let remaining = take_u64(bytes, pos)?;
    let fuel_exhausted = take_u64(bytes, pos)?;
    let mut gen_rng = [0u64; 4];
    for w in &mut gen_rng {
        *w = take_u64(bytes, pos)?;
    }
    let corpus_rng = take_u64(bytes, pos)?;
    let corpus_coverage = take_coverage(bytes, pos)?;
    let corpus_stats = CorpusStats {
        admitted: take_u64(bytes, pos)?,
        imported: take_u64(bytes, pos)?,
        evicted: take_u64(bytes, pos)?,
    };
    let n_entries = take_u32(bytes, pos)? as usize;
    let mut corpus_entries = Vec::new();
    for _ in 0..n_entries {
        corpus_entries.push(decode_corpus_entry(bytes, pos)?);
    }
    let n_crashes = take_u32(bytes, pos)? as usize;
    let mut crashes = CrashTally::new();
    for _ in 0..n_crashes {
        let title = take_str(bytes, pos)?;
        let count = take_u64(bytes, pos)?;
        let cve = take_opt_str(bytes, pos)?;
        crashes.insert(title, (count, cve));
    }
    let n_seen = take_u32(bytes, pos)? as usize;
    let mut triage_seen = BTreeSet::new();
    for _ in 0..n_seen {
        triage_seen.insert(take_signature(bytes, pos)?);
    }
    Ok(ShardSnapshot {
        id,
        gen_rng,
        corpus_rng,
        corpus_coverage,
        corpus_entries,
        corpus_stats,
        crashes,
        triage_seen,
        epoch,
        rng_pick,
        remaining,
        fuel_exhausted,
    })
}

pub(crate) fn encode_triage_entry(e: &TriageEntry, out: &mut Vec<u8>) {
    put_signature(out, &e.signature);
    put_str(out, &e.title);
    put_opt_str(out, e.cve.as_deref());
    put_u64(out, e.first_epoch);
    put_u32(out, e.first_shard);
    put_u64(out, e.count);
    e.raw.encode_into(out);
    e.minimized.encode_into(out);
    put_u64(out, e.minimize_execs);
    out.push(u8::from(e.reproducible));
}

pub(crate) fn decode_triage_entry(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<TriageEntry, CheckpointError> {
    let signature = take_signature(bytes, pos)?;
    let title = take_str(bytes, pos)?;
    let cve = take_opt_str(bytes, pos)?;
    let first_epoch = take_u64(bytes, pos)?;
    let first_shard = take_u32(bytes, pos)?;
    let count = take_u64(bytes, pos)?;
    let raw = Program::decode_from(bytes, pos)?;
    let minimized = Program::decode_from(bytes, pos)?;
    let minimize_execs = take_u64(bytes, pos)?;
    let reproducible = match take_u8(bytes, pos)? {
        0 => false,
        1 => true,
        t => {
            return Err(CheckpointError::new(format!(
                "bad reproducible flag {t} at {pos}"
            )))
        }
    };
    Ok(TriageEntry {
        signature,
        title,
        cve,
        first_epoch,
        first_shard,
        count,
        raw,
        minimized,
        minimize_execs,
        reproducible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgCall, Program};
    use kgpt_syzlang::Value;

    fn cov(blocks: &[u64]) -> CoverageMap {
        blocks.iter().copied().collect()
    }

    fn prog(sys: u32) -> Program {
        Program {
            calls: vec![ProgCall {
                sys,
                args: vec![Value::Int(7), Value::Bytes(vec![1, 2, 3])],
            }],
        }
    }

    fn sig(site: u64) -> CrashSignature {
        CrashSignature {
            sysno: Sysno::Ioctl,
            chain_depth: 2,
            sanitizer: SanitizerKind::UseAfterFree,
            site,
        }
    }

    fn sample() -> CampaignSnapshot {
        let mut crashes = CrashTally::new();
        crashes.insert("bug a".into(), (3, Some("CVE-2023-0001".into())));
        crashes.insert("bug b".into(), (1, None));
        let mut seen = BTreeSet::new();
        seen.insert(sig(5));
        seen.insert(sig(9));
        let mut triage = TriageReport::new();
        triage.admit(TriageEntry {
            signature: sig(5),
            title: "bug a".into(),
            cve: Some("CVE-2023-0001".into()),
            first_epoch: 2,
            first_shard: 1,
            count: 4,
            raw: prog(3),
            minimized: prog(3),
            minimize_execs: 11,
            reproducible: true,
        });
        CampaignSnapshot {
            config_fingerprint: 0xDEAD_BEEF,
            spec_fingerprint: 0xFEED_FACE,
            epochs_done: 7,
            shards: vec![ShardSnapshot {
                id: 0,
                gen_rng: [1, 2, 3, 4],
                corpus_rng: 99,
                corpus_coverage: cov(&[1, 2, 64, 500]),
                corpus_entries: vec![CorpusEntry {
                    program: prog(1),
                    contributed: cov(&[64]),
                    execs: 12,
                    hits: 2,
                }],
                corpus_stats: CorpusStats {
                    admitted: 5,
                    imported: 1,
                    evicted: 2,
                },
                crashes,
                triage_seen: seen,
                epoch: 7,
                rng_pick: 0x1234,
                remaining: 1000,
                fuel_exhausted: 3,
            }],
            hub_top_k: 4,
            hub_published: 17,
            hub_coverage: cov(&[1, 2]),
            hub_seeds: vec![HubSeed {
                shard: 0,
                program: prog(2),
                contributed: cov(&[2]),
            }],
            triage,
            // Opaque to the checkpoint layer: any bytes round-trip.
            traces: vec![(0, vec![0xAB, 0xCD, 0xEF])],
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kgpt-ckpt-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(CampaignSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CampaignSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_distinct_errors() {
        let good = sample().to_bytes();

        let mut bad = good.clone();
        bad[0] = b'X';
        let e = CampaignSnapshot::from_bytes(&bad).unwrap_err();
        assert!(e.message.contains("magic"), "{e}");

        let mut bad = good.clone();
        bad[8] = 0xFF; // version LE low byte
        let e = CampaignSnapshot::from_bytes(&bad).unwrap_err();
        assert!(e.message.contains("version"), "{e}");

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40; // flip a payload bit
        let e = CampaignSnapshot::from_bytes(&bad).unwrap_err();
        assert!(e.message.contains("checksum"), "{e}");

        assert!(CampaignSnapshot::from_bytes(&good).is_ok());
    }

    #[test]
    fn save_rotates_previous_good_and_load_falls_back() {
        let dir = scratch_dir("rotate");
        let path = dir.join("campaign.ckpt");

        let mut first = sample();
        first.epochs_done = 1;
        first.save(&path).unwrap();
        assert_eq!(CampaignSnapshot::load(&path).unwrap().epochs_done, 1);

        let mut second = sample();
        second.epochs_done = 2;
        second.save(&path).unwrap();
        assert_eq!(CampaignSnapshot::load(&path).unwrap().epochs_done, 2);
        // The rotation holds the previous generation.
        assert_eq!(
            CampaignSnapshot::from_bytes(&std::fs::read(sibling(&path, "prev")).unwrap())
                .unwrap()
                .epochs_done,
            1
        );

        // Corrupt the current file: load falls back to previous-good.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(CampaignSnapshot::load(&path).unwrap().epochs_done, 1);

        // Truncate the current file: same fallback.
        std::fs::write(&path, &second.to_bytes()[..40]).unwrap();
        assert_eq!(CampaignSnapshot::load(&path).unwrap().epochs_done, 1);

        // Both generations gone: a descriptive error, not a panic.
        std::fs::write(&path, b"junk").unwrap();
        std::fs::write(sibling(&path, "prev"), b"junk").unwrap();
        let e = CampaignSnapshot::load(&path).unwrap_err();
        assert!(e.message.contains("current"), "{e}");
        assert!(e.message.contains("previous"), "{e}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_names_the_mismatched_fingerprint() {
        let snap = sample();
        snap.validate(0xDEAD_BEEF, 0xFEED_FACE).unwrap();
        let e = snap.validate(1, 0xFEED_FACE).unwrap_err();
        assert!(e.message.contains("config fingerprint"), "{e}");
        let e = snap.validate(0xDEAD_BEEF, 1).unwrap_err();
        assert!(e.message.contains("spec fingerprint"), "{e}");
    }

    #[test]
    fn config_fingerprint_covers_every_identity_field() {
        let base = CampaignConfig::default();
        let fp = |c: &CampaignConfig, shards: u32| config_fingerprint(c, shards);
        let b = fp(&base, 8);
        assert_eq!(b, fp(&base.clone(), 8), "fingerprint is stable");
        assert_ne!(b, fp(&base, 4), "shard count is identity");
        for tweak in [
            CampaignConfig {
                execs: base.execs + 1,
                ..base.clone()
            },
            CampaignConfig {
                seed: base.seed + 1,
                ..base.clone()
            },
            CampaignConfig {
                max_prog_len: base.max_prog_len + 1,
                ..base.clone()
            },
            CampaignConfig {
                enabled: Some(vec!["ioctl$dm".into()]),
                ..base.clone()
            },
            CampaignConfig {
                hub_epoch: base.hub_epoch + 1,
                ..base.clone()
            },
            CampaignConfig {
                hub_top_k: base.hub_top_k + 1,
                ..base.clone()
            },
            CampaignConfig {
                exec_fuel: base.exec_fuel + 1,
                ..base.clone()
            },
            CampaignConfig {
                trace_ring: base.trace_ring + 1,
                ..base.clone()
            },
        ] {
            assert_ne!(b, fp(&tweak, 8), "{tweak:?}");
        }
    }

    #[test]
    fn version_one_snapshots_without_traces_still_load() {
        // A pre-flight-recorder snapshot is the same payload minus
        // the trailing trace section, under version 1. Reconstruct
        // one from the current encoder and check it reads back with
        // an empty trace list.
        let mut snap = sample();
        snap.traces.clear();
        let v2 = snap.to_bytes();
        // Strip the 4-byte empty trace section and re-frame as v1.
        let payload = &v2[20..v2.len() - 4];
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        put_u32(&mut v1, 1);
        put_u64(&mut v1, fnv1a(payload));
        v1.extend_from_slice(payload);
        let decoded = CampaignSnapshot::from_bytes(&v1).unwrap();
        assert_eq!(decoded, snap);
        assert!(decoded.traces.is_empty());
    }
}
