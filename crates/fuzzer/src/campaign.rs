//! The coverage-guided fuzzing loop and campaign statistics.

use crate::exec::execute;
use crate::gen::Generator;
use crate::program::Program;
use kgpt_syzlang::{ConstDb, SpecDb, SpecFile};
use kgpt_vkernel::VKernel;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Campaign parameters. Wall-clock budgets from the paper are scaled
/// to execution counts (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of program executions.
    pub execs: u64,
    /// RNG seed (repetitions use different seeds).
    pub seed: u64,
    /// Maximum calls per program.
    pub max_prog_len: usize,
    /// Restrict to these syscalls (`None` = all in the suite).
    pub enabled: Option<Vec<String>>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            execs: 10_000,
            seed: 0,
            max_prog_len: 8,
            enabled: None,
        }
    }
}

/// Outcome of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Union of covered blocks.
    pub coverage: BTreeSet<u64>,
    /// Crash title → (count, CVE).
    pub crashes: BTreeMap<String, (u64, Option<String>)>,
    /// Programs executed.
    pub execs: u64,
    /// Corpus size at the end.
    pub corpus_size: usize,
}

impl CampaignResult {
    /// Number of distinct crash titles.
    #[must_use]
    pub fn unique_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Blocks covered.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.coverage.len()
    }
}

/// A configured campaign over one spec suite and one kernel.
pub struct Campaign<'a> {
    kernel: &'a VKernel,
    db: SpecDb,
    consts: &'a ConstDb,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Build a campaign from spec files.
    #[must_use]
    pub fn new(
        kernel: &'a VKernel,
        suite: Vec<SpecFile>,
        consts: &'a ConstDb,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign {
            kernel,
            db: SpecDb::from_files(suite),
            consts,
            config,
        }
    }

    /// The compiled spec database.
    #[must_use]
    pub fn db(&self) -> &SpecDb {
        &self.db
    }

    /// Run the coverage-guided loop.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let mut generator = Generator::new(&self.db, self.consts, self.config.seed);
        if let Some(enabled) = &self.config.enabled {
            generator = generator.with_enabled(enabled.clone());
        }
        let mut coverage: BTreeSet<u64> = BTreeSet::new();
        let mut crashes: BTreeMap<String, (u64, Option<String>)> = BTreeMap::new();
        let mut corpus: Vec<Program> = Vec::new();
        let mut rng_pick = self.config.seed;
        for i in 0..self.config.execs {
            // 1-in-4 fresh generation; otherwise mutate a corpus entry.
            rng_pick = rng_pick
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let fresh = corpus.is_empty() || rng_pick % 4 == 0;
            let prog = if fresh {
                generator.gen_program(self.config.max_prog_len)
            } else {
                let idx = (rng_pick >> 33) as usize % corpus.len();
                generator.mutate(&corpus[idx], self.config.max_prog_len)
            };
            let result = execute(self.kernel, &self.db, self.consts, &prog);
            if let Some(c) = result.crash {
                let e = crashes.entry(c.title).or_insert((0, c.cve));
                e.0 += 1;
            }
            let new_blocks = result.coverage.difference(&coverage).count();
            if new_blocks > 0 {
                coverage.extend(result.coverage);
                corpus.push(prog);
                // Light corpus cap to bound memory on long campaigns.
                if corpus.len() > 2048 {
                    corpus.remove(0);
                }
            }
            let _ = i;
        }
        CampaignResult {
            coverage,
            crashes,
            execs: self.config.execs,
            corpus_size: corpus.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    #[test]
    fn campaign_accumulates_coverage_and_crashes() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 4000,
            seed: 1,
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, suite, &consts, cfg).run();
        assert!(r.blocks() > 50, "blocks={}", r.blocks());
        assert!(r.unique_crashes() >= 1, "crashes={:?}", r.crashes);
        assert!(r.corpus_size > 3);
    }

    #[test]
    fn better_specs_mean_more_coverage() {
        // Ground truth vs an imprecise buffer-typed spec of the same
        // driver: the typed suite must reach deeper.
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let bp = &kc.blueprints()[0];
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let cfg = CampaignConfig {
            execs: 2500,
            seed: 3,
            ..CampaignConfig::default()
        };
        let all_cmds: Vec<String> = bp.cmds.iter().map(|c| c.name.clone()).collect();
        let truth = Campaign::new(
            &kernel,
            vec![bp.ground_truth_spec()],
            kc.consts(),
            cfg.clone(),
        )
        .run();
        let imprecise = Campaign::new(
            &kernel,
            vec![bp.spec_for_cmds(&all_cmds, true, "dm_imprecise")],
            kc.consts(),
            cfg,
        )
        .run();
        assert!(
            truth.blocks() > imprecise.blocks(),
            "truth {} vs imprecise {}",
            truth.blocks(),
            imprecise.blocks()
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 500,
            seed: 9,
            ..CampaignConfig::default()
        };
        let a = Campaign::new(&kernel, suite.clone(), &consts, cfg.clone()).run();
        let b = Campaign::new(&kernel, suite, &consts, cfg).run();
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.crashes, b.crashes);
    }

    #[test]
    fn enabled_filter_limits_surface() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 800,
            seed: 2,
            enabled: Some(vec!["openat$dm".into()]),
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, suite, &consts, cfg).run();
        // Open blocks only.
        assert!(r.blocks() <= 8, "blocks={}", r.blocks());
    }
}
