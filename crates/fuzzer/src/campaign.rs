//! The coverage-guided fuzzing loop and campaign statistics.

use crate::exec::{execute_with, ExecScratch};
use crate::gen::Generator;
use crate::program::Program;
use kgpt_syzlang::{ConstDb, SpecCache, SpecDb, SpecFile};
use kgpt_vkernel::{CoverageMap, VKernel};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Campaign parameters. Wall-clock budgets from the paper are scaled
/// to execution counts (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of program executions.
    pub execs: u64,
    /// RNG seed (repetitions use different seeds).
    pub seed: u64,
    /// Maximum calls per program.
    pub max_prog_len: usize,
    /// Restrict to these syscalls (`None` = all in the suite).
    pub enabled: Option<Vec<String>>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            execs: 10_000,
            seed: 0,
            max_prog_len: 8,
            enabled: None,
        }
    }
}

/// Crash title → (count, CVE).
pub type CrashTally = BTreeMap<String, (u64, Option<String>)>;

/// Outcome of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Union of covered blocks (dense bitmap; use
    /// [`CoverageMap::to_btree_set`] for a sorted-set report view).
    pub coverage: CoverageMap,
    /// Crash title → (count, CVE).
    pub crashes: CrashTally,
    /// Programs executed.
    pub execs: u64,
    /// Corpus size at the end (summed across shards when sharded).
    pub corpus_size: usize,
}

impl CampaignResult {
    /// Number of distinct crash titles.
    #[must_use]
    pub fn unique_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Blocks covered.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.coverage.len()
    }
}

/// Cap on retained corpus entries; older entries are evicted
/// first-in-first-out to bound memory on long campaigns.
pub(crate) const CORPUS_CAP: usize = 2048;

/// One worker's share of a campaign: the coverage-guided loop over
/// `execs` executions seeded with `seed`. This is the single code
/// path behind both [`Campaign`] and
/// [`crate::shard::ShardedCampaign`], so a sharded run with one shard
/// is bit-identical to a sequential run.
pub(crate) fn run_worker(
    kernel: &VKernel,
    db: &SpecDb,
    consts: &ConstDb,
    config: &CampaignConfig,
    execs: u64,
    seed: u64,
) -> WorkerResult {
    let mut generator = Generator::new(db, consts, seed);
    if let Some(enabled) = &config.enabled {
        generator = generator.with_enabled(enabled.clone());
    }
    let mut coverage = CoverageMap::new();
    let mut crashes: CrashTally = BTreeMap::new();
    // Ring buffer: eviction drops the oldest entry in O(1) instead of
    // the former `Vec::remove(0)` shift.
    let mut corpus: VecDeque<Program> = VecDeque::new();
    let mut scratch = ExecScratch::new(db, consts);
    let mut rng_pick = seed;
    for _ in 0..execs {
        // 1-in-4 fresh generation; otherwise mutate a corpus entry.
        rng_pick = rng_pick
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        let fresh = corpus.is_empty() || rng_pick.is_multiple_of(4);
        let prog = if fresh {
            generator.gen_program(config.max_prog_len)
        } else {
            let idx = (rng_pick >> 33) as usize % corpus.len();
            generator.mutate(&corpus[idx], config.max_prog_len)
        };
        execute_with(kernel, &prog, &mut scratch);
        if let Some(c) = &scratch.state.crash {
            let e = crashes
                .entry(c.title.clone())
                .or_insert_with(|| (0, c.cve.clone()));
            e.0 += 1;
        }
        let new_blocks = coverage.merge(&scratch.state.coverage);
        if new_blocks > 0 {
            corpus.push_back(prog);
            if corpus.len() > CORPUS_CAP {
                corpus.pop_front();
            }
        }
    }
    WorkerResult {
        coverage,
        crashes,
        corpus_size: corpus.len(),
    }
}

/// Mergeable result of one worker loop.
#[derive(Debug, Clone)]
pub(crate) struct WorkerResult {
    pub(crate) coverage: CoverageMap,
    pub(crate) crashes: CrashTally,
    pub(crate) corpus_size: usize,
}

/// A configured campaign over one spec suite and one kernel.
pub struct Campaign<'a> {
    kernel: &'a VKernel,
    db: Arc<SpecDb>,
    consts: &'a ConstDb,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Build a campaign from spec files. Compilation goes through the
    /// global [`SpecCache`], so constructing repeated campaigns over
    /// an identical suite (sweeps, repetitions over seeds) compiles
    /// it exactly once — and the suite is only borrowed, so warm
    /// construction does not even clone the input ASTs.
    #[must_use]
    pub fn new(
        kernel: &'a VKernel,
        suite: &[SpecFile],
        consts: &'a ConstDb,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign::with_db(
            kernel,
            SpecCache::global().get_or_build(suite),
            consts,
            config,
        )
    }

    /// Build a campaign over an already-compiled (shared) database.
    #[must_use]
    pub fn with_db(
        kernel: &'a VKernel,
        db: Arc<SpecDb>,
        consts: &'a ConstDb,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign {
            kernel,
            db,
            consts,
            config,
        }
    }

    /// The compiled spec database.
    #[must_use]
    pub fn db(&self) -> &SpecDb {
        &self.db
    }

    /// The shared handle to the compiled database (an `Arc` clone; a
    /// warm [`SpecCache`] hands the same pointer to every campaign
    /// over the same suite).
    #[must_use]
    pub fn db_shared(&self) -> Arc<SpecDb> {
        Arc::clone(&self.db)
    }

    /// Run the coverage-guided loop.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let w = run_worker(
            self.kernel,
            &self.db,
            self.consts,
            &self.config,
            self.config.execs,
            self.config.seed,
        );
        CampaignResult {
            coverage: w.coverage,
            crashes: w.crashes,
            execs: self.config.execs,
            corpus_size: w.corpus_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    fn cfg(execs: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            execs,
            seed,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_accumulates_coverage_and_crashes() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 4000,
            seed: 1,
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, &suite, &consts, cfg).run();
        assert!(r.blocks() > 50, "blocks={}", r.blocks());
        assert!(r.unique_crashes() >= 1, "crashes={:?}", r.crashes);
        assert!(r.corpus_size > 3);
    }

    #[test]
    fn better_specs_mean_more_coverage() {
        // Ground truth vs an imprecise buffer-typed spec of the same
        // driver: the typed suite must reach deeper.
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let bp = &kc.blueprints()[0];
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let cfg = CampaignConfig {
            execs: 2500,
            seed: 3,
            ..CampaignConfig::default()
        };
        let all_cmds: Vec<String> = bp.cmds.iter().map(|c| c.name.clone()).collect();
        let truth =
            Campaign::new(&kernel, &[bp.ground_truth_spec()], kc.consts(), cfg.clone()).run();
        let imprecise = Campaign::new(
            &kernel,
            &[bp.spec_for_cmds(&all_cmds, true, "dm_imprecise")],
            kc.consts(),
            cfg,
        )
        .run();
        assert!(
            truth.blocks() > imprecise.blocks(),
            "truth {} vs imprecise {}",
            truth.blocks(),
            imprecise.blocks()
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 500,
            seed: 9,
            ..CampaignConfig::default()
        };
        let a = Campaign::new(&kernel, &suite, &consts, cfg.clone()).run();
        let b = Campaign::new(&kernel, &suite, &consts, cfg).run();
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.crashes, b.crashes);
    }

    #[test]
    fn repeated_construction_shares_one_compiled_db() {
        // Two campaigns over the same suite (different configs) get
        // the *same* compiled database from the global SpecCache —
        // warm construction is an Arc clone, not a re-parse.
        let (kernel, suite, consts) = dm_setup();
        let a = Campaign::new(&kernel, &suite, &consts, cfg(10, 0));
        let b = Campaign::new(&kernel, &suite, &consts, cfg(999, 7));
        assert!(std::sync::Arc::ptr_eq(&a.db_shared(), &b.db_shared()));
    }

    #[test]
    fn precompiled_db_runs_identically() {
        let (kernel, suite, consts) = dm_setup();
        let by_files = Campaign::new(&kernel, &suite, &consts, cfg(600, 4)).run();
        let db = kgpt_syzlang::SpecCache::global().get_or_build(&suite);
        let by_db = Campaign::with_db(&kernel, db, &consts, cfg(600, 4)).run();
        assert_eq!(by_files.coverage, by_db.coverage);
        assert_eq!(by_files.crashes, by_db.crashes);
        assert_eq!(by_files.corpus_size, by_db.corpus_size);
    }

    #[test]
    fn enabled_filter_limits_surface() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 800,
            seed: 2,
            enabled: Some(vec!["openat$dm".into()]),
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, &suite, &consts, cfg).run();
        // Open blocks only.
        assert!(r.blocks() <= 8, "blocks={}", r.blocks());
    }
}
