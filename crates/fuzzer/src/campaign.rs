//! The coverage-guided fuzzing loop and campaign statistics.
//!
//! The loop itself lives in `ShardState`: one worker's generator,
//! [`crate::corpus::Corpus`], and execution scratch, advanced in
//! epochs so the sharded driver can interleave execution with
//! cross-shard seed exchange (see [`crate::hub::SeedHub`]). A
//! sequential [`Campaign`] is a single shard run in one epoch.

use crate::corpus::Corpus;
use crate::exec::{execute_with, ExecScratch};
use crate::gen::Generator;
use crate::triage::{ShardTriage, TriageMinimizer};
use kgpt_syzlang::lowered::LoweredDb;
use kgpt_syzlang::{ConstDb, SpecCache, SpecDb, SpecFile};
use kgpt_triage::TriageReport;
use kgpt_vkernel::{CoverageMap, VKernel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Campaign parameters. Wall-clock budgets from the paper are scaled
/// to execution counts (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of program executions.
    pub execs: u64,
    /// RNG seed (repetitions use different seeds).
    pub seed: u64,
    /// Maximum calls per program.
    pub max_prog_len: usize,
    /// Restrict to these syscalls (`None` = all in the suite).
    pub enabled: Option<Vec<String>>,
    /// Executions each shard runs between cross-shard seed exchanges
    /// (0 = shards fuzz in isolation). Like the shard count, this is
    /// part of the campaign's deterministic identity; the worker
    /// thread count still never changes the result. Sequential
    /// campaigns have a single shard, for which exchange is a no-op.
    pub hub_epoch: u64,
    /// Seeds each shard publishes to the hub per exchange
    /// (0 = publish nothing, making every exchange a no-op).
    pub hub_top_k: usize,
    /// Per-exec fuel budget in work units (blocks retired plus
    /// argument bytes decoded; see `VmState::set_fuel_limit`), so a
    /// pathological program terminates gracefully instead of wedging
    /// its worker. 0 = unlimited. Exhaustion is counted
    /// ([`CampaignResult::fuel_exhausted`]), never treated as a crash,
    /// and the partial coverage of a cut-off exec still merges. Like
    /// every config field this is part of the campaign's deterministic
    /// identity.
    pub exec_fuel: u64,
    /// Flight-recorder ring capacity: how many of the most recent
    /// non-crashing exec traces each shard retains (crash traces are
    /// pinned separately and never evicted; see [`kgpt_trace`]).
    /// 0 disables capture. Tracing never changes execution results —
    /// coverage, crashes and triage are identical at any setting —
    /// but the field is still part of the campaign's deterministic
    /// identity because checkpoints carry the retained traces.
    pub trace_ring: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            execs: 10_000,
            seed: 0,
            max_prog_len: 8,
            enabled: None,
            hub_epoch: 0,
            hub_top_k: 4,
            // Generous: orders of magnitude above what any spec-typed
            // program burns, so the watchdog only trips on runaways.
            exec_fuel: 1 << 20,
            // Cheap enough to leave on: ~32 traces × tens of stream
            // bytes per shard (see the `trace` bench section).
            trace_ring: 32,
        }
    }
}

/// Crash title → (count, CVE).
pub type CrashTally = BTreeMap<String, (u64, Option<String>)>;

/// Outcome of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Union of covered blocks (dense bitmap; use
    /// [`CoverageMap::to_btree_set`] for a sorted-set report view).
    pub coverage: CoverageMap,
    /// Crash title → (count, CVE).
    pub crashes: CrashTally,
    /// Programs executed.
    pub execs: u64,
    /// Corpus size at the end (summed across shards when sharded).
    pub corpus_size: usize,
    /// Per-signature triage: raw + 1-minimal reproducers, dedup
    /// counts, first-seen epoch/shard — merged first-publisher-wins
    /// across shards (see [`kgpt_triage`]).
    pub triage: TriageReport,
    /// Executions cut off by the per-exec fuel watchdog
    /// ([`CampaignConfig::exec_fuel`]), summed across shards.
    pub fuel_exhausted: u64,
}

impl CampaignResult {
    /// Number of distinct crash titles.
    #[must_use]
    pub fn unique_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Blocks covered.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.coverage.len()
    }
}

/// Cap on retained corpus entries; the least-productive entry is
/// evicted (see [`Corpus`]) to bound memory on long campaigns.
pub(crate) const CORPUS_CAP: usize = 2048;

/// One worker's live state: generator, coverage-keyed corpus, crash
/// tally, and execution scratch. The loop is advanced in epochs
/// ([`ShardState::run_epoch`]) so the sharded driver can pause every
/// shard at the same exec boundary for hub exchange; running the
/// whole budget as one epoch is bit-identical to the epoch-chunked
/// run with no-op exchanges.
pub(crate) struct ShardState {
    pub(crate) id: u32,
    generator: Generator,
    scratch: ExecScratch,
    pub(crate) corpus: Corpus,
    pub(crate) crashes: CrashTally,
    /// Per-shard signature capture (drained by the driver at epoch
    /// boundaries in shard-id order; see [`crate::triage`]).
    pub(crate) triage: ShardTriage,
    /// Epochs this shard has completed (the capture timestamp).
    epoch: u64,
    max_prog_len: usize,
    rng_pick: u64,
    pub(crate) remaining: u64,
    /// Executions cut off by the fuel watchdog.
    pub(crate) fuel_exhausted: u64,
    /// Flight recorder, when the campaign runs traced
    /// ([`CampaignConfig::trace_ring`] > 0 under the sharded driver).
    /// `None` leaves the exec path one never-taken branch per cover
    /// call. Not part of the snapshot: the sharded driver re-attaches
    /// tracers on restore and carries the stores in the checkpoint's
    /// own trace section.
    tracer: Option<crate::flight::ShardTracer>,
}

/// Everything a shard's in-memory state (`ShardState`) needs
/// persisted to continue exactly
/// where it left off — the serializable projection the checkpoint
/// layer (see [`crate::checkpoint`]) encodes per shard. Derived state
/// (the lowered IR, the execution scratch, the enabled-syscall list)
/// is rebuilt from `(lowered, config)` on restore.
///
/// Public as an *opaque* token: the campaign fabric
/// ([`crate::fabric`]) hands committed boundary snapshots across
/// process boundaries (encoded with the checkpoint framing), but the
/// fields stay crate-private — outside code can only obtain one from
/// the fabric codecs and pass it back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    pub(crate) id: u32,
    pub(crate) gen_rng: [u64; 4],
    pub(crate) corpus_rng: u64,
    pub(crate) corpus_coverage: kgpt_vkernel::CoverageMap,
    pub(crate) corpus_entries: Vec<crate::corpus::CorpusEntry>,
    pub(crate) corpus_stats: crate::corpus::CorpusStats,
    pub(crate) crashes: CrashTally,
    pub(crate) triage_seen: std::collections::BTreeSet<kgpt_vkernel::CrashSignature>,
    pub(crate) epoch: u64,
    pub(crate) rng_pick: u64,
    pub(crate) remaining: u64,
    pub(crate) fuel_exhausted: u64,
}

impl ShardState {
    /// Fresh shard `id` with an execution budget of `execs`, seeded
    /// with `seed` (generator and corpus scheduler share it). Every
    /// shard shares the one lowered IR its campaign compiled.
    pub(crate) fn new(
        lowered: &Arc<LoweredDb>,
        config: &CampaignConfig,
        id: u32,
        execs: u64,
        seed: u64,
    ) -> ShardState {
        let mut generator = Generator::from_lowered(Arc::clone(lowered), seed);
        if let Some(enabled) = &config.enabled {
            generator = generator.with_enabled(enabled.clone());
        }
        let mut scratch = ExecScratch::from_lowered(Arc::clone(lowered));
        scratch.state.set_fuel_limit(config.exec_fuel);
        ShardState {
            id,
            generator,
            scratch,
            corpus: Corpus::new(CORPUS_CAP, seed),
            crashes: BTreeMap::new(),
            triage: ShardTriage::default(),
            epoch: 0,
            max_prog_len: config.max_prog_len,
            rng_pick: seed,
            remaining: execs,
            fuel_exhausted: 0,
            tracer: None,
        }
    }

    /// Attach a flight recorder and switch the VM's trace log on.
    pub(crate) fn attach_tracer(&mut self, tracer: crate::flight::ShardTracer) {
        self.scratch.state.trace_mut().set_enabled(true);
        self.tracer = Some(tracer);
    }

    /// Clone of the attached recorder (with its retained traces), for
    /// the fault-injection driver's pre-abort snapshots.
    pub(crate) fn clone_tracer(&self) -> Option<crate::flight::ShardTracer> {
        self.tracer.clone()
    }

    /// Replace the attached recorder's retained traces (checkpoint
    /// resume). No-op when the shard runs untraced.
    pub(crate) fn set_trace_store(&mut self, store: kgpt_trace::TraceStore) {
        if let Some(t) = &mut self.tracer {
            t.set_store(store);
        }
    }

    /// The shard id and serialized trace store, when traced — what
    /// the checkpoint layer persists per shard.
    pub(crate) fn trace_store_bytes(&self) -> Option<(u32, Vec<u8>)> {
        self.tracer
            .as_ref()
            .map(|t| (self.id, t.store().to_bytes()))
    }

    /// Detach the recorder, surrendering the shard's retained traces.
    pub(crate) fn take_store(&mut self) -> Option<kgpt_trace::TraceStore> {
        self.tracer
            .take()
            .map(crate::flight::ShardTracer::into_store)
    }

    /// Serializable projection of this shard's live state (see
    /// [`ShardSnapshot`]). Pure read: the shard is untouched.
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            id: self.id,
            gen_rng: self.generator.rng_state(),
            corpus_rng: self.corpus.rng_state(),
            corpus_coverage: self.corpus.coverage().clone(),
            corpus_entries: self.corpus.entries().to_vec(),
            corpus_stats: self.corpus.stats(),
            crashes: self.crashes.clone(),
            triage_seen: self.triage.seen().clone(),
            epoch: self.epoch,
            rng_pick: self.rng_pick,
            remaining: self.remaining,
            fuel_exhausted: self.fuel_exhausted,
        }
    }

    /// Rebuild a live shard from a snapshot, sharing the campaign's
    /// lowered IR. Inverse of [`ShardState::snapshot`]: continuing the
    /// restored shard is bit-identical to continuing the original.
    pub(crate) fn restore(
        lowered: &Arc<LoweredDb>,
        config: &CampaignConfig,
        snap: &ShardSnapshot,
    ) -> ShardState {
        let mut state = ShardState::new(lowered, config, snap.id, snap.remaining, 0);
        state.generator.restore_rng(snap.gen_rng);
        state.corpus = Corpus::from_parts(
            CORPUS_CAP,
            snap.corpus_rng,
            snap.corpus_coverage.clone(),
            snap.corpus_entries.clone(),
            snap.corpus_stats,
        );
        state.crashes = snap.crashes.clone();
        state.triage = ShardTriage::from_seen(snap.triage_seen.clone());
        state.epoch = snap.epoch;
        state.rng_pick = snap.rng_pick;
        state.fuel_exhausted = snap.fuel_exhausted;
        state
    }

    /// Run up to `budget` executions (less if the shard's remaining
    /// budget is smaller) of the coverage-guided loop: 1-in-4 fresh
    /// generation, otherwise mutate a corpus seed picked by the
    /// weighted scheduler; admit whatever contributes new coverage.
    pub(crate) fn run_epoch(&mut self, kernel: &VKernel, budget: u64) {
        let n = budget.min(self.remaining);
        for _ in 0..n {
            self.rng_pick = self
                .rng_pick
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let fresh = self.corpus.is_empty() || self.rng_pick.is_multiple_of(4);
            let (prog, parent) = if fresh {
                (self.generator.gen_program(self.max_prog_len), None)
            } else {
                let idx = self.corpus.select().expect("non-empty corpus");
                (
                    self.generator
                        .mutate(self.corpus.program(idx), self.max_prog_len),
                    Some(idx),
                )
            };
            execute_with(kernel, &prog, &mut self.scratch);
            if self.scratch.state.fuel_exhausted() {
                self.fuel_exhausted += 1;
            }
            if let Some(c) = self.scratch.crash() {
                let e = self
                    .crashes
                    .entry(c.title.clone())
                    .or_insert_with(|| (0, c.cve.clone()));
                e.0 += 1;
                // Capture the reproducer on the first local sighting
                // of the signature (clones only then), count always.
                self.triage.observe(c, &prog, self.epoch);
            }
            if let Some(tracer) = &mut self.tracer {
                tracer.record(&self.scratch, &prog, self.epoch);
            }
            self.corpus.observe(prog, self.scratch.coverage(), parent);
        }
        self.remaining -= n;
        self.epoch += 1;
    }

    /// Fold the finished shard into a mergeable result. The triage
    /// report is filled in by the caller (sequential worker) or
    /// accumulated externally by the sharded driver's boundary
    /// drains.
    pub(crate) fn finish(self) -> WorkerResult {
        let crashes = self.crashes;
        let fuel_exhausted = self.fuel_exhausted;
        let (coverage, corpus_size) = self.corpus.into_coverage();
        WorkerResult {
            coverage,
            crashes,
            corpus_size,
            triage: TriageReport::new(),
            fuel_exhausted,
        }
    }
}

/// One worker's share of a campaign: the coverage-guided loop over
/// `execs` executions seeded with `seed`, run as a single epoch with
/// a triage drain (capture → ddmin) at its end. This is the single
/// code path behind both [`Campaign`] and
/// [`crate::shard::ShardedCampaign`], so a sharded run with one shard
/// is bit-identical to a sequential run.
pub(crate) fn run_worker(
    kernel: &VKernel,
    lowered: &Arc<LoweredDb>,
    config: &CampaignConfig,
    execs: u64,
    seed: u64,
) -> WorkerResult {
    let mut state = ShardState::new(lowered, config, 0, execs, seed);
    state.run_epoch(kernel, u64::MAX);
    let mut triage = TriageReport::new();
    TriageMinimizer::new(lowered).drain(kernel, 0, &mut state.triage, &mut triage);
    let mut w = state.finish();
    w.triage = triage;
    w
}

/// Mergeable result of one worker loop.
#[derive(Debug, Clone)]
pub(crate) struct WorkerResult {
    pub(crate) coverage: CoverageMap,
    pub(crate) crashes: CrashTally,
    pub(crate) corpus_size: usize,
    pub(crate) triage: TriageReport,
    pub(crate) fuel_exhausted: u64,
}

/// A configured campaign over one spec suite and one kernel.
pub struct Campaign<'a> {
    kernel: &'a VKernel,
    db: Arc<SpecDb>,
    lowered: Arc<LoweredDb>,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Build a campaign from spec files. Compilation *and lowering*
    /// go through the global [`SpecCache`], so constructing repeated
    /// campaigns over an identical suite (sweeps, repetitions over
    /// seeds) compiles and lowers it exactly once — and the suite is
    /// only borrowed, so warm construction does not even clone the
    /// input ASTs.
    #[must_use]
    pub fn new(
        kernel: &'a VKernel,
        suite: &[SpecFile],
        consts: &ConstDb,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        Campaign::with_db(
            kernel,
            SpecCache::global().get_or_build(suite),
            consts,
            config,
        )
    }

    /// Build a campaign over an already-compiled (shared) database.
    /// The lowered IR comes from the global [`SpecCache`] when `db`
    /// was compiled by it (the common case), so this too lowers once
    /// per distinct `(suite, consts)` pair.
    #[must_use]
    pub fn with_db(
        kernel: &'a VKernel,
        db: Arc<SpecDb>,
        consts: &ConstDb,
        config: CampaignConfig,
    ) -> Campaign<'a> {
        let lowered = SpecCache::global().get_or_lower(&db, consts);
        Campaign {
            kernel,
            db,
            lowered,
            config,
        }
    }

    /// The compiled spec database.
    #[must_use]
    pub fn db(&self) -> &SpecDb {
        &self.db
    }

    /// The shared handle to the compiled database (an `Arc` clone; a
    /// warm [`SpecCache`] hands the same pointer to every campaign
    /// over the same suite).
    #[must_use]
    pub fn db_shared(&self) -> Arc<SpecDb> {
        Arc::clone(&self.db)
    }

    /// The shared handle to the lowered IR every shard of this
    /// campaign runs on.
    #[must_use]
    pub fn lowered_shared(&self) -> Arc<LoweredDb> {
        Arc::clone(&self.lowered)
    }

    /// Run the coverage-guided loop.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let w = run_worker(
            self.kernel,
            &self.lowered,
            &self.config,
            self.config.execs,
            self.config.seed,
        );
        CampaignResult {
            coverage: w.coverage,
            crashes: w.crashes,
            execs: self.config.execs,
            corpus_size: w.corpus_size,
            triage: w.triage,
            fuel_exhausted: w.fuel_exhausted,
        }
    }

    /// Resume a previously checkpointed single-shard campaign from
    /// `path` and run it to completion. A sequential campaign is
    /// bit-identical to a one-shard [`crate::ShardedCampaign`] (pinned
    /// by tests), so resumption goes through the sharded driver on one
    /// shard and one thread.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::checkpoint::CheckpointError`] when no intact
    /// snapshot can be read from `path` (or its previous-good
    /// rotation), or when the snapshot's config/spec fingerprints do
    /// not match this campaign.
    pub fn resume(
        &self,
        path: &std::path::Path,
    ) -> Result<CampaignResult, crate::checkpoint::CheckpointError> {
        crate::shard::ShardedCampaign::from_parts(
            self.kernel,
            Arc::clone(&self.db),
            Arc::clone(&self.lowered),
            self.config.clone(),
        )
        .with_shards(1)
        .with_threads(1)
        .resume(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    fn cfg(execs: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            execs,
            seed,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_accumulates_coverage_and_crashes() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 4000,
            seed: 1,
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, &suite, &consts, cfg).run();
        assert!(r.blocks() > 50, "blocks={}", r.blocks());
        assert!(r.unique_crashes() >= 1, "crashes={:?}", r.crashes);
        assert!(r.corpus_size > 3);
    }

    #[test]
    fn better_specs_mean_more_coverage() {
        // Ground truth vs an imprecise buffer-typed spec of the same
        // driver: the typed suite must reach deeper.
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let bp = &kc.blueprints()[0];
        let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
        let cfg = CampaignConfig {
            execs: 2500,
            seed: 3,
            ..CampaignConfig::default()
        };
        let all_cmds: Vec<String> = bp.cmds.iter().map(|c| c.name.clone()).collect();
        let truth =
            Campaign::new(&kernel, &[bp.ground_truth_spec()], kc.consts(), cfg.clone()).run();
        let imprecise = Campaign::new(
            &kernel,
            &[bp.spec_for_cmds(&all_cmds, true, "dm_imprecise")],
            kc.consts(),
            cfg,
        )
        .run();
        assert!(
            truth.blocks() > imprecise.blocks(),
            "truth {} vs imprecise {}",
            truth.blocks(),
            imprecise.blocks()
        );
    }

    #[test]
    fn triage_minimized_reproducers_retrigger_their_signature() {
        // Every minimized reproducer must still crash with its
        // signature when replayed through the lowered dispatch path,
        // and must be no longer than its raw capture.
        let (kernel, suite, consts) = dm_setup();
        let r = Campaign::new(&kernel, &suite, &consts, cfg(4000, 1)).run();
        assert!(!r.triage.is_empty(), "dm campaign should triage crashes");
        let db = kgpt_syzlang::SpecCache::global().get_or_build(&suite);
        let lowered = kgpt_syzlang::SpecCache::global().get_or_lower(&db, &consts);
        let mut scratch = ExecScratch::from_lowered(lowered);
        for e in r.triage.entries() {
            execute_with(&kernel, &e.minimized, &mut scratch);
            assert_eq!(
                scratch.crash().map(|c| c.signature),
                Some(e.signature),
                "{} no longer reproduces",
                e.title
            );
            assert!(e.minimized.len() <= e.raw.len());
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 500,
            seed: 9,
            ..CampaignConfig::default()
        };
        let a = Campaign::new(&kernel, &suite, &consts, cfg.clone()).run();
        let b = Campaign::new(&kernel, &suite, &consts, cfg).run();
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.crashes, b.crashes);
    }

    #[test]
    fn repeated_construction_shares_one_compiled_db() {
        // Two campaigns over the same suite (different configs) get
        // the *same* compiled database from the global SpecCache —
        // warm construction is an Arc clone, not a re-parse.
        let (kernel, suite, consts) = dm_setup();
        let a = Campaign::new(&kernel, &suite, &consts, cfg(10, 0));
        let b = Campaign::new(&kernel, &suite, &consts, cfg(999, 7));
        assert!(std::sync::Arc::ptr_eq(&a.db_shared(), &b.db_shared()));
    }

    #[test]
    fn precompiled_db_runs_identically() {
        let (kernel, suite, consts) = dm_setup();
        let by_files = Campaign::new(&kernel, &suite, &consts, cfg(600, 4)).run();
        let db = kgpt_syzlang::SpecCache::global().get_or_build(&suite);
        let by_db = Campaign::with_db(&kernel, db, &consts, cfg(600, 4)).run();
        assert_eq!(by_files.coverage, by_db.coverage);
        assert_eq!(by_files.crashes, by_db.crashes);
        assert_eq!(by_files.corpus_size, by_db.corpus_size);
    }

    #[test]
    fn enabled_filter_limits_surface() {
        let (kernel, suite, consts) = dm_setup();
        let cfg = CampaignConfig {
            execs: 800,
            seed: 2,
            enabled: Some(vec!["openat$dm".into()]),
            ..CampaignConfig::default()
        };
        let r = Campaign::new(&kernel, &suite, &consts, cfg).run();
        // Open blocks only.
        assert!(r.blocks() <= 8, "blocks={}", r.blocks());
    }
}
