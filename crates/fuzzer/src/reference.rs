//! AST-walk reference implementations of generation and execution.
//!
//! These are the *pre-lowering* code paths, kept verbatim as the
//! differential-testing oracle for the arena-walking hot path in
//! [`crate::gen::Generator`] and [`crate::exec`]: the lowered
//! generator must draw the same RNG sequence and produce bit-identical
//! program streams, and the lowered encoder must produce byte-identical
//! memory images and results. `tests/properties.rs` pins both, and the
//! `lowering` section of `fuzz_bench` measures the before/after
//! throughput and re-asserts bit-identity on every CI run.
//!
//! Nothing here runs on a campaign's hot path.

use crate::exec::ExecResult;
use crate::program::{ProgCall, Program};
use kgpt_syzlang::ast::{ArrayLen, Type};
use kgpt_syzlang::value::{MemBuilder, ResRef};
use kgpt_syzlang::{ConstDb, SpecDb, Value};
use kgpt_vkernel::{MemMap, Sysno, VKernel, VmState};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Interesting scalar boundary values the generator favours. Shared
/// with the lowered generator — one table, one stream.
pub(crate) const INTERESTING: &[u64] = &[
    0,
    1,
    2,
    3,
    7,
    8,
    16,
    64,
    127,
    128,
    255,
    0x7fff,
    0xffff,
    0x7fff_ffff,
    0xffff_ffff,
    u64::MAX,
];

/// The pre-lowering generator: walks [`Type`] trees with name-keyed
/// [`SpecDb`] lookups per value. Only used as the differential
/// reference for [`crate::gen::Generator`].
pub struct AstGenerator<'a> {
    db: &'a SpecDb,
    consts: &'a ConstDb,
    rng: StdRng,
    /// Enabled syscalls as dense database indices.
    enabled: Vec<u32>,
    /// Resource name → producing syscall indices, precomputed once.
    producers: BTreeMap<String, Vec<u32>>,
}

impl<'a> AstGenerator<'a> {
    /// Create a generator over all syscalls of the database.
    #[must_use]
    pub fn new(db: &'a SpecDb, consts: &'a ConstDb, seed: u64) -> AstGenerator<'a> {
        let mut producers: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for sys in db.syscalls() {
            for p in &sys.params {
                if let Type::Resource(r) = &p.ty {
                    if !producers.contains_key(r) && db.resource(r).is_some() {
                        let list = db
                            .producers_of(r)
                            .filter_map(|s| db.syscall_index(&s.name()))
                            .map(|i| i as u32)
                            .collect();
                        producers.insert(r.clone(), list);
                    }
                }
            }
        }
        AstGenerator {
            db,
            consts,
            rng: StdRng::seed_from_u64(seed),
            enabled: (0..db.syscall_count() as u32).collect(),
            producers,
        }
    }

    /// Restrict generation to the given syscalls.
    #[must_use]
    pub fn with_enabled(mut self, enabled: Vec<String>) -> AstGenerator<'a> {
        self.enabled = enabled
            .iter()
            .filter_map(|n| self.db.syscall_index(n))
            .map(|i| i as u32)
            .collect();
        self
    }

    /// Generate a fresh program of at most `max_len` calls.
    pub fn gen_program(&mut self, max_len: usize) -> Program {
        let mut prog = Program::default();
        let want = self.rng.random_range(1..=max_len.max(1));
        for _ in 0..want {
            if self.enabled.is_empty() {
                break;
            }
            let pick = self.enabled[self.rng.random_range(0..self.enabled.len())];
            self.append_call(&mut prog, pick, 0);
            if prog.len() >= max_len {
                break;
            }
        }
        prog
    }

    fn find_producer(&self, prog: &Program, upto: usize, resource: &str) -> Option<usize> {
        let db = self.db;
        prog.calls[..upto.min(prog.len())]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| c.syscall(db).ret.as_deref() == Some(resource))
            .map(|(i, _)| i)
    }

    fn append_call(&mut self, prog: &mut Program, sys_idx: u32, depth: usize) -> Option<usize> {
        if depth > 6 || prog.len() > 24 {
            return None;
        }
        let db = self.db;
        let sys = db.syscall_at(sys_idx as usize);
        for p in &sys.params {
            if let Type::Resource(r) = &p.ty {
                if self.find_producer(prog, prog.len(), r).is_none() {
                    if let Some(pick) = self
                        .producers
                        .get(r)
                        .and_then(|list| list.choose(&mut self.rng))
                        .copied()
                    {
                        self.append_call(prog, pick, depth + 1);
                    }
                }
            }
        }
        let args = sys
            .params
            .iter()
            .map(|p| self.gen_value(&p.ty, prog, prog.len(), 0))
            .collect();
        prog.calls.push(ProgCall { sys: sys_idx, args });
        Some(prog.len() - 1)
    }

    fn gen_value(&mut self, ty: &Type, prog: &Program, upto: usize, depth: usize) -> Value {
        if depth > 12 {
            return Value::Int(0);
        }
        match ty {
            Type::Int { bits, range } => {
                let v = match range {
                    Some((lo, hi)) if self.rng.random_bool(0.85) => {
                        if hi > lo {
                            lo + self.rng.random_range(0..=(hi - lo))
                        } else {
                            *lo
                        }
                    }
                    _ => self.gen_int(),
                };
                Value::Int(bits.truncate(v))
            }
            Type::Const { .. } => Value::Int(0),
            Type::Flags { set, bits } => {
                let values: Vec<u64> = self
                    .db
                    .flags_def(set)
                    .map(|fd| {
                        fd.values
                            .iter()
                            .filter_map(|v| self.consts.resolve(v))
                            .collect()
                    })
                    .unwrap_or_default();
                let mut acc = 0u64;
                for v in &values {
                    if self.rng.random_bool(0.4) {
                        acc |= v;
                    }
                }
                if values.is_empty() || self.rng.random_bool(0.05) {
                    acc = self.gen_int();
                }
                Value::Int(bits.truncate(acc))
            }
            Type::StringLit { values } => {
                let s = values.choose(&mut self.rng).cloned().unwrap_or_default();
                Value::Bytes(s.into_bytes())
            }
            Type::Ptr { elem, .. } => {
                if self.rng.random_bool(0.03) {
                    Value::Ptr { pointee: None }
                } else {
                    Value::ptr_to(self.gen_value(elem, prog, upto, depth + 1))
                }
            }
            Type::Array { elem, len } => {
                let n = match len {
                    ArrayLen::Fixed(n) => *n,
                    ArrayLen::Range(lo, hi) => {
                        if hi > lo {
                            lo + self.rng.random_range(0..=(hi - lo).min(16))
                        } else {
                            *lo
                        }
                    }
                    ArrayLen::Unsized => match self.rng.random_range(0..10u32) {
                        0..=6 => self.rng.random_range(0..8),
                        7 | 8 => self.rng.random_range(8..256),
                        _ => self.rng.random_range(256..4096),
                    },
                };
                if matches!(
                    elem.as_ref(),
                    Type::Int {
                        bits: kgpt_syzlang::IntBits::I8,
                        ..
                    }
                ) {
                    let mut bytes = vec![0u8; n as usize];
                    for b in &mut bytes {
                        *b = self.rng.random_range(0..=255u32) as u8;
                    }
                    return Value::Bytes(bytes);
                }
                let mut vs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    vs.push(self.gen_value(elem, prog, upto, depth + 1));
                }
                Value::Group(vs)
            }
            Type::Len { .. } | Type::Bytesize { .. } => Value::Int(0),
            Type::Resource(r) => Value::Res(ResRef {
                producer: self.find_producer(prog, upto, r),
                fallback: if self.rng.random_bool(0.5) {
                    self.rng.random_range(0..6)
                } else {
                    u64::MAX
                },
            }),
            Type::Named(n) => {
                let db = self.db;
                let Some(def) = db.struct_def(n) else {
                    return Value::Int(0);
                };
                if def.is_union {
                    let arm = self.rng.random_range(0..def.fields.len().max(1));
                    let v = def
                        .fields
                        .get(arm)
                        .map(|f| self.gen_value(&f.ty, prog, upto, depth + 1))
                        .unwrap_or(Value::Int(0));
                    Value::Union {
                        arm,
                        value: Box::new(v),
                    }
                } else {
                    let vs = def
                        .fields
                        .iter()
                        .map(|f| self.gen_value(&f.ty, prog, upto, depth + 1))
                        .collect();
                    Value::Group(vs)
                }
            }
            Type::Proc { start, per, .. } => Value::Int(start + per),
            Type::Void => Value::Group(Vec::new()),
        }
    }

    fn gen_int(&mut self) -> u64 {
        if self.rng.random_bool(0.7) {
            *INTERESTING.choose(&mut self.rng).expect("non-empty")
        } else {
            self.rng.random()
        }
    }

    /// Mutate a program the pre-lowering way: deep-clone, then patch.
    /// The lowered [`crate::gen::Generator::mutate`] must produce the
    /// same output with the same draws (while cloning less).
    pub fn mutate(&mut self, prog: &Program, max_len: usize) -> Program {
        let mut p = prog.clone();
        if p.is_empty() {
            return self.gen_program(max_len);
        }
        match self.rng.random_range(0..10u32) {
            0..=5 => {
                let ci = self.rng.random_range(0..p.calls.len());
                let n_args = p.calls[ci].args.len();
                if n_args > 0 {
                    let ai = self.rng.random_range(0..n_args);
                    let ty = &self.db.syscall_at(p.calls[ci].sys as usize).params[ai].ty;
                    let v = self.gen_value(ty, &p, ci, 0);
                    p.calls[ci].args[ai] = v;
                }
            }
            6..=8 => {
                if !self.enabled.is_empty() && p.len() < max_len {
                    let pick = self.enabled[self.rng.random_range(0..self.enabled.len())];
                    self.append_call(&mut p, pick, 0);
                }
            }
            _ => {
                let keep = self.rng.random_range(1..=p.calls.len());
                p.truncate(keep);
            }
        }
        p
    }
}

/// Execute a program by walking the AST: per-call `SpecDb` lookups,
/// name-keyed `len` targets, and per-call base-name resolution — the
/// pre-lowering execution path, for differential tests and the
/// `lowering` bench section.
#[must_use]
pub fn ast_execute(kernel: &VKernel, db: &SpecDb, consts: &ConstDb, prog: &Program) -> ExecResult {
    let mut scratch = AstScratch::new(db, consts);
    ast_execute_with(kernel, prog, &mut scratch);
    ExecResult {
        coverage: std::mem::take(&mut scratch.state.coverage),
        crash: scratch.state.crash.take(),
        rets: std::mem::take(&mut scratch.rets),
    }
}

/// Reusable scratch for [`ast_execute_with`], mirroring what
/// [`crate::exec::ExecScratch`] was before lowering.
pub struct AstScratch<'a> {
    db: &'a SpecDb,
    /// Per-program VM state.
    pub state: VmState,
    /// Per-call return values of the last executed program.
    pub rets: Vec<i64>,
    mb: MemBuilder<'a>,
    mem: MemMap,
    shuttle: Vec<(u64, Vec<u8>)>,
}

impl<'a> AstScratch<'a> {
    /// Fresh scratch over a spec database and constant table.
    #[must_use]
    pub fn new(db: &'a SpecDb, consts: &'a ConstDb) -> AstScratch<'a> {
        AstScratch {
            db,
            state: VmState::new(),
            rets: Vec::new(),
            mb: MemBuilder::new(db, consts),
            mem: MemMap::new(),
            shuttle: Vec::new(),
        }
    }
}

/// The pre-lowering `execute_with`: encodes through the AST-walking
/// [`MemBuilder`] and resolves the dispatch op from the base-name
/// string per call.
pub fn ast_execute_with(kernel: &VKernel, prog: &Program, scratch: &mut AstScratch<'_>) {
    scratch.state.reset();
    scratch.rets.clear();
    let db = scratch.db;
    for call in &prog.calls {
        if scratch.state.crash.is_some() {
            scratch.rets.push(-kgpt_vkernel::errno::EFAULT);
            continue;
        }
        let sys = call.syscall(db);
        scratch.mb.reset();
        let mut regs = [0u64; 6];
        let mut ok = true;
        {
            let rets = &scratch.rets;
            let resolve = |r: &ResRef| -> u64 {
                match r.producer.and_then(|i| rets.get(i)) {
                    Some(v) if *v >= 0 => *v as u64,
                    _ => r.fallback,
                }
            };
            for (i, (param, value)) in sys.params.iter().zip(&call.args).enumerate() {
                if i >= 6 {
                    break;
                }
                match scratch.mb.encode_arg(&param.ty, value, &resolve) {
                    Ok(v) => regs[i] = v,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            scratch.rets.push(-kgpt_vkernel::errno::EINVAL);
            continue;
        }
        let segments = scratch.mb.segments();
        for (i, param) in sys.params.iter().enumerate().take(6) {
            if let kgpt_syzlang::Type::Bytesize { target, .. }
            | kgpt_syzlang::Type::Len { target, .. } = &param.ty
            {
                // Same out-of-window guard as the lowered path (the
                // two executors must stay in sync).
                if let Some((ti, _)) = sys
                    .params
                    .iter()
                    .enumerate()
                    .find(|(_, p)| &p.name == target)
                    .filter(|(ti, _)| *ti < regs.len())
                {
                    let addr = regs[ti];
                    if let Ok(si) = segments.binary_search_by_key(&addr, |s| s.0) {
                        regs[i] = segments[si].1.len() as u64;
                    }
                }
            }
        }
        scratch.mb.swap_segments(&mut scratch.shuttle);
        scratch.mem.load(&mut scratch.shuttle);
        scratch.mb.recycle(&mut scratch.shuttle);
        let ret = kernel.exec_call(
            &mut scratch.state,
            Sysno::from_base(&sys.base),
            &regs,
            &scratch.mem,
        );
        scratch.rets.push(ret);
    }
}
