//! Sharded parallel campaigns.
//!
//! A [`ShardedCampaign`] decomposes a campaign into a fixed number of
//! **logical shards**. Shard `i` runs the standard coverage-guided
//! worker loop over its slice of the execution budget, seeded
//! `seed.wrapping_add(i)` with its own generator, corpus, and
//! execution scratch;
//! the booted [`VKernel`] and the compiled [`SpecDb`] are shared by
//! reference (`VKernel: Sync` is asserted at compile time in
//! `kgpt-vkernel`).
//!
//! Determinism contract: the result is a pure function of
//! `(config, shards)`. The **thread count is a pure throughput knob**
//! — shards are distributed over `threads` OS threads, and because
//! every shard is independent and the merge runs in shard-id order,
//! `coverage`/`crashes` are identical for any thread count (and the
//! merge itself is commutative, so merge order could not change the
//! set either way). A one-shard campaign is bit-identical to
//! [`Campaign::run`](crate::Campaign::run) with the same config.

use crate::campaign::{run_worker, CampaignConfig, CampaignResult, CrashTally, WorkerResult};
use kgpt_syzlang::{ConstDb, SpecCache, SpecDb, SpecFile};
use kgpt_vkernel::{CoverageMap, VKernel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default logical shard count (the paper-benchmark scaling curve is
/// measured at 1–8 worker threads over this decomposition).
pub const DEFAULT_SHARDS: u32 = 8;

/// A campaign split across logical shards and executed by a pool of
/// worker threads.
pub struct ShardedCampaign<'a> {
    kernel: &'a VKernel,
    db: Arc<SpecDb>,
    consts: &'a ConstDb,
    config: CampaignConfig,
    shards: u32,
    /// 0 = one thread per available CPU (capped at the shard count).
    threads: usize,
}

impl<'a> ShardedCampaign<'a> {
    /// Build a sharded campaign from spec files. Defaults to
    /// [`DEFAULT_SHARDS`] logical shards and one thread per available
    /// CPU. Compilation goes through the global [`SpecCache`]; the
    /// thread-scaling sweep in `fuzz_bench` compiles its suite once,
    /// not once per thread point.
    #[must_use]
    pub fn new(
        kernel: &'a VKernel,
        suite: &[SpecFile],
        consts: &'a ConstDb,
        config: CampaignConfig,
    ) -> ShardedCampaign<'a> {
        ShardedCampaign::with_db(
            kernel,
            SpecCache::global().get_or_build(suite),
            consts,
            config,
        )
    }

    /// Build a sharded campaign over an already-compiled (shared)
    /// database.
    #[must_use]
    pub fn with_db(
        kernel: &'a VKernel,
        db: Arc<SpecDb>,
        consts: &'a ConstDb,
        config: CampaignConfig,
    ) -> ShardedCampaign<'a> {
        ShardedCampaign {
            kernel,
            db,
            consts,
            config,
            shards: DEFAULT_SHARDS,
            threads: 0,
        }
    }

    /// Set the logical shard count (≥ 1). Changes the work
    /// decomposition and therefore the result — it is part of the
    /// campaign's deterministic identity.
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> ShardedCampaign<'a> {
        self.shards = shards.max(1);
        self
    }

    /// Set the worker thread count (0 = auto). Pure parallelism knob:
    /// never changes `coverage`/`crashes`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ShardedCampaign<'a> {
        self.threads = threads;
        self
    }

    /// The compiled spec database.
    #[must_use]
    pub fn db(&self) -> &SpecDb {
        &self.db
    }

    /// The shared handle to the compiled database.
    #[must_use]
    pub fn db_shared(&self) -> Arc<SpecDb> {
        Arc::clone(&self.db)
    }

    /// Execution budget of shard `i`: `execs` split as evenly as
    /// possible, earlier shards taking the remainder.
    fn shard_execs(&self, i: u32) -> u64 {
        let n = u64::from(self.shards);
        self.config.execs / n + u64::from(u64::from(i) < self.config.execs % n)
    }

    /// Run all shards and merge. See the module docs for the
    /// determinism contract.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let shards = self.shards as usize;
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
        .clamp(1, shards);

        let mut results: Vec<Option<WorkerResult>> = Vec::with_capacity(shards);
        if threads <= 1 {
            for i in 0..self.shards {
                results.push(Some(self.run_shard(i)));
            }
        } else {
            let slots: Vec<Mutex<Option<WorkerResult>>> =
                (0..shards).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= shards {
                            break;
                        }
                        let r = self.run_shard(i as u32);
                        *slots[i].lock().expect("shard slot poisoned") = Some(r);
                    });
                }
            });
            results.extend(
                slots
                    .into_iter()
                    .map(|m| m.into_inner().expect("shard slot poisoned")),
            );
        }

        // Merge in shard-id order (deterministic; the merge is also
        // commutative, so any order would produce the same result).
        let mut coverage = CoverageMap::new();
        let mut crashes: CrashTally = CrashTally::new();
        let mut corpus_size = 0usize;
        for r in results.into_iter().map(|r| r.expect("shard ran")) {
            coverage.merge(&r.coverage);
            for (title, (count, cve)) in r.crashes {
                let e = crashes.entry(title).or_insert((0, cve));
                e.0 += count;
            }
            corpus_size += r.corpus_size;
        }
        CampaignResult {
            coverage,
            crashes,
            execs: self.config.execs,
            corpus_size,
        }
    }

    fn run_shard(&self, i: u32) -> WorkerResult {
        run_worker(
            self.kernel,
            &self.db,
            self.consts,
            &self.config,
            self.shard_execs(i),
            self.config.seed.wrapping_add(u64::from(i)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use kgpt_csrc::KernelCorpus;

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    fn cfg(execs: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            execs,
            seed,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_sequential_campaign() {
        let (kernel, suite, consts) = dm_setup();
        let sequential = Campaign::new(&kernel, &suite, &consts, cfg(1500, 4)).run();
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1500, 4))
            .with_shards(1)
            .run();
        assert_eq!(sequential.coverage, sharded.coverage);
        assert_eq!(sequential.crashes, sharded.crashes);
        assert_eq!(sequential.corpus_size, sharded.corpus_size);
    }

    #[test]
    fn thread_count_never_changes_the_result() {
        let (kernel, suite, consts) = dm_setup();
        let run = |threads: usize| {
            ShardedCampaign::new(&kernel, &suite, &consts, cfg(2000, 11))
                .with_shards(8)
                .with_threads(threads)
                .run()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            let r = run(threads);
            assert_eq!(base.coverage, r.coverage, "threads={threads}");
            assert_eq!(base.crashes, r.crashes, "threads={threads}");
            assert_eq!(base.corpus_size, r.corpus_size, "threads={threads}");
        }
    }

    #[test]
    fn merged_result_equals_manual_shard_union() {
        let (kernel, suite, consts) = dm_setup();
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, cfg(2100, 5))
            .with_shards(4)
            .run();
        // Reconstruct by running each shard as its own sequential
        // campaign and merging by hand: 2100 = 525 * 4.
        let mut coverage = CoverageMap::new();
        let mut crashes = CrashTally::new();
        for i in 0..4u64 {
            let r = Campaign::new(&kernel, &suite, &consts, cfg(525, 5 + i)).run();
            coverage.merge(&r.coverage);
            for (title, (count, cve)) in r.crashes {
                let e = crashes.entry(title).or_insert((0, cve));
                e.0 += count;
            }
        }
        assert_eq!(sharded.coverage, coverage);
        assert_eq!(sharded.crashes, crashes);
        assert_eq!(sharded.execs, 2100);
    }

    #[test]
    fn sharded_campaign_finds_dm_coverage_and_crashes() {
        let (kernel, suite, consts) = dm_setup();
        let r = ShardedCampaign::new(&kernel, &suite, &consts, cfg(4000, 1)).run();
        assert!(r.blocks() > 50, "blocks={}", r.blocks());
        assert!(r.unique_crashes() >= 1, "crashes={:?}", r.crashes);
        assert!(r.corpus_size > 3);
    }

    #[test]
    fn sharded_and_sequential_campaigns_share_the_cached_db() {
        let (kernel, suite, consts) = dm_setup();
        let sequential = Campaign::new(&kernel, &suite, &consts, cfg(10, 0));
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, cfg(10, 0));
        assert!(std::sync::Arc::ptr_eq(
            &sequential.db_shared(),
            &sharded.db_shared()
        ));
    }

    #[test]
    fn seed_near_u64_max_wraps_instead_of_overflowing() {
        let (kernel, suite, consts) = dm_setup();
        let r = ShardedCampaign::new(&kernel, &suite, &consts, cfg(400, u64::MAX - 2))
            .with_shards(8)
            .run();
        assert_eq!(r.execs, 400);
        assert!(r.blocks() > 0);
    }

    #[test]
    fn uneven_exec_budgets_split_without_loss() {
        let (kernel, suite, consts) = dm_setup();
        let c = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1003, 0)).with_shards(8);
        let total: u64 = (0..8).map(|i| c.shard_execs(i)).sum();
        assert_eq!(total, 1003);
        assert!((0..8).all(|i| [125, 126].contains(&c.shard_execs(i))));
    }
}
