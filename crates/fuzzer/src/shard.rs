//! Sharded parallel campaigns.
//!
//! A [`ShardedCampaign`] decomposes a campaign into a fixed number of
//! **logical shards**. Shard `i` runs the standard coverage-guided
//! worker loop over its slice of the execution budget, seeded
//! `seed.wrapping_add(i)` with its own generator, coverage-keyed
//! [`crate::corpus::Corpus`], and execution scratch;
//! the booted [`VKernel`] and the compiled [`SpecDb`] are shared by
//! reference (`VKernel: Sync` is asserted at compile time in
//! `kgpt-vkernel`).
//!
//! With `hub_epoch > 0` the shards no longer fuzz in isolation: the
//! run proceeds **epoch-major** — every shard executes `hub_epoch`
//! programs, then all shards exchange their best seeds through a
//! [`SeedHub`] in shard-id order, then the next epoch starts. The
//! exchange points are fixed exec boundaries, so they are part of the
//! campaign's deterministic identity, not of its schedule.
//!
//! Determinism contract: the result is a pure function of
//! `(config, shards)` — `hub_epoch`/`hub_top_k` included. The
//! **thread count is a pure throughput knob**: within an epoch every
//! shard only reads shared immutable state, epochs are barriers, and
//! both the exchange and the final merge run in shard-id order on the
//! driving thread, so `coverage`/`crashes` are identical for any
//! thread count. A one-shard campaign is bit-identical to
//! [`Campaign::run`](crate::Campaign::run) with the same config
//! (exchange on one shard is a no-op by construction).

use crate::campaign::{CampaignConfig, CampaignResult, CrashTally, ShardState};
use crate::checkpoint::{config_fingerprint, CampaignSnapshot, CheckpointError};
use crate::faults::FaultPlan;
use crate::flight::{self, ShardTracer};
use crate::hub::SeedHub;
use crate::triage::TriageMinimizer;
use kgpt_syzlang::lowered::LoweredDb;
use kgpt_syzlang::{ConstDb, SpecCache, SpecDb, SpecFile};
use kgpt_trace::TraceStore;
use kgpt_triage::TriageReport;
use kgpt_vkernel::{CoverageMap, VKernel};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default logical shard count (the paper-benchmark scaling curve is
/// measured at 1–8 worker threads over this decomposition).
pub const DEFAULT_SHARDS: u32 = 8;

/// Checkpoint-write attempt cap: an injected or real write failure is
/// retried with deterministic linear backoff this many times before
/// the boundary is skipped (keeping the previous-good snapshot).
const MAX_WRITE_ATTEMPTS: u32 = 3;

/// A campaign split across logical shards and executed by a pool of
/// worker threads.
pub struct ShardedCampaign<'a> {
    kernel: &'a VKernel,
    db: Arc<SpecDb>,
    lowered: Arc<LoweredDb>,
    config: CampaignConfig,
    shards: u32,
    /// 0 = one thread per available CPU (capped at the shard count).
    threads: usize,
    /// Snapshot path; `Some` enables checkpointing at epoch
    /// boundaries.
    checkpoint: Option<PathBuf>,
    /// Injected faults (empty in production).
    faults: FaultPlan,
    /// Stop after this many checkpoints were written (test/bench
    /// hook simulating an interrupt at an epoch boundary).
    halt_after: Option<u64>,
    /// Observer called with the running install count after every
    /// successful checkpoint install (`Sync` because `&self` is
    /// shared with the worker threads during chunks).
    on_checkpoint: Option<Box<dyn Fn(u64) + Sync + 'a>>,
}

impl<'a> ShardedCampaign<'a> {
    /// Build a sharded campaign from spec files. Defaults to
    /// [`DEFAULT_SHARDS`] logical shards and one thread per available
    /// CPU. Compilation and lowering go through the global
    /// [`SpecCache`]; the thread-scaling sweep in `fuzz_bench`
    /// compiles and lowers its suite once, not once per thread point.
    #[must_use]
    pub fn new(
        kernel: &'a VKernel,
        suite: &[SpecFile],
        consts: &ConstDb,
        config: CampaignConfig,
    ) -> ShardedCampaign<'a> {
        ShardedCampaign::with_db(
            kernel,
            SpecCache::global().get_or_build(suite),
            consts,
            config,
        )
    }

    /// Build a sharded campaign over an already-compiled (shared)
    /// database (see [`crate::Campaign::with_db`] for the lowering
    /// cache behaviour).
    #[must_use]
    pub fn with_db(
        kernel: &'a VKernel,
        db: Arc<SpecDb>,
        consts: &ConstDb,
        config: CampaignConfig,
    ) -> ShardedCampaign<'a> {
        let lowered = SpecCache::global().get_or_lower(&db, consts);
        ShardedCampaign::from_parts(kernel, db, lowered, config)
    }

    /// Build from already-shared compiled parts (the path
    /// [`crate::Campaign::resume`] uses to reuse its own handles).
    pub(crate) fn from_parts(
        kernel: &'a VKernel,
        db: Arc<SpecDb>,
        lowered: Arc<LoweredDb>,
        config: CampaignConfig,
    ) -> ShardedCampaign<'a> {
        ShardedCampaign {
            kernel,
            db,
            lowered,
            config,
            shards: DEFAULT_SHARDS,
            threads: 0,
            checkpoint: None,
            faults: FaultPlan::none(),
            halt_after: None,
            on_checkpoint: None,
        }
    }

    /// Set the logical shard count (≥ 1). Changes the work
    /// decomposition and therefore the result — it is part of the
    /// campaign's deterministic identity.
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> ShardedCampaign<'a> {
        self.shards = shards.max(1);
        self
    }

    /// Set the worker thread count (0 = auto). Pure parallelism knob:
    /// never changes `coverage`/`crashes`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ShardedCampaign<'a> {
        self.threads = threads;
        self
    }

    /// Write a [`CampaignSnapshot`] to `path` at every epoch boundary
    /// (post-exchange, shard-id order — the loop-top state of the next
    /// epoch). Checkpointing never changes the campaign result: it
    /// only reads state the boundary already fixed.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> ShardedCampaign<'a> {
        self.checkpoint = Some(path.into());
        self
    }

    /// Inject a deterministic [`FaultPlan`] (durability tests/CI; the
    /// default is no faults). The campaign *result* stays bit-identical
    /// under any plan — only the recovery paths taken differ.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> ShardedCampaign<'a> {
        self.faults = faults;
        self
    }

    /// Stop the run right after the `n`-th successful checkpoint write
    /// (test/bench hook: simulates an interrupt at an epoch boundary;
    /// the returned result is the partial merge at the halt). Only
    /// meaningful together with [`ShardedCampaign::with_checkpoint`].
    #[must_use]
    pub fn with_halt_after(mut self, n: u64) -> ShardedCampaign<'a> {
        self.halt_after = Some(n);
        self
    }

    /// Observe successful checkpoint installs: `hook` is called on
    /// the driving thread with the total number installed so far
    /// (1-based), right after each atomic install. Lets a harness
    /// wait for "a resumable snapshot exists" instead of sleeping —
    /// the CI kill-and-resume job kills the process only after the
    /// first `CHECKPOINT` line this hook prints.
    #[must_use]
    pub fn with_on_checkpoint(mut self, hook: impl Fn(u64) + Sync + 'a) -> ShardedCampaign<'a> {
        self.on_checkpoint = Some(Box::new(hook));
        self
    }

    /// The compiled spec database.
    #[must_use]
    pub fn db(&self) -> &SpecDb {
        &self.db
    }

    /// The shared handle to the compiled database.
    #[must_use]
    pub fn db_shared(&self) -> Arc<SpecDb> {
        Arc::clone(&self.db)
    }

    /// The shared handle to the lowered IR every shard runs on (what
    /// an offline replayer builds its [`crate::ExecScratch`] from).
    #[must_use]
    pub fn lowered_shared(&self) -> Arc<LoweredDb> {
        Arc::clone(&self.lowered)
    }

    /// Execution budget of shard `i`: `execs` split as evenly as
    /// possible, earlier shards taking the remainder.
    fn shard_execs(&self, i: u32) -> u64 {
        let n = u64::from(self.shards);
        self.config.execs / n + u64::from(u64::from(i) < self.config.execs % n)
    }

    /// Fingerprint of this campaign's deterministic identity (config
    /// fields plus shard count) — what resume validates.
    fn config_fp(&self) -> u64 {
        config_fingerprint(&self.config, self.shards)
    }

    /// Fingerprint of the compiled spec suite — what resume validates.
    fn spec_fp(&self) -> u64 {
        SpecCache::fingerprint(self.db.files())
    }

    /// Run all shards and merge. See the module docs for the
    /// determinism contract.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        self.run_traced().0
    }

    /// [`ShardedCampaign::run`], also returning the flight recorder's
    /// per-shard [`TraceStore`]s in shard-id order (empty when
    /// [`CampaignConfig::trace_ring`] is 0). Like the result, the
    /// stores are a pure function of `(config, shards)`: the thread
    /// count never changes a recorded byte.
    #[must_use]
    pub fn run_traced(&self) -> (CampaignResult, Vec<TraceStore>) {
        let mut states: Vec<ShardState> = (0..self.shards)
            .map(|i| {
                ShardState::new(
                    &self.lowered,
                    &self.config,
                    i,
                    self.shard_execs(i),
                    self.config.seed.wrapping_add(u64::from(i)),
                )
            })
            .collect();
        self.attach_tracers(&mut states);
        self.run_from(
            states,
            SeedHub::new(self.config.hub_top_k),
            TriageReport::new(),
            0,
        )
    }

    /// Attach a flight recorder to every shard (no-op with the ring
    /// off). All shards share one prediction table; the spec
    /// fingerprint stamped into every trace is the one resume and
    /// replay validate.
    fn attach_tracers(&self, states: &mut [ShardState]) {
        if self.config.trace_ring == 0 {
            return;
        }
        let cfg = Arc::new(flight::cfg_successors(self.kernel));
        let spec_fp = self.spec_fp();
        for state in states.iter_mut() {
            state.attach_tracer(ShardTracer::new(
                Arc::clone(&cfg),
                spec_fp,
                state.id,
                self.config.trace_ring,
            ));
        }
    }

    /// Resume a checkpointed campaign from `path` and run it to
    /// completion. The final [`CampaignResult`] is **bit-identical**
    /// to an uninterrupted [`ShardedCampaign::run`] with the same
    /// config, at any thread count (pinned by `tests/durability.rs`).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when no intact snapshot can be
    /// read from `path` (or its previous-good rotation), when the
    /// snapshot's config/spec fingerprints do not match this campaign,
    /// or when its shard list is inconsistent.
    pub fn resume(&self, path: &Path) -> Result<CampaignResult, CheckpointError> {
        Ok(self.resume_traced(path)?.0)
    }

    /// [`ShardedCampaign::resume`], also returning the flight
    /// recorder's per-shard [`TraceStore`]s. The snapshot carries the
    /// traces retained at the checkpointed boundary, so the returned
    /// stores are bit-identical to an uninterrupted
    /// [`ShardedCampaign::run_traced`] (pinned by tests).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] under the same conditions as
    /// [`ShardedCampaign::resume`], plus when the snapshot's trace
    /// section fails strict decoding or names an unknown shard.
    pub fn resume_traced(
        &self,
        path: &Path,
    ) -> Result<(CampaignResult, Vec<TraceStore>), CheckpointError> {
        let snap = CampaignSnapshot::load(path)?;
        snap.validate(self.config_fp(), self.spec_fp())?;
        if snap.shards.len() != self.shards as usize
            || snap
                .shards
                .iter()
                .enumerate()
                .any(|(i, s)| s.id as usize != i)
        {
            return Err(CheckpointError {
                message: format!(
                    "snapshot shard list inconsistent: {} shards in snapshot, {} configured",
                    snap.shards.len(),
                    self.shards
                ),
            });
        }
        let mut states: Vec<ShardState> = snap
            .shards
            .iter()
            .map(|s| ShardState::restore(&self.lowered, &self.config, s))
            .collect();
        self.attach_tracers(&mut states);
        for (id, bytes) in &snap.traces {
            let store = TraceStore::from_bytes(bytes).map_err(|e| CheckpointError {
                message: format!("snapshot trace store for shard {id}: {e}"),
            })?;
            let state = states
                .get_mut(*id as usize)
                .ok_or_else(|| CheckpointError {
                    message: format!("snapshot trace store names unknown shard {id}"),
                })?;
            state.set_trace_store(store);
        }
        let hub = SeedHub::from_parts(
            snap.hub_top_k,
            snap.hub_seeds,
            snap.hub_coverage,
            snap.hub_published,
        );
        Ok(self.run_from(states, hub, snap.triage, snap.epochs_done))
    }

    /// The epoch-major loop from an arbitrary boundary: run every
    /// shard for one epoch (in parallel), then — still on this thread,
    /// in shard-id order — triage freshly captured crashes
    /// (first-publisher-wins, ddmin minimization), exchange seeds
    /// through the hub, and checkpoint. With the hub off the epoch is
    /// the whole budget and the loop body runs once. `epochs_done` is
    /// the driver boundary counter (0 for a fresh run) — fault
    /// injection and checkpoints key off it, so a resumed run
    /// continues the same epoch numbering.
    fn run_from(
        &self,
        mut states: Vec<ShardState>,
        mut hub: SeedHub,
        mut triage: TriageReport,
        mut epochs_done: u64,
    ) -> (CampaignResult, Vec<TraceStore>) {
        let shards = self.shards as usize;
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
        .clamp(1, shards);
        let epoch = match self.config.hub_epoch {
            0 => u64::MAX,
            e => e,
        };
        let mut minimizer = TriageMinimizer::new(&self.lowered);
        let mut checkpoints_written = 0u64;
        loop {
            let iter = epochs_done;
            // Injected mid-epoch shard abort: remember the victim's
            // boundary state before the chunk so the recovery path can
            // quarantine the poisoned state and re-run from it.
            let abort = self.faults.shard_abort(iter);
            let pre_abort = abort.and_then(|sid| {
                states
                    .get(sid as usize)
                    .map(|s| (s.snapshot(), s.clone_tracer()))
            });
            self.run_chunk(&mut states, threads, epoch);
            if let (Some(sid), Some((snap, tracer))) = (abort, pre_abort) {
                // The shard died mid-epoch: discard its (by assumption
                // poisoned) state, restore the boundary snapshot, and
                // re-run the epoch sequentially on the driving thread.
                // Shard evolution is schedule-independent, so the
                // re-run is bit-identical to the undisturbed epoch and
                // the merge proceeds with no quarantine hole. The
                // flight recorder gets the same treatment: the
                // boundary clone replaces the poisoned store before
                // the re-run, so retained traces stay bit-identical
                // to an undisturbed campaign too.
                let idx = sid as usize;
                states[idx] = ShardState::restore(&self.lowered, &self.config, &snap);
                if let Some(t) = tracer {
                    states[idx].attach_tracer(t);
                }
                states[idx].run_epoch(self.kernel, epoch);
            }
            for state in &mut states {
                minimizer.drain(self.kernel, state.id, &mut state.triage, &mut triage);
            }
            epochs_done = iter + 1;
            if states.iter().all(|s| s.remaining == 0) {
                break;
            }
            for state in &mut states {
                hub.publish(state.id, &state.corpus);
            }
            for state in &mut states {
                hub.import_into(state.id, &mut state.corpus);
            }
            // Checkpoint after the exchange: the snapshot is exactly
            // the loop-top state of the next iteration, so resume
            // re-enters here with nothing replayed and nothing lost.
            if let Some(path) = &self.checkpoint {
                let snap = CampaignSnapshot::capture(
                    self.config_fp(),
                    self.spec_fp(),
                    epochs_done,
                    states.iter().map(ShardState::snapshot).collect(),
                    &hub,
                    &triage,
                    states
                        .iter()
                        .filter_map(ShardState::trace_store_bytes)
                        .collect(),
                );
                if self.write_checkpoint(&snap, path, iter) {
                    checkpoints_written += 1;
                    if let Some(hook) = &self.on_checkpoint {
                        hook(checkpoints_written);
                    }
                    if self.halt_after == Some(checkpoints_written) {
                        // Simulated interrupt: return the partial
                        // merge (tests discard it and resume from the
                        // snapshot just written).
                        return self.merge(states, triage);
                    }
                }
            }
        }
        self.merge(states, triage)
    }

    /// Write one checkpoint with the fault plan applied: injected (or
    /// real) write failures retry with deterministic linear backoff up
    /// to [`MAX_WRITE_ATTEMPTS`]; exhausting the attempts skips the
    /// boundary — the previous-good snapshot stays in place and the
    /// campaign continues. Post-write damage faults (torn write,
    /// bitrot) are applied to the installed file so a later resume
    /// exercises the previous-good fallback. Returns whether a
    /// snapshot was installed.
    fn write_checkpoint(&self, snap: &CampaignSnapshot, path: &Path, iter: u64) -> bool {
        let injected_failures = self.faults.write_fail_attempts(iter);
        for attempt in 1..=MAX_WRITE_ATTEMPTS {
            let failed = attempt <= injected_failures || snap.save(path).is_err();
            if !failed {
                if let Some(damage) = self.faults.post_write_damage(iter) {
                    apply_damage(path, damage);
                }
                return true;
            }
            // Deterministic linear backoff; wall-clock only, never
            // part of the campaign's result.
            std::thread::sleep(std::time::Duration::from_millis(u64::from(attempt)));
        }
        false
    }

    /// Merge finished (or halted) shard states in shard-id order
    /// (deterministic; the merge is also commutative, so any order
    /// would produce the same set). The flight recorder's stores come
    /// back alongside, also in shard-id order.
    fn merge(
        &self,
        mut states: Vec<ShardState>,
        triage: TriageReport,
    ) -> (CampaignResult, Vec<TraceStore>) {
        let stores: Vec<TraceStore> = states
            .iter_mut()
            .filter_map(ShardState::take_store)
            .collect();
        let mut coverage = CoverageMap::new();
        let mut crashes: CrashTally = CrashTally::new();
        let mut corpus_size = 0usize;
        let mut fuel_exhausted = 0u64;
        for r in states.into_iter().map(ShardState::finish) {
            coverage.merge(&r.coverage);
            for (title, (count, cve)) in r.crashes {
                let e = crashes.entry(title).or_insert((0, cve));
                e.0 += count;
            }
            corpus_size += r.corpus_size;
            fuel_exhausted += r.fuel_exhausted;
        }
        (
            CampaignResult {
                coverage,
                crashes,
                execs: self.config.execs,
                corpus_size,
                triage,
                fuel_exhausted,
            },
            stores,
        )
    }

    /// Advance every shard by up to `epoch` executions, distributing
    /// shards over the worker threads. A barrier: returns only when
    /// all shards reached the boundary. Each shard is advanced by
    /// exactly one worker, so the per-shard state evolution is
    /// schedule-independent.
    fn run_chunk(&self, states: &mut [ShardState], threads: usize, epoch: u64) {
        if threads <= 1 {
            for state in states.iter_mut() {
                state.run_epoch(self.kernel, epoch);
            }
            return;
        }
        let slots: Vec<Mutex<&mut ShardState>> = states.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    slots[i]
                        .lock()
                        .expect("shard slot poisoned")
                        .run_epoch(self.kernel, epoch);
                });
            }
        });
    }
}

/// Damage an installed snapshot in place (fault injection only):
/// `None` truncates the file to half its length (a torn write),
/// `Some(byte)` flips one payload byte (bitrot), wrapped past the
/// 20-byte header so the checksum — not the magic/version check —
/// is what trips. Deliberately a direct, non-atomic rewrite: it
/// simulates damage that happens *after* the atomic install.
fn apply_damage(path: &Path, damage: Option<usize>) {
    let Ok(mut bytes) = std::fs::read(path) else {
        return;
    };
    match damage {
        None => bytes.truncate(bytes.len() / 2),
        Some(byte) => {
            const HEADER: usize = 20;
            if bytes.len() > HEADER {
                let idx = HEADER + byte % (bytes.len() - HEADER);
                bytes[idx] ^= 0xFF;
            }
        }
    }
    let _ = std::fs::write(path, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use kgpt_csrc::KernelCorpus;

    fn dm_setup() -> (VKernel, Vec<SpecFile>, ConstDb) {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        (
            VKernel::boot(vec![kgpt_csrc::flagship::dm()]),
            suite,
            kc.consts().clone(),
        )
    }

    fn cfg(execs: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            execs,
            seed,
            ..CampaignConfig::default()
        }
    }

    fn hub_cfg(execs: u64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            hub_epoch: 250,
            hub_top_k: 4,
            ..cfg(execs, seed)
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_sequential_campaign() {
        let (kernel, suite, consts) = dm_setup();
        let sequential = Campaign::new(&kernel, &suite, &consts, cfg(1500, 4)).run();
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1500, 4))
            .with_shards(1)
            .run();
        assert_eq!(sequential.coverage, sharded.coverage);
        assert_eq!(sequential.crashes, sharded.crashes);
        assert_eq!(sequential.corpus_size, sharded.corpus_size);
        // Both run one epoch with one triage drain, so the reports —
        // reproducers, minimization, epochs — are bit-identical too.
        assert_eq!(sequential.triage, sharded.triage);
    }

    #[test]
    fn one_shard_with_exchange_on_still_matches_sequential() {
        // On one shard every exchange is a no-op (a shard never
        // imports its own seeds), so the epoch-chunked hub run must
        // be bit-identical to the straight sequential loop.
        let (kernel, suite, consts) = dm_setup();
        let sequential = Campaign::new(&kernel, &suite, &consts, cfg(1500, 4)).run();
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(1500, 4))
            .with_shards(1)
            .run();
        assert_eq!(sequential.coverage, sharded.coverage);
        assert_eq!(sequential.crashes, sharded.crashes);
        assert_eq!(sequential.corpus_size, sharded.corpus_size);
    }

    #[test]
    fn thread_count_never_changes_the_result() {
        let (kernel, suite, consts) = dm_setup();
        let run = |threads: usize| {
            ShardedCampaign::new(&kernel, &suite, &consts, cfg(2000, 11))
                .with_shards(8)
                .with_threads(threads)
                .run()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            let r = run(threads);
            assert_eq!(base.coverage, r.coverage, "threads={threads}");
            assert_eq!(base.crashes, r.crashes, "threads={threads}");
            assert_eq!(base.corpus_size, r.corpus_size, "threads={threads}");
            assert_eq!(base.triage, r.triage, "threads={threads}");
        }
    }

    #[test]
    fn thread_count_never_changes_the_result_with_exchange_on() {
        // The hub exchanges seeds at epoch boundaries (8 exchanges
        // here); publish/import order is shard-id order on the
        // driving thread, so any thread count must produce the same
        // result bit for bit.
        let (kernel, suite, consts) = dm_setup();
        let run = |threads: usize| {
            ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(2000, 11))
                .with_shards(8)
                .with_threads(threads)
                .run()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            let r = run(threads);
            assert_eq!(base.coverage, r.coverage, "threads={threads}");
            assert_eq!(base.crashes, r.crashes, "threads={threads}");
            assert_eq!(base.corpus_size, r.corpus_size, "threads={threads}");
            assert_eq!(base.triage, r.triage, "threads={threads}");
        }
    }

    #[test]
    fn triage_dedup_counts_match_the_crash_tally() {
        // Signatures refine titles: the per-signature dedup counts
        // must sum to the same total as the title tally, and every
        // entry's first observation carries a consistent title.
        let (kernel, suite, consts) = dm_setup();
        let r = ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(4000, 1)).run();
        assert!(!r.triage.is_empty());
        let tally_total: u64 = r.crashes.values().map(|(n, _)| n).sum();
        let triage_total: u64 = r.triage.entries().map(|e| e.count).sum();
        assert_eq!(tally_total, triage_total);
        for e in r.triage.entries() {
            assert!(
                r.crashes.contains_key(&e.title),
                "unknown title {}",
                e.title
            );
            assert!(e.count > 0);
            assert!(!e.minimized.is_empty());
            assert!(e.minimized.len() <= e.raw.len());
        }
    }

    #[test]
    fn exchange_never_loses_coverage_and_spreads_seeds() {
        // The executed-coverage union can only be helped by seeing
        // other shards' seeds earlier; at minimum nothing is lost,
        // and shard corpora grow by imported entries.
        let (kernel, suite, consts) = dm_setup();
        let off = ShardedCampaign::new(&kernel, &suite, &consts, cfg(4000, 1)).run();
        let on = ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(4000, 1)).run();
        assert!(
            on.blocks() >= off.blocks(),
            "exchange on {} vs off {}",
            on.blocks(),
            off.blocks()
        );
        assert!(
            on.corpus_size > off.corpus_size,
            "no seeds were imported (on {} vs off {})",
            on.corpus_size,
            off.corpus_size
        );
    }

    #[test]
    fn merged_result_equals_manual_shard_union() {
        let (kernel, suite, consts) = dm_setup();
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, cfg(2100, 5))
            .with_shards(4)
            .run();
        // Reconstruct by running each shard as its own sequential
        // campaign and merging by hand: 2100 = 525 * 4.
        let mut coverage = CoverageMap::new();
        let mut crashes = CrashTally::new();
        for i in 0..4u64 {
            let r = Campaign::new(&kernel, &suite, &consts, cfg(525, 5 + i)).run();
            coverage.merge(&r.coverage);
            for (title, (count, cve)) in r.crashes {
                let e = crashes.entry(title).or_insert((0, cve));
                e.0 += count;
            }
        }
        assert_eq!(sharded.coverage, coverage);
        assert_eq!(sharded.crashes, crashes);
        assert_eq!(sharded.execs, 2100);
    }

    #[test]
    fn sharded_campaign_finds_dm_coverage_and_crashes() {
        let (kernel, suite, consts) = dm_setup();
        let r = ShardedCampaign::new(&kernel, &suite, &consts, cfg(4000, 1)).run();
        assert!(r.blocks() > 50, "blocks={}", r.blocks());
        assert!(r.unique_crashes() >= 1, "crashes={:?}", r.crashes);
        assert!(r.corpus_size > 3);
    }

    #[test]
    fn sharded_and_sequential_campaigns_share_the_cached_db() {
        let (kernel, suite, consts) = dm_setup();
        let sequential = Campaign::new(&kernel, &suite, &consts, cfg(10, 0));
        let sharded = ShardedCampaign::new(&kernel, &suite, &consts, cfg(10, 0));
        assert!(std::sync::Arc::ptr_eq(
            &sequential.db_shared(),
            &sharded.db_shared()
        ));
    }

    #[test]
    fn seed_near_u64_max_wraps_instead_of_overflowing() {
        let (kernel, suite, consts) = dm_setup();
        let r = ShardedCampaign::new(&kernel, &suite, &consts, cfg(400, u64::MAX - 2))
            .with_shards(8)
            .run();
        assert_eq!(r.execs, 400);
        assert!(r.blocks() > 0);
    }

    #[test]
    fn traces_are_bit_identical_across_thread_counts_and_replay() {
        // The flight recorder inherits the determinism contract: the
        // retained stores — ring contents, pinned crash traces, every
        // encoded stream byte — are a pure function of (config,
        // shards), and each trace replays bit-identically.
        let (kernel, suite, consts) = dm_setup();
        let run = |threads: usize| {
            ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(2000, 11))
                .with_shards(8)
                .with_threads(threads)
                .run_traced()
        };
        let (base_result, base_stores) = run(1);
        assert_eq!(base_stores.len(), 8);
        for threads in [2, 4, 8] {
            let (r, stores) = run(threads);
            assert_eq!(base_result.coverage, r.coverage, "threads={threads}");
            assert_eq!(base_stores, stores, "threads={threads}");
        }
        let campaign = ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(2000, 11));
        let spec_fp = SpecCache::fingerprint(campaign.db().files());
        let cfg_table = flight::cfg_successors(&kernel);
        let mut scratch = crate::exec::ExecScratch::from_lowered(campaign.lowered_shared());
        let mut replayed = 0usize;
        for store in &base_stores {
            for t in store.iter() {
                let out = flight::replay_trace(&kernel, &mut scratch, &cfg_table, t, spec_fp)
                    .expect("well-formed trace");
                assert!(out.identical, "shard {} exec {} diverged", t.shard, t.exec);
                replayed += 1;
            }
        }
        assert!(replayed > 0, "no traces retained");
    }

    #[test]
    fn traces_survive_checkpoint_and_resume() {
        // Interrupt-plus-resume must also be invisible to the flight
        // recorder: the resumed campaign's stores equal the
        // uninterrupted run's bit for bit (the checkpoint carries the
        // retained traces of the boundary).
        let (kernel, suite, consts) = dm_setup();
        let dir = std::env::temp_dir().join(format!("kgpt_trace_resume_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.ckpt");
        let campaign = |threads: usize| {
            ShardedCampaign::new(&kernel, &suite, &consts, hub_cfg(2000, 7))
                .with_shards(4)
                .with_threads(threads)
        };
        let (full_result, full_stores) = campaign(1).run_traced();
        let _ = campaign(1)
            .with_checkpoint(&path)
            .with_halt_after(2)
            .run_traced();
        let (resumed_result, resumed_stores) = campaign(2)
            .with_checkpoint(&path)
            .resume_traced(&path)
            .unwrap();
        assert_eq!(full_result.coverage, resumed_result.coverage);
        assert_eq!(full_result.triage, resumed_result.triage);
        assert_eq!(full_stores, resumed_stores);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracing_never_changes_the_campaign_result() {
        // trace_ring is a pure observability knob for the merged
        // result: coverage, crashes, corpus and triage are identical
        // with the recorder on, off, or at a different capacity.
        let (kernel, suite, consts) = dm_setup();
        let run = |ring: usize| {
            let config = CampaignConfig {
                trace_ring: ring,
                ..hub_cfg(2000, 3)
            };
            ShardedCampaign::new(&kernel, &suite, &consts, config)
                .with_shards(4)
                .run()
        };
        let on = run(32);
        let off = run(0);
        let big = run(512);
        for other in [&off, &big] {
            assert_eq!(on.coverage, other.coverage);
            assert_eq!(on.crashes, other.crashes);
            assert_eq!(on.corpus_size, other.corpus_size);
            assert_eq!(on.triage, other.triage);
        }
    }

    #[test]
    fn uneven_exec_budgets_split_without_loss() {
        let (kernel, suite, consts) = dm_setup();
        let c = ShardedCampaign::new(&kernel, &suite, &consts, cfg(1003, 0)).with_shards(8);
        let total: u64 = (0..8).map(|i| c.shard_execs(i)).sum();
        assert_eq!(total, 1003);
        assert!((0..8).all(|i| [125, 126].contains(&c.shard_execs(i))));
    }
}
