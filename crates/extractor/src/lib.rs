//! # kgpt-extractor
//!
//! The *source code extractor* of the KernelGPT pipeline (paper §4):
//!
//! 1. **Operation-handler extraction** — simple, general pattern
//!    matching over the parsed corpus to find driver
//!    (`struct file_operations` with an `unlocked_ioctl`/`ioctl`
//!    initializer) and socket (`struct proto_ops` /
//!    `struct net_proto_family`) operation handlers, together with
//!    their *usage sites* (miscdevice registrations, `device_create`
//!    init functions, family registrations) that the analysis prompts
//!    embed.
//!
//! 2. **Kernel definition extraction** — the `ExtractCode(id)`
//!    primitive of Algorithm 1: fetch the raw source text of any
//!    function, struct, macro, enum or global by name.

use kgpt_csrc::ast::{CItemKind, Expr};
use kgpt_csrc::Corpus;
use serde::{Deserialize, Serialize};

/// Kind of operation handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandlerKind {
    /// A device driver (`file_operations`).
    Driver,
    /// A socket family (`proto_ops`).
    Socket,
}

/// One discovered operation handler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpHandler {
    /// Driver or socket.
    pub kind: HandlerKind,
    /// Name of the ops variable (`_dm_fops`, `rds_proto_ops`).
    pub ops_var: String,
    /// Source file the handler lives in.
    pub file: String,
    /// Function registered as `unlocked_ioctl`/`ioctl` (drivers).
    pub ioctl_fn: Option<String>,
    /// Function registered as `setsockopt` (sockets).
    pub setsockopt_fn: Option<String>,
    /// Function registered as `open` (drivers).
    pub open_fn: Option<String>,
    /// Raw texts of items that *use* the ops variable (registration
    /// sites); these carry the device-name / family evidence.
    pub usage: Vec<String>,
}

impl OpHandler {
    /// The raw text of the ops variable definition itself.
    #[must_use]
    pub fn definition<'a>(&self, corpus: &'a Corpus) -> Option<&'a str> {
        corpus.source_of(&self.ops_var)
    }
}

/// Find every operation handler in the corpus.
#[must_use]
pub fn find_handlers(corpus: &Corpus) -> Vec<OpHandler> {
    let mut out = Vec::new();
    for file in corpus.files() {
        for item in &file.items {
            let CItemKind::Var(v) = &item.kind else {
                continue;
            };
            let Some(init) = &v.init else { continue };
            match v.ty.base.as_str() {
                "struct file_operations" => {
                    let ioctl_fn = init
                        .init_field("unlocked_ioctl")
                        .or_else(|| init.init_field("ioctl"))
                        .and_then(Expr::as_ident)
                        .map(str::to_string);
                    if ioctl_fn.is_none() {
                        continue; // not an ioctl-capable handler
                    }
                    out.push(OpHandler {
                        kind: HandlerKind::Driver,
                        ops_var: v.name.clone(),
                        file: file.name.clone(),
                        ioctl_fn,
                        setsockopt_fn: None,
                        open_fn: init
                            .init_field("open")
                            .and_then(Expr::as_ident)
                            .map(str::to_string),
                        usage: corpus
                            .usages_of(&v.name)
                            .into_iter()
                            .map(str::to_string)
                            .collect(),
                    });
                }
                "struct proto_ops" => {
                    let mut usage: Vec<String> = corpus
                        .usages_of(&v.name)
                        .into_iter()
                        .map(str::to_string)
                        .collect();
                    // Socket registration evidence: the family ops var
                    // in the same file and its create function.
                    for sib in &file.items {
                        if let CItemKind::Var(fv) = &sib.kind {
                            if fv.ty.base == "struct net_proto_family" {
                                if !usage.contains(&sib.text) {
                                    usage.push(sib.text.clone());
                                }
                                if let Some(create) = fv
                                    .init
                                    .as_ref()
                                    .and_then(|i| i.init_field("create"))
                                    .and_then(Expr::as_ident)
                                {
                                    if let Some(t) = corpus.source_of(create) {
                                        let t = t.to_string();
                                        if !usage.contains(&t) {
                                            usage.push(t);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    out.push(OpHandler {
                        kind: HandlerKind::Socket,
                        ops_var: v.name.clone(),
                        file: file.name.clone(),
                        ioctl_fn: init
                            .init_field("ioctl")
                            .and_then(Expr::as_ident)
                            .map(str::to_string),
                        setsockopt_fn: init
                            .init_field("setsockopt")
                            .and_then(Expr::as_ident)
                            .map(str::to_string),
                        open_fn: None,
                        usage,
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// `ExtractCode(id)` — raw definition text for any named entity.
#[must_use]
pub fn extract_code<'a>(corpus: &'a Corpus, id: &str) -> Option<&'a str> {
    corpus.source_of(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_csrc::KernelCorpus;

    #[test]
    fn finds_all_flagship_handlers() {
        let kc = KernelCorpus::flagship_only();
        let handlers = find_handlers(kc.corpus());
        // One handler per blueprint (38 drivers + 10 sockets).
        assert_eq!(handlers.len(), kc.blueprints().len());
        let drivers = handlers
            .iter()
            .filter(|h| h.kind == HandlerKind::Driver)
            .count();
        assert_eq!(drivers, 38);
    }

    #[test]
    fn dm_handler_shape() {
        let kc = KernelCorpus::flagship_only();
        let handlers = find_handlers(kc.corpus());
        let dm = handlers
            .iter()
            .find(|h| h.ops_var == "_dm_fops")
            .expect("dm fops");
        assert_eq!(dm.kind, HandlerKind::Driver);
        assert_eq!(dm.ioctl_fn.as_deref(), Some("dm_ctl_ioctl"));
        assert_eq!(dm.open_fn.as_deref(), Some("dm_open"));
        // Usage includes the miscdevice registration with the nodename.
        assert!(dm.usage.iter().any(|u| u.contains("nodename")));
    }

    #[test]
    fn socket_handler_shape() {
        let kc = KernelCorpus::flagship_only();
        let handlers = find_handlers(kc.corpus());
        let rds = handlers
            .iter()
            .find(|h| h.ops_var == "rds_proto_ops")
            .expect("rds proto_ops");
        assert_eq!(rds.kind, HandlerKind::Socket);
        assert_eq!(rds.setsockopt_fn.as_deref(), Some("rds_setsockopt"));
        // Usage includes the create function hooking sock->ops.
        assert!(rds.usage.iter().any(|u| u.contains("rds_create")));
    }

    #[test]
    fn extract_code_reaches_all_namespaces() {
        let kc = KernelCorpus::flagship_only();
        let c = kc.corpus();
        assert!(extract_code(c, "dm_ctl_ioctl").is_some());
        assert!(extract_code(c, "dm_ioctl").is_some()); // struct
        assert!(extract_code(c, "DM_DEV_CREATE").is_some()); // macro
        assert!(extract_code(c, "no_such_symbol").is_none());
    }

    #[test]
    fn definition_text_available() {
        let kc = KernelCorpus::flagship_only();
        let handlers = find_handlers(kc.corpus());
        for h in handlers {
            let def = h.definition(kc.corpus()).expect("definition text");
            assert!(def.contains(&h.ops_var));
        }
    }
}
