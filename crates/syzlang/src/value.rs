//! Runtime values for syzlang types and the byte-level encoder.
//!
//! The fuzzer materialises each syscall argument as a [`Value`] tree and
//! the [`MemBuilder`] lowers it to the register value plus a set of
//! memory segments (address → bytes) handed to the virtual kernel.
//! `len[...]`/`bytesize[...]` fields are filled automatically from their
//! sibling values, mirroring Syzkaller's executor.

use crate::ast::{ArrayLen, IntBits, StructDef, Type};
use crate::consts::ConstDb;
use crate::db::SpecDb;
use crate::layout::{field_offsets, struct_layout, type_layout, LayoutError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base virtual address for fuzzer-allocated argument memory.
pub const ARG_BASE_ADDR: u64 = 0x1000_0000;

/// Reference to a resource produced earlier in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResRef {
    /// Index of the producing call within the program, if any.
    pub producer: Option<usize>,
    /// Value to use when no producer exists (or it failed), e.g. `-1`.
    pub fallback: u64,
}

impl ResRef {
    /// A dangling reference with the conventional `-1` fallback.
    #[must_use]
    pub fn dangling() -> ResRef {
        ResRef {
            producer: None,
            fallback: u64::MAX,
        }
    }
}

/// A runtime value conforming to some [`Type`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// Scalar integer (ints, consts, flags, proc values; len placeholders).
    Int(u64),
    /// Resource reference resolved at execution time.
    Res(ResRef),
    /// Raw bytes (strings, opaque buffers).
    Bytes(Vec<u8>),
    /// Struct fields or array elements, in order.
    Group(Vec<Value>),
    /// One arm of a union.
    Union {
        /// Index of the active arm.
        arm: usize,
        /// Value of that arm.
        value: Box<Value>,
    },
    /// Pointer; `None` encodes NULL.
    Ptr {
        /// Pointee value, if non-null.
        pointee: Option<Box<Value>>,
    },
}

impl Value {
    /// Shorthand for a non-null pointer value.
    #[must_use]
    pub fn ptr_to(v: Value) -> Value {
        Value::Ptr {
            pointee: Some(Box::new(v)),
        }
    }

    /// Iterate over all [`ResRef`]s contained in this value tree.
    pub fn res_refs(&self) -> Vec<&ResRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a ResRef>) {
        match self {
            Value::Res(r) => out.push(r),
            Value::Group(vs) => vs.iter().for_each(|v| v.collect_refs(out)),
            Value::Union { value, .. } => value.collect_refs(out),
            Value::Ptr {
                pointee: Some(p), ..
            } => p.collect_refs(out),
            _ => {}
        }
    }
}

impl Default for Value {
    fn default() -> Value {
        Value::Int(0)
    }
}

/// Error produced by the encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Value shape does not match the type.
    Mismatch {
        /// Expected type, printed.
        expected: String,
        /// Found value kind.
        found: &'static str,
    },
    /// A symbolic constant could not be resolved.
    UnresolvedConst(String),
    /// Layout failure (unknown type, recursion).
    Layout(LayoutError),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Mismatch { expected, found } => {
                write!(f, "value kind `{found}` does not fit type `{expected}`")
            }
            EncodeError::UnresolvedConst(n) => write!(f, "unresolved constant `{n}`"),
            EncodeError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<LayoutError> for EncodeError {
    fn from(e: LayoutError) -> EncodeError {
        EncodeError::Layout(e)
    }
}

fn mismatch(ty: &Type, found: &'static str) -> EncodeError {
    EncodeError::Mismatch {
        expected: crate::printer::print_type(ty),
        found,
    }
}

pub(crate) fn value_kind(v: &Value) -> &'static str {
    match v {
        Value::Int(_) => "int",
        Value::Res(_) => "resource",
        Value::Bytes(_) => "bytes",
        Value::Group(_) => "group",
        Value::Union { .. } => "union",
        Value::Ptr { .. } => "ptr",
    }
}

/// Builds the memory image for one syscall's arguments by walking the
/// type AST.
///
/// This is the *reference* encoder: the fuzzer's hot loop runs the
/// arena-walking [`crate::lowered::LoweredEncoder`] instead, which
/// mirrors this implementation decision for decision (differential
/// tests pin the two byte-identical). Keep the two in sync.
///
/// Designed for reuse across calls: [`MemBuilder::reset`] recycles
/// every finished segment's byte buffer into an internal pool that
/// the next encoding pass draws from, so a fuzzer's steady-state
/// encode loop stops allocating once buffers reach their high-water
/// mark. Segment addresses are handed out in strictly ascending
/// order, which consumers exploit for binary-search lookup.
#[derive(Debug)]
pub struct MemBuilder<'a> {
    db: &'a SpecDb,
    consts: &'a ConstDb,
    next_addr: u64,
    segments: Vec<(u64, Vec<u8>)>,
    /// Cleared byte buffers recycled from previous encodings.
    pool: Vec<Vec<u8>>,
}

impl<'a> MemBuilder<'a> {
    /// Create a builder allocating from [`ARG_BASE_ADDR`].
    #[must_use]
    pub fn new(db: &'a SpecDb, consts: &'a ConstDb) -> MemBuilder<'a> {
        MemBuilder {
            db,
            consts,
            next_addr: ARG_BASE_ADDR,
            segments: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Finished memory segments `(address, bytes)`.
    #[must_use]
    pub fn into_segments(self) -> Vec<(u64, Vec<u8>)> {
        self.segments
    }

    /// Finished memory segments, borrowed (ascending addresses).
    #[must_use]
    pub fn segments(&self) -> &[(u64, Vec<u8>)] {
        &self.segments
    }

    /// Prepare for encoding the next call: restart the address space
    /// and recycle current segment buffers into the pool.
    pub fn reset(&mut self) {
        self.next_addr = ARG_BASE_ADDR;
        for (_, mut bytes) in self.segments.drain(..) {
            bytes.clear();
            self.pool.push(bytes);
        }
    }

    /// Swap the finished segment vector with `other` (used by the
    /// executor to move segments into a `MemMap` and, next call,
    /// route the retired ones back through [`MemBuilder::reset`]).
    pub fn swap_segments(&mut self, other: &mut Vec<(u64, Vec<u8>)>) {
        std::mem::swap(&mut self.segments, other);
    }

    /// Return retired segments to the buffer pool (counterpart of
    /// [`MemBuilder::swap_segments`] for vectors that never came back
    /// through `self.segments`).
    pub fn recycle(&mut self, retired: &mut Vec<(u64, Vec<u8>)>) {
        for (_, mut bytes) in retired.drain(..) {
            bytes.clear();
            self.pool.push(bytes);
        }
    }

    fn pooled_buf(&mut self) -> Vec<u8> {
        self.pool.pop().unwrap_or_default()
    }

    /// Encode one top-level syscall argument, returning the register
    /// value (either the scalar itself or the address of an allocated
    /// buffer).
    ///
    /// `resolve` maps resource references to their runtime values.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if the value does not fit the type or a
    /// symbolic constant is unresolved.
    pub fn encode_arg(
        &mut self,
        ty: &Type,
        val: &Value,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        match ty {
            Type::Ptr { elem, .. } => match val {
                Value::Ptr { pointee: None } => Ok(0),
                Value::Ptr {
                    pointee: Some(inner),
                } => self.alloc_pointee(elem, inner, resolve),
                other => Err(mismatch(ty, value_kind(other))),
            },
            _ => self.scalar(ty, val, resolve),
        }
    }

    fn alloc_pointee(
        &mut self,
        ty: &Type,
        val: &Value,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        let mut buf = self.pooled_buf();
        self.encode_into(ty, val, &mut buf, resolve)?;
        let layout = type_layout(ty, self.db)?;
        if (buf.len() as u64) < layout.size {
            buf.resize(layout.size as usize, 0);
        }
        let addr = self.next_addr;
        // Keep allocations 16-byte aligned and non-adjacent so that
        // out-of-bounds reads in the kernel are detectable.
        let advance = ((buf.len() as u64).max(1) + 0x3f) & !0xf;
        self.next_addr += advance + 16;
        self.segments.push((addr, buf));
        Ok(addr)
    }

    fn scalar(
        &mut self,
        ty: &Type,
        val: &Value,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        let bits = scalar_bits(ty, self.db).ok_or_else(|| mismatch(ty, value_kind(val)))?;
        let raw = match (ty, val) {
            (Type::Const { value, .. }, _) => self
                .consts
                .resolve(value)
                .ok_or_else(|| EncodeError::UnresolvedConst(value.to_string()))?,
            (_, Value::Int(n)) => *n,
            (_, Value::Res(r)) => resolve(r),
            (_, other) => return Err(mismatch(ty, value_kind(other))),
        };
        Ok(bits.truncate(raw))
    }

    /// Encode a value into `buf` at its natural position (append).
    fn encode_into(
        &mut self,
        ty: &Type,
        val: &Value,
        buf: &mut Vec<u8>,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<(), EncodeError> {
        match ty {
            Type::Int { bits, .. }
            | Type::Const { bits, .. }
            | Type::Flags { bits, .. }
            | Type::Len { bits, .. }
            | Type::Bytesize { bits, .. }
            | Type::Proc { bits, .. } => {
                let v = self.scalar(ty, val, resolve)?;
                push_int(buf, v, *bits);
                Ok(())
            }
            Type::Resource(name) => {
                let bits = self
                    .db
                    .resource_bits(name)
                    .ok_or_else(|| EncodeError::Layout(LayoutError::UnknownType(name.clone())))?;
                let v = match val {
                    Value::Int(n) => *n,
                    Value::Res(r) => resolve(r),
                    other => return Err(mismatch(ty, value_kind(other))),
                };
                push_int(buf, bits.truncate(v), bits);
                Ok(())
            }
            Type::Void => Ok(()),
            Type::StringLit { .. } => match val {
                Value::Bytes(b) => {
                    buf.extend_from_slice(b);
                    buf.push(0);
                    Ok(())
                }
                other => Err(mismatch(ty, value_kind(other))),
            },
            Type::Ptr { elem, .. } => {
                let addr = match val {
                    Value::Ptr { pointee: None } => 0,
                    Value::Ptr {
                        pointee: Some(inner),
                    } => self.alloc_pointee(elem, inner, resolve)?,
                    other => return Err(mismatch(ty, value_kind(other))),
                };
                push_int(buf, addr, IntBits::I64);
                Ok(())
            }
            Type::Array { elem, len } => {
                let values: Vec<&Value> = match val {
                    Value::Group(vs) => vs.iter().collect(),
                    Value::Bytes(bytes) => {
                        // Byte buffers encode directly when the element is int8.
                        if matches!(
                            **elem,
                            Type::Int {
                                bits: IntBits::I8,
                                ..
                            }
                        ) {
                            let mut data = bytes.clone();
                            if let ArrayLen::Fixed(n) = len {
                                data.resize(*n as usize, 0);
                            }
                            buf.extend_from_slice(&data);
                            return Ok(());
                        }
                        return Err(mismatch(ty, "bytes"));
                    }
                    other => return Err(mismatch(ty, value_kind(other))),
                };
                let elem_layout = type_layout(elem, self.db)?;
                let mut count = values.len() as u64;
                if let ArrayLen::Fixed(n) = len {
                    count = *n;
                }
                for i in 0..count {
                    match values.get(i as usize) {
                        Some(v) => self.encode_into(elem, v, buf, resolve)?,
                        None => buf.extend(std::iter::repeat_n(0u8, elem_layout.size as usize)),
                    }
                }
                Ok(())
            }
            Type::Named(name) => {
                let def = self
                    .db
                    .struct_def(name)
                    .ok_or_else(|| EncodeError::Layout(LayoutError::UnknownType(name.clone())))?
                    .clone();
                if def.is_union {
                    self.encode_union(&def, ty, val, buf, resolve)
                } else {
                    self.encode_struct(&def, ty, val, buf, resolve)
                }
            }
        }
    }

    fn encode_union(
        &mut self,
        def: &StructDef,
        ty: &Type,
        val: &Value,
        buf: &mut Vec<u8>,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<(), EncodeError> {
        let (arm, inner) = match val {
            Value::Union { arm, value } => (*arm, value.as_ref()),
            other => return Err(mismatch(ty, value_kind(other))),
        };
        let field = def
            .fields
            .get(arm)
            .ok_or_else(|| mismatch(ty, "union (arm out of range)"))?;
        let start = buf.len();
        self.encode_into(&field.ty, inner, buf, resolve)?;
        let total = struct_layout(def, self.db)?.size as usize;
        if buf.len() - start < total {
            buf.resize(start + total, 0);
        }
        Ok(())
    }

    fn encode_struct(
        &mut self,
        def: &StructDef,
        ty: &Type,
        val: &Value,
        buf: &mut Vec<u8>,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<(), EncodeError> {
        let values = match val {
            Value::Group(vs) => vs,
            other => return Err(mismatch(ty, value_kind(other))),
        };
        if values.len() != def.fields.len() {
            return Err(mismatch(ty, "group (wrong field count)"));
        }
        let (offsets, total) = field_offsets(def, self.db)?;
        let start = buf.len();
        for (i, field) in def.fields.iter().enumerate() {
            // Align to this field's offset (dynamic earlier fields may
            // have shifted us; offsets are a lower bound then).
            let want = start + offsets[i] as usize;
            if buf.len() < want {
                buf.resize(want, 0);
            }
            let fv = &values[i];
            // Auto-fill len/bytesize from the sibling target.
            match &field.ty {
                Type::Len { target, bits } => {
                    let n = sibling_count(def, values, target, self.db);
                    push_int(buf, bits.truncate(n), *bits);
                }
                Type::Bytesize { target, bits } => {
                    let n = self.sibling_bytesize(def, values, target, resolve)?;
                    push_int(buf, bits.truncate(n), *bits);
                }
                other_ty => self.encode_into(other_ty, fv, buf, resolve)?,
            }
        }
        if buf.len() - start < total as usize {
            buf.resize(start + total as usize, 0);
        }
        Ok(())
    }

    fn sibling_bytesize(
        &mut self,
        def: &StructDef,
        values: &[Value],
        target: &str,
        resolve: &dyn Fn(&ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        let Some(idx) = def.fields.iter().position(|f| f.name == target) else {
            return Ok(0);
        };
        let mut scratch = self.pooled_buf();
        let tty = deref_for_len(&def.fields[idx].ty);
        let tval = deref_value_for_len(&values[idx]);
        let n = match (tty, tval) {
            (Some(ty), Some(v)) => {
                self.encode_into(ty, v, &mut scratch, resolve)?;
                scratch.len() as u64
            }
            _ => 0,
        };
        scratch.clear();
        self.pool.push(scratch);
        Ok(n)
    }
}

/// Element count used for `len[target]`: bytes → byte length, groups →
/// element count, pointers → their pointee's count, NULL/other → 0.
fn sibling_count(def: &StructDef, values: &[Value], target: &str, _db: &SpecDb) -> u64 {
    let Some(idx) = def.fields.iter().position(|f| f.name == target) else {
        return 0;
    };
    match deref_value_for_len(&values[idx]) {
        Some(Value::Bytes(b)) => b.len() as u64,
        Some(Value::Group(g)) => g.len() as u64,
        Some(_) => 1,
        None => 0,
    }
}

pub(crate) fn deref_for_len(ty: &Type) -> Option<&Type> {
    match ty {
        Type::Ptr { elem, .. } => Some(elem),
        other => Some(other),
    }
}

pub(crate) fn deref_value_for_len(v: &Value) -> Option<&Value> {
    match v {
        Value::Ptr { pointee } => pointee.as_deref(),
        other => Some(other),
    }
}

fn scalar_bits(ty: &Type, db: &SpecDb) -> Option<IntBits> {
    match ty {
        Type::Int { bits, .. }
        | Type::Const { bits, .. }
        | Type::Flags { bits, .. }
        | Type::Len { bits, .. }
        | Type::Bytesize { bits, .. }
        | Type::Proc { bits, .. } => Some(*bits),
        Type::Resource(name) => db.resource_bits(name),
        _ => None,
    }
}

pub(crate) fn push_int(buf: &mut Vec<u8>, v: u64, bits: IntBits) {
    buf.extend_from_slice(&v.to_le_bytes()[..bits.size() as usize]);
}

/// Construct the minimal "zero" value conforming to a type: zero
/// integers, first string candidate, empty/min arrays, first union arm,
/// non-null pointers to zero pointees.
///
/// # Errors
///
/// Returns [`LayoutError`] for unknown named types.
pub fn zero_value(ty: &Type, db: &SpecDb) -> Result<Value, LayoutError> {
    Ok(match ty {
        Type::Int { range, .. } => Value::Int(range.map_or(0, |(lo, _)| lo)),
        Type::Const { .. } => Value::Int(0), // encoder substitutes the const
        Type::Flags { .. } | Type::Len { .. } | Type::Bytesize { .. } => Value::Int(0),
        Type::Proc { start, .. } => Value::Int(*start),
        Type::Resource(_) => Value::Res(ResRef::dangling()),
        Type::Void => Value::Group(Vec::new()),
        Type::StringLit { values } => Value::Bytes(
            values
                .first()
                .map(|s| s.as_bytes().to_vec())
                .unwrap_or_default(),
        ),
        Type::Ptr { elem, .. } => Value::ptr_to(zero_value(elem, db)?),
        Type::Array { elem, len } => {
            let n = match len {
                ArrayLen::Fixed(n) => *n,
                ArrayLen::Range(lo, _) => *lo,
                ArrayLen::Unsized => 0,
            };
            let mut vs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                vs.push(zero_value(elem, db)?);
            }
            Value::Group(vs)
        }
        Type::Named(name) => {
            let def = db
                .struct_def(name)
                .ok_or_else(|| LayoutError::UnknownType(name.clone()))?
                .clone();
            if def.is_union {
                let first = def
                    .fields
                    .first()
                    .map(|f| zero_value(&f.ty, db))
                    .transpose()?
                    .unwrap_or(Value::Int(0));
                Value::Union {
                    arm: 0,
                    value: Box::new(first),
                }
            } else {
                let mut vs = Vec::with_capacity(def.fields.len());
                for f in &def.fields {
                    vs.push(zero_value(&f.ty, db)?);
                }
                Value::Group(vs)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Dir;
    use crate::parser::parse;

    fn db(src: &str) -> SpecDb {
        SpecDb::from_files(vec![parse("t", src).unwrap()])
    }

    fn no_res(_: &ResRef) -> u64 {
        unreachable!("no resources expected")
    }

    #[test]
    fn encodes_scalar_arg() {
        let db = SpecDb::from_files(vec![]);
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let reg = mb
            .encode_arg(
                &Type::int(IntBits::I32),
                &Value::Int(0x1_2345_6789),
                &no_res,
            )
            .unwrap();
        assert_eq!(reg, 0x2345_6789); // truncated to 32 bits
        assert!(mb.into_segments().is_empty());
    }

    #[test]
    fn encodes_symbolic_const() {
        let db = SpecDb::from_files(vec![]);
        let mut consts = ConstDb::new();
        consts.define("CMD", 0xc0de);
        let mut mb = MemBuilder::new(&db, &consts);
        let reg = mb
            .encode_arg(
                &Type::sym_const("CMD", IntBits::I64),
                &Value::Int(0),
                &no_res,
            )
            .unwrap();
        assert_eq!(reg, 0xc0de);
    }

    #[test]
    fn unresolved_const_is_error() {
        let db = SpecDb::from_files(vec![]);
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let err = mb
            .encode_arg(
                &Type::sym_const("NOPE", IntBits::I64),
                &Value::Int(0),
                &no_res,
            )
            .unwrap_err();
        assert_eq!(err, EncodeError::UnresolvedConst("NOPE".into()));
    }

    #[test]
    fn encodes_string_pointer() {
        let db = SpecDb::from_files(vec![]);
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let ty = Type::ptr(
            Dir::In,
            Type::StringLit {
                values: vec!["/dev/x".into()],
            },
        );
        let reg = mb
            .encode_arg(
                &ty,
                &Value::ptr_to(Value::Bytes(b"/dev/x".to_vec())),
                &no_res,
            )
            .unwrap();
        assert_eq!(reg, ARG_BASE_ADDR);
        let segs = mb.into_segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(&segs[0].1[..7], b"/dev/x\0");
    }

    #[test]
    fn struct_encoding_matches_c_layout() {
        let db = db("s {\n\ta int8\n\tb int32\n\tc int16\n}\n");
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let v = Value::Group(vec![
            Value::Int(0xAA),
            Value::Int(0x11223344),
            Value::Int(0x5566),
        ]);
        let _ = mb
            .encode_arg(
                &Type::ptr(Dir::In, Type::Named("s".into())),
                &Value::ptr_to(v),
                &no_res,
            )
            .unwrap();
        let segs = mb.into_segments();
        let bytes = &segs[0].1;
        assert_eq!(bytes.len(), 12);
        assert_eq!(bytes[0], 0xAA);
        assert_eq!(&bytes[4..8], &0x1122_3344u32.to_le_bytes());
        assert_eq!(&bytes[8..10], &0x5566u16.to_le_bytes());
    }

    #[test]
    fn len_field_autofilled_from_sibling() {
        let db = db("s {\n\tcount len[data, int32]\n\tdata ptr[in, array[int8]]\n}\n");
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let v = Value::Group(vec![
            Value::Int(0), // placeholder; auto-filled
            Value::ptr_to(Value::Bytes(vec![1, 2, 3, 4, 5])),
        ]);
        let _ = mb
            .encode_arg(
                &Type::ptr(Dir::In, Type::Named("s".into())),
                &Value::ptr_to(v),
                &no_res,
            )
            .unwrap();
        let segs = mb.into_segments();
        // Pointees are allocated before their parent, so the outer
        // struct is the last segment.
        let outer = segs.last().unwrap();
        assert_eq!(&outer.1[0..4], &5u32.to_le_bytes());
    }

    #[test]
    fn bytesize_field_autofilled() {
        let db = db("s {\n\tsz bytesize[payload, int32]\n\tpayload ptr[in, inner]\n}\ninner {\n\ta int64\n\tb int64\n}\n");
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let inner = Value::Group(vec![Value::Int(1), Value::Int(2)]);
        let v = Value::Group(vec![Value::Int(0), Value::ptr_to(inner)]);
        let _ = mb
            .encode_arg(
                &Type::ptr(Dir::In, Type::Named("s".into())),
                &Value::ptr_to(v),
                &no_res,
            )
            .unwrap();
        let segs = mb.into_segments();
        // Pointees are allocated before their parent, so the outer
        // struct is the last segment.
        let outer = segs.last().unwrap();
        assert_eq!(&outer.1[0..4], &16u32.to_le_bytes());
    }

    #[test]
    fn union_pads_to_largest_arm() {
        let db = db("u [\n\ta int8\n\tb int64\n]\n");
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let v = Value::Union {
            arm: 0,
            value: Box::new(Value::Int(7)),
        };
        let _ = mb
            .encode_arg(
                &Type::ptr(Dir::In, Type::Named("u".into())),
                &Value::ptr_to(v),
                &no_res,
            )
            .unwrap();
        let segs = mb.into_segments();
        assert_eq!(segs[0].1.len(), 8);
        assert_eq!(segs[0].1[0], 7);
    }

    #[test]
    fn resource_ref_resolved_via_callback() {
        let db = db("resource fd_x[fd]\n");
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let resolve = |r: &ResRef| {
            if r.producer == Some(3) {
                42
            } else {
                r.fallback
            }
        };
        let reg = mb
            .encode_arg(
                &Type::Resource("fd_x".into()),
                &Value::Res(ResRef {
                    producer: Some(3),
                    fallback: u64::MAX,
                }),
                &resolve,
            )
            .unwrap();
        assert_eq!(reg, 42);
    }

    #[test]
    fn fixed_array_pads_and_truncates() {
        let db = SpecDb::from_files(vec![]);
        let consts = ConstDb::new();
        let ty = Type::Array {
            elem: Box::new(Type::int(IntBits::I16)),
            len: ArrayLen::Fixed(3),
        };
        let mut mb = MemBuilder::new(&db, &consts);
        let mut buf = Vec::new();
        mb.encode_into(&ty, &Value::Group(vec![Value::Int(1)]), &mut buf, &no_res)
            .unwrap();
        assert_eq!(buf, vec![1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn zero_value_round_trips_nested() {
        let db = db("inner {\n\tn int32\n}\nouter {\n\ti inner\n\tp ptr[in, array[int8, 4]]\n}\n");
        let consts = ConstDb::new();
        let v = zero_value(&Type::Named("outer".into()), &db).unwrap();
        let mut mb = MemBuilder::new(&db, &consts);
        let reg = mb
            .encode_arg(
                &Type::ptr(Dir::In, Type::Named("outer".into())),
                &Value::ptr_to(v),
                &no_res,
            )
            .unwrap();
        assert_eq!(reg % 16, 0);
        assert_eq!(mb.into_segments().len(), 2);
    }

    #[test]
    fn null_pointer_encodes_zero() {
        let db = SpecDb::from_files(vec![]);
        let consts = ConstDb::new();
        let mut mb = MemBuilder::new(&db, &consts);
        let reg = mb
            .encode_arg(
                &Type::ptr(Dir::In, Type::buffer()),
                &Value::Ptr { pointee: None },
                &no_res,
            )
            .unwrap();
        assert_eq!(reg, 0);
    }

    #[test]
    fn reset_recycles_and_reproduces_identical_segments() {
        let db = db("s {\n\ta int8\n\tb int32\n\tc int16\n}\n");
        let consts = ConstDb::new();
        let ty = Type::ptr(Dir::In, Type::Named("s".into()));
        let v = Value::ptr_to(Value::Group(vec![
            Value::Int(0xAA),
            Value::Int(0x11223344),
            Value::Int(0x5566),
        ]));
        let mut mb = MemBuilder::new(&db, &consts);
        let reg1 = mb.encode_arg(&ty, &v, &no_res).unwrap();
        let first: Vec<(u64, Vec<u8>)> = mb.segments().to_vec();
        mb.reset();
        assert!(mb.segments().is_empty());
        // Same encoding after reset: same addresses, same bytes.
        let reg2 = mb.encode_arg(&ty, &v, &no_res).unwrap();
        assert_eq!(reg1, reg2);
        assert_eq!(mb.segments(), &first[..]);
        // Addresses come out strictly ascending (binary-search
        // contract of MemMap::load).
        let db2 = db_multi();
        let consts2 = ConstDb::new();
        let mut mb2 = MemBuilder::new(&db2, &consts2);
        let nested = Value::ptr_to(Value::Group(vec![
            Value::Int(0),
            Value::ptr_to(Value::Bytes(vec![1, 2, 3])),
        ]));
        let _ = mb2
            .encode_arg(
                &Type::ptr(Dir::In, Type::Named("s".into())),
                &nested,
                &no_res,
            )
            .unwrap();
        let addrs: Vec<u64> = mb2.segments().iter().map(|s| s.0).collect();
        assert!(addrs.windows(2).all(|w| w[0] < w[1]), "{addrs:?}");
    }

    fn db_multi() -> SpecDb {
        db("s {\n\tcount len[data, int32]\n\tdata ptr[in, array[int8]]\n}\n")
    }

    #[test]
    fn res_refs_collected_from_nested_values() {
        let v = Value::Group(vec![
            Value::Res(ResRef::dangling()),
            Value::ptr_to(Value::Union {
                arm: 1,
                value: Box::new(Value::Res(ResRef {
                    producer: Some(1),
                    fallback: 0,
                })),
            }),
        ]);
        assert_eq!(v.res_refs().len(), 2);
    }
}
