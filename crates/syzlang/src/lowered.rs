//! Lowered generation/encoding IR: the spec compiled once, so the
//! per-exec path is string-free and AST-free.
//!
//! [`SpecDb`] is a name-keyed view of the parsed specification: every
//! walk over it pays `BTreeMap` lookups (`struct_def`, `flags_def`,
//! `resource_bits`), re-resolves flag sets through the [`ConstDb`],
//! and compares resource *names* to find producers. That is fine for
//! validation and repair, which run once per suite — but the fuzzer's
//! generate → encode → dispatch loop walks types millions of times.
//!
//! A [`LoweredDb`] is built once per `(SpecDb, ConstDb)` pair (and
//! cached behind the existing [`crate::SpecCache`], see
//! [`crate::SpecCache::get_or_lower`]) and replaces every name-keyed
//! hop with array indexing:
//!
//! * types live in a flat arena of [`LType`]s addressed by [`TypeId`];
//!   each id also carries its precomputed [`Layout`] and a printed
//!   form for (cold) error paths;
//! * `flags[set]` members are resolved to `u64` lists at compile time
//!   ([`LType::Flags`] holds a range into one shared pool);
//! * symbolic constants are resolved at compile time
//!   ([`LType::Const`] stores the value, not the macro name);
//! * struct/union definitions are flattened into [`LStruct`] field
//!   tables with field offsets and `len[...]`/`bytesize[...]` targets
//!   resolved to field *indices*;
//! * resources get dense [`ResourceId`]s with precomputed underlying
//!   widths and producer syscall-index lists, and every syscall gets a
//!   `ret_resource: Option<ResourceId>` — so producer matching is an
//!   integer compare, not a string compare;
//! * syscall base names are interned into a dense op table
//!   ([`LoweredDb::base_ops`]) that executors map onto their own
//!   dispatch enum once at construction.
//!
//! The lowering is *behaviour-preserving by construction*: the
//! [`LoweredEncoder`] mirrors [`crate::value::MemBuilder`] decision
//! for decision (same errors, same segment addresses, same buffer
//! pooling), and the fuzzer's lowered generator draws the same RNG
//! sequence as the AST walk, so program streams are bit-identical.
//! `tests/properties.rs` and the `lowering` section of `fuzz_bench`
//! pin both.

use crate::ast::{ArrayLen, ConstExpr, Dir, IntBits, Type};
use crate::consts::ConstDb;
use crate::db::{SpecDb, BUILTIN_RESOURCES};
use crate::layout::{field_offsets, type_layout, Layout, LayoutError};
use crate::printer::print_type;
use crate::value::{
    deref_for_len, deref_value_for_len, push_int, value_kind, EncodeError, Value, ARG_BASE_ADDR,
};
use std::collections::BTreeMap;

/// Dense index of a lowered type in the [`LoweredDb`] arena.
pub type TypeId = u32;

/// Dense index of a flattened struct/union definition.
pub type StructId = u32;

/// Dense index of an interned resource name.
pub type ResourceId = u32;

/// Dense index of an interned diagnostic name (error paths only).
pub type NameId = u32;

/// A lowered type: every reference is a dense id, every constant is
/// pre-resolved. `Copy`, so hot loops read nodes out of the arena
/// without borrowing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LType {
    /// `intN` with an optional inclusive value range.
    Int {
        /// Integer width.
        bits: IntBits,
        /// Optional `[lo:hi]` value constraint.
        range: Option<(u64, u64)>,
    },
    /// `const[...]`, resolved at compile time. `value` is `None` only
    /// for a symbolic constant missing from the [`ConstDb`]; encoding
    /// it reproduces the AST walk's `UnresolvedConst` error via `sym`.
    Const {
        /// Resolved value, if the constant resolved.
        value: Option<u64>,
        /// Wire width.
        bits: IntBits,
        /// Symbol name for the unresolved-constant error path.
        sym: NameId,
    },
    /// `flags[set]` with members pre-resolved to values.
    Flags {
        /// Range into [`LoweredDb::flag_values`].
        values: (u32, u32),
        /// Wire width.
        bits: IntBits,
    },
    /// `string[...]` candidates.
    StringLit {
        /// Range into [`LoweredDb::strings`].
        strs: (u32, u32),
    },
    /// `ptr[dir, T]`.
    Ptr {
        /// Data-flow direction.
        dir: Dir,
        /// Pointee.
        elem: TypeId,
    },
    /// `array[T, ...]`.
    Array {
        /// Element type.
        elem: TypeId,
        /// Element count specifier.
        len: ArrayLen,
        /// Whether the element is `int8` (byte-buffer fast path).
        byte_elem: bool,
    },
    /// `len[target]` — the target is resolved positionally by the
    /// enclosing [`LStruct`] field or [`LParam`].
    Len {
        /// Wire width.
        bits: IntBits,
    },
    /// `bytesize[target]` — see [`LType::Len`].
    Bytesize {
        /// Wire width.
        bits: IntBits,
    },
    /// Reference to an interned resource.
    Resource {
        /// Dense resource id.
        res: ResourceId,
    },
    /// Reference to a flattened struct/union definition.
    Struct {
        /// Dense struct id.
        id: StructId,
    },
    /// A named type with no definition in the database (generates a
    /// zero scalar; encodes to an `UnknownType` error, like the AST
    /// walk).
    UnknownNamed {
        /// The undefined name, for the error message.
        name: NameId,
    },
    /// `proc[start, per]`.
    Proc {
        /// Base value.
        start: u64,
        /// Stride per process.
        per: u64,
        /// Wire width.
        bits: IntBits,
    },
    /// `void`.
    Void,
}

/// Auto-fill action of a struct field, with the sibling target
/// resolved to a field index at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LAutofill {
    /// `len[target]`: element count of the sibling at `target`
    /// (`None` when the named sibling does not exist — encodes 0).
    Len {
        /// Sibling field index.
        target: Option<u32>,
        /// Wire width.
        bits: IntBits,
    },
    /// `bytesize[target]`: encoded byte size of the sibling at
    /// `target`; the stored [`TypeId`] is the sibling's pointee type
    /// (or the sibling itself when it is not a pointer).
    Bytesize {
        /// Sibling field index and its dereferenced type.
        target: Option<(u32, TypeId)>,
        /// Wire width.
        bits: IntBits,
    },
}

/// One flattened struct/union field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LField {
    /// Field type.
    pub ty: TypeId,
    /// Auto-fill action, for `len`/`bytesize` fields.
    pub autofill: Option<LAutofill>,
}

/// A flattened struct or union definition.
#[derive(Debug, Clone)]
pub struct LStruct {
    /// Definition name (diagnostics only).
    pub name: NameId,
    /// `true` for unions.
    pub is_union: bool,
    /// Ordered fields.
    pub fields: Vec<LField>,
    /// Precomputed field offsets and total size (what
    /// [`field_offsets`] computes per encode on the AST walk), or the
    /// layout error encoding this definition reproduces.
    pub layout: Result<(Vec<u64>, u64), LayoutError>,
}

/// One syscall parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LParam {
    /// Parameter type.
    pub ty: TypeId,
    /// For top-level `len[...]`/`bytesize[...]` parameters: the index
    /// of the sibling parameter they measure (register fix-up).
    pub len_target: Option<u32>,
}

/// One lowered syscall description.
#[derive(Debug, Clone)]
pub struct LSyscall {
    /// Index into [`LoweredDb::base_ops`] — the dense dispatch op.
    pub op: u32,
    /// Ordered parameters.
    pub params: Vec<LParam>,
    /// Resource produced by the return value, as a dense id.
    pub ret_resource: Option<ResourceId>,
}

/// One interned resource.
#[derive(Debug, Clone)]
pub struct LResource {
    /// Resource name (diagnostics only).
    pub name: NameId,
    /// Whether the database declares this resource (builtin or
    /// explicit). Undeclared names still intern so that producer
    /// matching stays a pure id compare.
    pub declared: bool,
    /// Underlying integer width ([`SpecDb::resource_bits`]), chased
    /// through resource-to-resource chains at compile time.
    pub bits: Option<IntBits>,
    /// Syscall indices producing this resource, ascending — the same
    /// list [`SpecDb::producers_of`] yields, precomputed.
    pub producers: Vec<u32>,
}

/// The compiled, index-interned form of a `(SpecDb, ConstDb)` pair.
///
/// Built once by [`LoweredDb::build`] (or fetched from the
/// [`crate::SpecCache`] via [`crate::SpecCache::get_or_lower`]);
/// immutable afterwards, so one instance is shared by reference
/// across all fuzzing shards and threads.
#[derive(Debug, Clone)]
pub struct LoweredDb {
    types: Vec<LType>,
    layouts: Vec<Result<Layout, LayoutError>>,
    /// Printed form of each type, for (cold) mismatch errors.
    printed: Vec<String>,
    structs: Vec<LStruct>,
    syscalls: Vec<LSyscall>,
    /// Full syscall names aligned with `syscalls` (name order, like
    /// [`SpecDb::syscall_index`]); cold paths only.
    syscall_names: Vec<String>,
    resources: Vec<LResource>,
    flag_pool: Vec<u64>,
    string_pool: Vec<Vec<u8>>,
    names: Vec<String>,
    /// Distinct syscall base names in first-occurrence order.
    base_ops: Vec<String>,
}

/// Transient state of one lowering run.
struct Lowerer<'a> {
    db: &'a SpecDb,
    consts: &'a ConstDb,
    out: LoweredDb,
    struct_ids: BTreeMap<String, StructId>,
    resource_ids: BTreeMap<String, ResourceId>,
    name_ids: BTreeMap<String, NameId>,
    op_ids: BTreeMap<String, u32>,
    /// Flag-set name → resolved pool range, so repeated references to
    /// one set share one slice instead of re-extending the pool.
    flag_ranges: BTreeMap<String, (u32, u32)>,
    /// String candidate list → pool range, same sharing.
    string_ranges: BTreeMap<Vec<String>, (u32, u32)>,
}

impl LoweredDb {
    /// Compile a database and constant table into the lowered IR.
    #[must_use]
    pub fn build(db: &SpecDb, consts: &ConstDb) -> LoweredDb {
        let mut l = Lowerer {
            db,
            consts,
            out: LoweredDb {
                types: Vec::new(),
                layouts: Vec::new(),
                printed: Vec::new(),
                structs: Vec::new(),
                syscalls: Vec::new(),
                syscall_names: Vec::new(),
                resources: Vec::new(),
                flag_pool: Vec::new(),
                string_pool: Vec::new(),
                names: Vec::new(),
                base_ops: Vec::new(),
            },
            struct_ids: BTreeMap::new(),
            resource_ids: BTreeMap::new(),
            name_ids: BTreeMap::new(),
            op_ids: BTreeMap::new(),
            flag_ranges: BTreeMap::new(),
            string_ranges: BTreeMap::new(),
        };
        // Declared resources first (builtins + explicit), in name
        // order, so their ids are stable and independent of use sites.
        let mut declared: Vec<String> = BUILTIN_RESOURCES
            .iter()
            .map(|(n, _)| (*n).to_string())
            .collect();
        declared.extend(db.resources().map(|r| r.name.clone()));
        declared.sort();
        declared.dedup();
        for name in &declared {
            l.intern_resource(name);
        }
        // Flattened struct ids are assigned before any field lowers so
        // mutually-recursive definitions reference each other by id.
        for (i, def) in db.structs().enumerate() {
            l.struct_ids.insert(def.name.clone(), i as StructId);
        }
        for def in db.structs() {
            let fields = def
                .fields
                .iter()
                .map(|f| {
                    let ty = l.lower_type(&f.ty);
                    let autofill = match &f.ty {
                        Type::Len { target, bits } => Some(LAutofill::Len {
                            target: field_index(def, target),
                            bits: *bits,
                        }),
                        Type::Bytesize { target, bits } => Some(LAutofill::Bytesize {
                            target: field_index(def, target).map(|idx| {
                                let tty = deref_for_len(&def.fields[idx as usize].ty)
                                    .expect("deref_for_len is total");
                                (idx, l.lower_type(tty))
                            }),
                            bits: *bits,
                        }),
                        _ => None,
                    };
                    LField { ty, autofill }
                })
                .collect();
            let name = l.intern_name(&def.name);
            l.out.structs.push(LStruct {
                name,
                is_union: def.is_union,
                fields,
                layout: field_offsets(def, db),
            });
        }
        // Syscalls in dense-index (name) order: ops, params with
        // register-fixup targets, producer-matching return resources.
        for sys in db.syscalls() {
            let op = l.intern_op(&sys.base);
            let params = sys
                .params
                .iter()
                .map(|p| LParam {
                    ty: l.lower_type(&p.ty),
                    len_target: match &p.ty {
                        Type::Len { target, .. } | Type::Bytesize { target, .. } => sys
                            .params
                            .iter()
                            .position(|q| &q.name == target)
                            .map(|i| i as u32),
                        _ => None,
                    },
                })
                .collect();
            let ret_resource = sys.ret.as_deref().map(|r| l.intern_resource(r));
            l.out.syscalls.push(LSyscall {
                op,
                params,
                ret_resource,
            });
            l.out.syscall_names.push(sys.name());
        }
        // Producer tables: the same ascending-index lists the AST-walk
        // generator precomputed per construction, now computed once.
        let producer_lists: Vec<(ResourceId, Vec<u32>)> = l
            .resource_ids
            .iter()
            .filter(|(name, _)| db.resource(name).is_some())
            .map(|(name, &rid)| {
                let list = db
                    .producers_of(name)
                    .filter_map(|s| db.syscall_index(&s.name()))
                    .map(|i| i as u32)
                    .collect();
                (rid, list)
            })
            .collect();
        for (rid, list) in producer_lists {
            l.out.resources[rid as usize].producers = list;
        }
        l.out
    }

    /// Number of lowered syscalls (equals [`SpecDb::syscall_count`]).
    #[must_use]
    pub fn syscall_count(&self) -> usize {
        self.syscalls.len()
    }

    /// The lowered syscall at a dense index (the same index space as
    /// [`SpecDb::syscall_index`]).
    #[must_use]
    pub fn syscall(&self, idx: usize) -> &LSyscall {
        &self.syscalls[idx]
    }

    /// Dense index of a syscall by full name (cold path).
    #[must_use]
    pub fn syscall_index(&self, full_name: &str) -> Option<usize> {
        self.syscall_names
            .binary_search_by(|n| n.as_str().cmp(full_name))
            .ok()
    }

    /// Full name of the syscall at `idx` (cold path).
    #[must_use]
    pub fn syscall_name(&self, idx: usize) -> &str {
        &self.syscall_names[idx]
    }

    /// Distinct syscall base names, indexed by [`LSyscall::op`].
    /// Executors map these onto their dispatch enum once.
    #[must_use]
    pub fn base_ops(&self) -> &[String] {
        &self.base_ops
    }

    /// The lowered type node at `id` (a copy; [`LType`] is `Copy`).
    #[must_use]
    pub fn ltype(&self, id: TypeId) -> LType {
        self.types[id as usize]
    }

    /// Precomputed layout of the type at `id`.
    pub fn layout(&self, id: TypeId) -> &Result<Layout, LayoutError> {
        &self.layouts[id as usize]
    }

    /// Printed form of the type at `id` (error paths only).
    #[must_use]
    pub fn printed(&self, id: TypeId) -> &str {
        &self.printed[id as usize]
    }

    /// The flattened struct definition at `id`.
    #[must_use]
    pub fn lstruct(&self, id: StructId) -> &LStruct {
        &self.structs[id as usize]
    }

    /// The interned resource at `id`.
    #[must_use]
    pub fn lresource(&self, id: ResourceId) -> &LResource {
        &self.resources[id as usize]
    }

    /// Number of interned resources.
    #[must_use]
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Dense id of a resource by name (cold path).
    #[must_use]
    pub fn resource_id(&self, name: &str) -> Option<ResourceId> {
        self.resource_ids_lookup(name)
    }

    fn resource_ids_lookup(&self, name: &str) -> Option<ResourceId> {
        self.resources
            .iter()
            .position(|r| self.names[r.name as usize] == name)
            .map(|i| i as ResourceId)
    }

    /// Pre-resolved members of a flag set (see [`LType::Flags`]).
    #[must_use]
    pub fn flag_values(&self, range: (u32, u32)) -> &[u64] {
        &self.flag_pool[range.0 as usize..range.1 as usize]
    }

    /// String-literal candidates (see [`LType::StringLit`]).
    #[must_use]
    pub fn strings(&self, range: (u32, u32)) -> &[Vec<u8>] {
        &self.string_pool[range.0 as usize..range.1 as usize]
    }

    /// An interned diagnostic name.
    #[must_use]
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id as usize]
    }
}

/// Index of `target` among `def`'s fields, as the AST walk resolves
/// it by name per encode.
fn field_index(def: &crate::ast::StructDef, target: &str) -> Option<u32> {
    def.fields
        .iter()
        .position(|f| f.name == target)
        .map(|i| i as u32)
}

impl Lowerer<'_> {
    fn intern_name(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.out.names.len() as NameId;
        self.out.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    fn intern_op(&mut self, base: &str) -> u32 {
        if let Some(&id) = self.op_ids.get(base) {
            return id;
        }
        let id = self.out.base_ops.len() as u32;
        self.out.base_ops.push(base.to_string());
        self.op_ids.insert(base.to_string(), id);
        id
    }

    fn intern_resource(&mut self, name: &str) -> ResourceId {
        if let Some(&id) = self.resource_ids.get(name) {
            return id;
        }
        let id = self.out.resources.len() as ResourceId;
        let name_id = self.intern_name(name);
        self.out.resources.push(LResource {
            name: name_id,
            declared: self.db.resource(name).is_some(),
            bits: self.db.resource_bits(name),
            producers: Vec::new(),
        });
        self.resource_ids.insert(name.to_string(), id);
        id
    }

    /// Lower one type occurrence into the arena, returning its id.
    fn lower_type(&mut self, ty: &Type) -> TypeId {
        let lt = match ty {
            Type::Int { bits, range } => LType::Int {
                bits: *bits,
                range: *range,
            },
            Type::Const { value, bits } => {
                let sym = match value {
                    ConstExpr::Sym(s) => self.intern_name(s),
                    ConstExpr::Num(_) => self.intern_name(""),
                };
                LType::Const {
                    value: self.consts.resolve(value),
                    bits: *bits,
                    sym,
                }
            }
            Type::Flags { set, bits } => {
                let values = match self.flag_ranges.get(set) {
                    Some(&range) => range,
                    None => {
                        let start = self.out.flag_pool.len() as u32;
                        if let Some(fd) = self.db.flags_def(set) {
                            self.out
                                .flag_pool
                                .extend(fd.values.iter().filter_map(|v| self.consts.resolve(v)));
                        }
                        let range = (start, self.out.flag_pool.len() as u32);
                        self.flag_ranges.insert(set.clone(), range);
                        range
                    }
                };
                LType::Flags {
                    values,
                    bits: *bits,
                }
            }
            Type::StringLit { values } => {
                let strs = match self.string_ranges.get(values) {
                    Some(&range) => range,
                    None => {
                        let start = self.out.string_pool.len() as u32;
                        self.out
                            .string_pool
                            .extend(values.iter().map(|s| s.clone().into_bytes()));
                        let range = (start, self.out.string_pool.len() as u32);
                        self.string_ranges.insert(values.clone(), range);
                        range
                    }
                };
                LType::StringLit { strs }
            }
            Type::Ptr { dir, elem } => LType::Ptr {
                dir: *dir,
                elem: self.lower_type(elem),
            },
            Type::Array { elem, len } => LType::Array {
                elem: self.lower_type(elem),
                len: *len,
                byte_elem: matches!(
                    elem.as_ref(),
                    Type::Int {
                        bits: IntBits::I8,
                        ..
                    }
                ),
            },
            Type::Len { bits, .. } => LType::Len { bits: *bits },
            Type::Bytesize { bits, .. } => LType::Bytesize { bits: *bits },
            Type::Resource(name) => LType::Resource {
                res: self.intern_resource(name),
            },
            Type::Named(name) => match self.struct_ids.get(name) {
                Some(&id) => LType::Struct { id },
                None => LType::UnknownNamed {
                    name: self.intern_name(name),
                },
            },
            Type::Proc { start, per, bits } => LType::Proc {
                start: *start,
                per: *per,
                bits: *bits,
            },
            Type::Void => LType::Void,
        };
        let id = self.out.types.len() as TypeId;
        self.out.types.push(lt);
        self.out.layouts.push(type_layout(ty, self.db));
        self.out.printed.push(print_type(ty));
        id
    }
}

/// Index of the producing syscall for generation, mirroring the
/// AST-walk generator's `producers` map semantics: `Some(list)` only
/// for resources the database declares.
impl LResource {
    /// Producer list usable for generation, or `None` for undeclared
    /// resources (the AST walk's producer map has no entry for them).
    #[must_use]
    pub fn producer_list(&self) -> Option<&[u32]> {
        self.declared.then_some(self.producers.as_slice())
    }
}

fn mismatch(db: &LoweredDb, ty: TypeId, found: &'static str) -> EncodeError {
    EncodeError::Mismatch {
        expected: db.printed(ty).to_string(),
        found,
    }
}

/// Builds the memory image for one syscall's arguments by walking the
/// lowered arena — the hot-path replacement for
/// [`crate::value::MemBuilder`], which stays as the AST-walk
/// reference the differential tests compare against.
///
/// Mirrors `MemBuilder` exactly: same segment addresses, same buffer
/// pooling, same errors in the same cases — only the name-keyed
/// lookups (`struct_def`, `resource_bits`, `ConstDb::resolve`, field
/// position scans) are gone, replaced by ids resolved at lowering.
#[derive(Debug, Default)]
pub struct LoweredEncoder {
    next_addr: u64,
    segments: Vec<(u64, Vec<u8>)>,
    pool: Vec<Vec<u8>>,
}

impl LoweredEncoder {
    /// Create an encoder allocating from [`ARG_BASE_ADDR`].
    #[must_use]
    pub fn new() -> LoweredEncoder {
        LoweredEncoder {
            next_addr: ARG_BASE_ADDR,
            segments: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Finished memory segments `(address, bytes)`, ascending.
    #[must_use]
    pub fn segments(&self) -> &[(u64, Vec<u8>)] {
        &self.segments
    }

    /// Finished memory segments, owned.
    #[must_use]
    pub fn into_segments(self) -> Vec<(u64, Vec<u8>)> {
        self.segments
    }

    /// Restart the address space and recycle current segment buffers.
    pub fn reset(&mut self) {
        self.next_addr = ARG_BASE_ADDR;
        for (_, mut bytes) in self.segments.drain(..) {
            bytes.clear();
            self.pool.push(bytes);
        }
    }

    /// Swap the finished segment vector with `other` (see
    /// [`crate::value::MemBuilder::swap_segments`]).
    pub fn swap_segments(&mut self, other: &mut Vec<(u64, Vec<u8>)>) {
        std::mem::swap(&mut self.segments, other);
    }

    /// Return retired segments to the buffer pool.
    pub fn recycle(&mut self, retired: &mut Vec<(u64, Vec<u8>)>) {
        for (_, mut bytes) in retired.drain(..) {
            bytes.clear();
            self.pool.push(bytes);
        }
    }

    fn pooled_buf(&mut self) -> Vec<u8> {
        self.pool.pop().unwrap_or_default()
    }

    /// Encode one top-level syscall argument, returning the register
    /// value (the scalar itself, or the address of the allocation).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] in exactly the cases the AST-walk
    /// [`crate::value::MemBuilder::encode_arg`] does.
    pub fn encode_arg(
        &mut self,
        db: &LoweredDb,
        ty: TypeId,
        val: &Value,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        match db.ltype(ty) {
            LType::Ptr { elem, .. } => match val {
                Value::Ptr { pointee: None } => Ok(0),
                Value::Ptr {
                    pointee: Some(inner),
                } => self.alloc_pointee(db, elem, inner, resolve),
                other => Err(mismatch(db, ty, value_kind(other))),
            },
            _ => self.scalar(db, ty, val, resolve),
        }
    }

    fn alloc_pointee(
        &mut self,
        db: &LoweredDb,
        ty: TypeId,
        val: &Value,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        let mut buf = self.pooled_buf();
        self.encode_into(db, ty, val, &mut buf, resolve)?;
        let layout = db.layout(ty).clone()?;
        if (buf.len() as u64) < layout.size {
            buf.resize(layout.size as usize, 0);
        }
        let addr = self.next_addr;
        // Same spacing as the AST walk: 16-byte aligned, non-adjacent.
        let advance = ((buf.len() as u64).max(1) + 0x3f) & !0xf;
        self.next_addr += advance + 16;
        self.segments.push((addr, buf));
        Ok(addr)
    }

    fn scalar(
        &mut self,
        db: &LoweredDb,
        ty: TypeId,
        val: &Value,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        let lt = db.ltype(ty);
        let bits = scalar_bits(db, lt).ok_or_else(|| mismatch(db, ty, value_kind(val)))?;
        let raw = match (lt, val) {
            (LType::Const { value, sym, .. }, _) => {
                value.ok_or_else(|| EncodeError::UnresolvedConst(db.name(sym).to_string()))?
            }
            (_, Value::Int(n)) => *n,
            (_, Value::Res(r)) => resolve(r),
            (_, other) => return Err(mismatch(db, ty, value_kind(other))),
        };
        Ok(bits.truncate(raw))
    }

    #[allow(clippy::too_many_lines)]
    fn encode_into(
        &mut self,
        db: &LoweredDb,
        ty: TypeId,
        val: &Value,
        buf: &mut Vec<u8>,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<(), EncodeError> {
        match db.ltype(ty) {
            LType::Int { bits, .. }
            | LType::Const { bits, .. }
            | LType::Flags { bits, .. }
            | LType::Len { bits }
            | LType::Bytesize { bits }
            | LType::Proc { bits, .. } => {
                let v = self.scalar(db, ty, val, resolve)?;
                push_int(buf, v, bits);
                Ok(())
            }
            LType::Resource { res } => {
                let r = db.lresource(res);
                let bits = r.bits.ok_or_else(|| {
                    EncodeError::Layout(LayoutError::UnknownType(db.name(r.name).to_string()))
                })?;
                let v = match val {
                    Value::Int(n) => *n,
                    Value::Res(rr) => resolve(rr),
                    other => return Err(mismatch(db, ty, value_kind(other))),
                };
                push_int(buf, bits.truncate(v), bits);
                Ok(())
            }
            LType::Void => Ok(()),
            LType::StringLit { .. } => match val {
                Value::Bytes(b) => {
                    buf.extend_from_slice(b);
                    buf.push(0);
                    Ok(())
                }
                other => Err(mismatch(db, ty, value_kind(other))),
            },
            LType::Ptr { elem, .. } => {
                let addr = match val {
                    Value::Ptr { pointee: None } => 0,
                    Value::Ptr {
                        pointee: Some(inner),
                    } => self.alloc_pointee(db, elem, inner, resolve)?,
                    other => return Err(mismatch(db, ty, value_kind(other))),
                };
                push_int(buf, addr, IntBits::I64);
                Ok(())
            }
            LType::Array {
                elem,
                len,
                byte_elem,
            } => {
                // Same bytes as the AST walk, without its per-encode
                // allocations (the reference collects a `Vec<&Value>`
                // and clones byte payloads; here we index the group
                // directly and pad/truncate in place).
                let values: &[Value] = match val {
                    Value::Group(vs) => vs,
                    Value::Bytes(bytes) => {
                        if byte_elem {
                            let start = buf.len();
                            buf.extend_from_slice(bytes);
                            if let ArrayLen::Fixed(n) = len {
                                buf.resize(start + n as usize, 0);
                            }
                            return Ok(());
                        }
                        return Err(mismatch(db, ty, "bytes"));
                    }
                    other => return Err(mismatch(db, ty, value_kind(other))),
                };
                let elem_size = db.layout(elem).as_ref().map_err(Clone::clone)?.size;
                let mut count = values.len() as u64;
                if let ArrayLen::Fixed(n) = len {
                    count = n;
                }
                for i in 0..count {
                    match values.get(i as usize) {
                        Some(v) => self.encode_into(db, elem, v, buf, resolve)?,
                        None => buf.extend(std::iter::repeat_n(0u8, elem_size as usize)),
                    }
                }
                Ok(())
            }
            LType::Struct { id } => {
                if db.lstruct(id).is_union {
                    self.encode_union(db, id, ty, val, buf, resolve)
                } else {
                    self.encode_struct(db, id, ty, val, buf, resolve)
                }
            }
            LType::UnknownNamed { name } => Err(EncodeError::Layout(LayoutError::UnknownType(
                db.name(name).to_string(),
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_union(
        &mut self,
        db: &LoweredDb,
        id: StructId,
        ty: TypeId,
        val: &Value,
        buf: &mut Vec<u8>,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<(), EncodeError> {
        let (arm, inner) = match val {
            Value::Union { arm, value } => (*arm, value.as_ref()),
            other => return Err(mismatch(db, ty, value_kind(other))),
        };
        let field_ty = db
            .lstruct(id)
            .fields
            .get(arm)
            .map(|f| f.ty)
            .ok_or_else(|| mismatch(db, ty, "union (arm out of range)"))?;
        let start = buf.len();
        self.encode_into(db, field_ty, inner, buf, resolve)?;
        let total = match &db.lstruct(id).layout {
            Ok((_, total)) => *total as usize,
            Err(e) => return Err(e.clone().into()),
        };
        if buf.len() - start < total {
            buf.resize(start + total, 0);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn encode_struct(
        &mut self,
        db: &LoweredDb,
        id: StructId,
        ty: TypeId,
        val: &Value,
        buf: &mut Vec<u8>,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<(), EncodeError> {
        let values = match val {
            Value::Group(vs) => vs,
            other => return Err(mismatch(db, ty, value_kind(other))),
        };
        let def = db.lstruct(id);
        if values.len() != def.fields.len() {
            return Err(mismatch(db, ty, "group (wrong field count)"));
        }
        let (offsets, total) = match &def.layout {
            Ok((offsets, total)) => (offsets.as_slice(), *total),
            Err(e) => return Err(e.clone().into()),
        };
        debug_assert_eq!(offsets.len(), values.len());
        let start = buf.len();
        for i in 0..values.len() {
            let field = def.fields[i];
            // Align to this field's precomputed offset (dynamic earlier
            // fields may have shifted us; offsets are a lower bound then).
            let want = start + offsets[i] as usize;
            if buf.len() < want {
                buf.resize(want, 0);
            }
            let fv = &values[i];
            match field.autofill {
                Some(LAutofill::Len { target, bits }) => {
                    let n = sibling_count(values, target);
                    push_int(buf, bits.truncate(n), bits);
                }
                Some(LAutofill::Bytesize { target, bits }) => {
                    let n = self.sibling_bytesize(db, values, target, resolve)?;
                    push_int(buf, bits.truncate(n), bits);
                }
                None => self.encode_into(db, field.ty, fv, buf, resolve)?,
            }
        }
        if buf.len() - start < total as usize {
            buf.resize(start + total as usize, 0);
        }
        Ok(())
    }

    fn sibling_bytesize(
        &mut self,
        db: &LoweredDb,
        values: &[Value],
        target: Option<(u32, TypeId)>,
        resolve: &dyn Fn(&crate::value::ResRef) -> u64,
    ) -> Result<u64, EncodeError> {
        let Some((idx, tty)) = target else {
            return Ok(0);
        };
        let mut scratch = self.pooled_buf();
        let n = match deref_value_for_len(&values[idx as usize]) {
            Some(v) => {
                self.encode_into(db, tty, v, &mut scratch, resolve)?;
                scratch.len() as u64
            }
            None => 0,
        };
        scratch.clear();
        self.pool.push(scratch);
        Ok(n)
    }
}

/// Element count used for `len[target]` (see
/// `crate::value::sibling_count` — identical semantics over a
/// pre-resolved field index).
fn sibling_count(values: &[Value], target: Option<u32>) -> u64 {
    let Some(idx) = target else {
        return 0;
    };
    match deref_value_for_len(&values[idx as usize]) {
        Some(Value::Bytes(b)) => b.len() as u64,
        Some(Value::Group(g)) => g.len() as u64,
        Some(_) => 1,
        None => 0,
    }
}

/// One contiguous straight-line run of basic-block ids with an
/// optional fall-through successor — a row of the static control-flow
/// table the flight recorder's delta coder predicts against (see
/// `kgpt-trace`).
///
/// Blocks inside the run retire in id order, so within a run the
/// predicted successor of block `b` is `b + 1`. At the run's last
/// block the predicted successor is `next` when present (the branch a
/// structurally-valid execution takes, e.g. a command body falling
/// through into its deep-path blocks), else the numerically next id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfgRun {
    /// First block id of the run.
    pub start: u64,
    /// Number of consecutive block ids in the run (rows with `len == 0`
    /// are dropped at [`CfgSuccessors::build`]).
    pub len: u64,
    /// Predicted successor of the run's *last* block, when the lowered
    /// layout fixes one (`None` = predict `last + 1`).
    pub next: Option<u64>,
}

/// The static successor-prediction table for trace delta coding:
/// sorted [`CfgRun`] rows queried by predecessor block id.
///
/// The table is *advisory*: a misprediction only costs the trace
/// encoder a wider `DIVERGE` token, never correctness — so the rows
/// are a best-effort projection of the executor's block layout (the
/// virtual kernel exports its layout as `(start, len, next)` triples;
/// the fuzzer assembles them into this table). Both the recorder and
/// the replayer must use the same table for a trace's bit stream to
/// compare byte-for-byte, which holds because the table is a pure
/// function of the booted kernel.
#[derive(Debug, Clone, Default)]
pub struct CfgSuccessors {
    /// Rows sorted by `start`; disjoint by construction of the block
    /// namespace (each handler owns a disjoint stratum).
    runs: Vec<CfgRun>,
}

impl CfgSuccessors {
    /// Build the table from unordered rows: empty runs are dropped,
    /// the rest sorted by start block.
    #[must_use]
    pub fn build(mut runs: Vec<CfgRun>) -> CfgSuccessors {
        runs.retain(|r| r.len > 0);
        runs.sort_by_key(|r| r.start);
        CfgSuccessors { runs }
    }

    /// Number of rows in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the table has no rows (prediction degrades to `prev+1`
    /// everywhere).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Predicted successor of block `prev`: `prev + 1` inside a run,
    /// the run's `next` at its last block (when fixed), and `prev + 1`
    /// outside any run. Total — an unknown `prev` is not an error,
    /// just a likely misprediction.
    #[must_use]
    pub fn predict(&self, prev: u64) -> u64 {
        let i = self.runs.partition_point(|r| r.start <= prev);
        if i > 0 {
            let r = &self.runs[i - 1];
            if prev < r.start + r.len && prev + 1 == r.start + r.len {
                if let Some(next) = r.next {
                    return next;
                }
            }
        }
        prev.wrapping_add(1)
    }
}

fn scalar_bits(db: &LoweredDb, lt: LType) -> Option<IntBits> {
    match lt {
        LType::Int { bits, .. }
        | LType::Const { bits, .. }
        | LType::Flags { bits, .. }
        | LType::Len { bits }
        | LType::Bytesize { bits }
        | LType::Proc { bits, .. } => Some(bits),
        LType::Resource { res } => db.lresource(res).bits,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::value::{zero_value, MemBuilder, ResRef};

    fn db(src: &str) -> SpecDb {
        SpecDb::from_files(vec![parse("t", src).unwrap()])
    }

    #[test]
    fn flags_resolve_at_compile_time() {
        let db = db("f = FA, FB, FC, 8\nioctl$X(fd fd, cmd const[1], arg flags[f, int32])\n");
        let mut consts = ConstDb::new();
        consts.define("FA", 1);
        consts.define("FC", 4);
        // FB is unresolved and must be filtered out, like the AST
        // walk's per-value `filter_map(resolve)`.
        let l = LoweredDb::build(&db, &consts);
        let sys = l.syscall(l.syscall_index("ioctl$X").unwrap());
        let LType::Flags { values, bits } = l.ltype(sys.params[2].ty) else {
            panic!("arg did not lower to flags");
        };
        assert_eq!(bits, IntBits::I32);
        assert_eq!(l.flag_values(values), &[1, 4, 8]);
    }

    #[test]
    fn repeated_flag_and_string_references_share_pool_ranges() {
        let db = db(
            "f = 1, 2, 4\nioctl$A(fd fd, cmd const[1], arg flags[f, int32])\nioctl$B(fd fd, cmd const[2], arg flags[f, int32])\nopenat$a(dir const[0], file ptr[in, string[\"/dev/x\"]], flags const[2], mode const[0])\nopenat$b(dir const[0], file ptr[in, string[\"/dev/x\"]], flags const[2], mode const[0])\n",
        );
        let l = LoweredDb::build(&db, &ConstDb::new());
        let flags_range = |name: &str| {
            let sys = l.syscall(l.syscall_index(name).unwrap());
            match l.ltype(sys.params[2].ty) {
                LType::Flags { values, .. } => values,
                other => panic!("{name}: not flags: {other:?}"),
            }
        };
        assert_eq!(flags_range("ioctl$A"), flags_range("ioctl$B"));
        assert_eq!(l.flag_values(flags_range("ioctl$A")), &[1, 2, 4]);
        let string_range = |name: &str| {
            let sys = l.syscall(l.syscall_index(name).unwrap());
            let LType::Ptr { elem, .. } = l.ltype(sys.params[1].ty) else {
                panic!("{name}: file is not a pointer");
            };
            match l.ltype(elem) {
                LType::StringLit { strs } => strs,
                other => panic!("{name}: not a string: {other:?}"),
            }
        };
        assert_eq!(string_range("openat$a"), string_range("openat$b"));
    }

    #[test]
    fn missing_flag_set_lowers_to_empty_list() {
        let db = db("ioctl$X(fd fd, cmd const[1], arg flags[nope, int32])\n");
        let l = LoweredDb::build(&db, &ConstDb::new());
        let sys = l.syscall(0);
        let LType::Flags { values, .. } = l.ltype(sys.params[2].ty) else {
            panic!("arg did not lower to flags");
        };
        assert!(l.flag_values(values).is_empty());
    }

    #[test]
    fn producer_tables_match_producers_of() {
        let src = r#"
resource fd_v[fd]
resource qid[int32]
openat$v(dir const[0], file ptr[in, string["/dev/v"]], flags const[2], mode const[0]) fd_v
ioctl$NEW(fd fd_v, cmd const[1], arg ptr[inout, q_new])
ioctl$USE(fd fd_v, cmd const[2], arg ptr[in, q_use])
q_new {
    id qid (out)
}
q_use {
    id qid
}
"#;
        let db = db(src);
        let consts = ConstDb::new();
        let l = LoweredDb::build(&db, &consts);
        for name in ["fd_v", "qid", "fd"] {
            let rid = l.resource_id(name).expect(name);
            let want: Vec<u32> = db
                .producers_of(name)
                .filter_map(|s| db.syscall_index(&s.name()))
                .map(|i| i as u32)
                .collect();
            let r = l.lresource(rid);
            assert!(r.declared, "{name} must be declared");
            assert_eq!(r.producers, want, "{name}");
            assert_eq!(r.producer_list(), Some(want.as_slice()), "{name}");
        }
    }

    #[test]
    fn ret_resource_is_a_dense_id_matching_consumers() {
        let db = db(
            "resource fd_v[fd]\nopenat$v(dir const[0], file ptr[in, string[\"/dev/v\"]], flags const[2], mode const[0]) fd_v\nioctl$A(fd fd_v, cmd const[1], arg ptr[in, array[int8]])\n",
        );
        let l = LoweredDb::build(&db, &ConstDb::new());
        let open = l.syscall(l.syscall_index("openat$v").unwrap());
        let ioctl = l.syscall(l.syscall_index("ioctl$A").unwrap());
        let LType::Resource { res } = l.ltype(ioctl.params[0].ty) else {
            panic!("fd param did not lower to a resource");
        };
        assert_eq!(open.ret_resource, Some(res));
        assert_eq!(ioctl.ret_resource, None);
    }

    #[test]
    fn undeclared_resources_intern_but_expose_no_producers() {
        // A return resource that is never declared: producer matching
        // still works by id, but generation sees no producer list —
        // exactly the AST walk's map-miss behaviour.
        let db = db("dup$x(old fd) mystery_res\n");
        let l = LoweredDb::build(&db, &ConstDb::new());
        let rid = l.resource_id("mystery_res").unwrap();
        let r = l.lresource(rid);
        assert!(!r.declared);
        assert_eq!(r.producer_list(), None);
        assert_eq!(r.bits, None);
    }

    #[test]
    fn consts_resolve_at_compile_time() {
        let db = db("ioctl$X(fd fd, cmd const[CMD], arg const[MISSING, int32])\n");
        let mut consts = ConstDb::new();
        consts.define("CMD", 0xc0de);
        let l = LoweredDb::build(&db, &consts);
        let sys = l.syscall(0);
        assert!(matches!(
            l.ltype(sys.params[1].ty),
            LType::Const {
                value: Some(0xc0de),
                ..
            }
        ));
        let LType::Const { value, sym, .. } = l.ltype(sys.params[2].ty) else {
            panic!("arg did not lower to const");
        };
        assert_eq!(value, None);
        assert_eq!(l.name(sym), "MISSING");
    }

    #[test]
    fn base_ops_are_dense_and_stable() {
        let db = db(
            "resource fd_v[fd]\nopenat$v(dir const[0], file ptr[in, string[\"/dev/v\"]], flags const[2], mode const[0]) fd_v\nioctl$A(fd fd_v, cmd const[1], arg ptr[in, array[int8]])\nioctl$B(fd fd_v, cmd const[2], arg ptr[in, array[int8]])\n",
        );
        let l = LoweredDb::build(&db, &ConstDb::new());
        assert_eq!(l.base_ops(), &["ioctl".to_string(), "openat".to_string()]);
        assert_eq!(l.base_ops()[l.syscall(0).op as usize], "ioctl");
        let open_idx = l.syscall_index("openat$v").unwrap();
        assert_eq!(l.base_ops()[l.syscall(open_idx).op as usize], "openat");
        assert_eq!(l.syscall_name(open_idx), "openat$v");
    }

    #[test]
    fn struct_len_targets_resolve_to_field_indices() {
        let db = db("s {\n\tcount len[data, int32]\n\tsz bytesize[data, int32]\n\tbad len[nope, int32]\n\tdata ptr[in, array[int8]]\n}\nioctl$X(fd fd, cmd const[1], arg ptr[in, s])\n");
        let l = LoweredDb::build(&db, &ConstDb::new());
        let sys = l.syscall(0);
        let LType::Ptr { elem, .. } = l.ltype(sys.params[2].ty) else {
            panic!("arg is not a pointer");
        };
        let LType::Struct { id } = l.ltype(elem) else {
            panic!("pointee is not a struct");
        };
        let s = l.lstruct(id);
        assert_eq!(
            s.fields[0].autofill,
            Some(LAutofill::Len {
                target: Some(3),
                bits: IntBits::I32
            })
        );
        let Some(LAutofill::Bytesize {
            target: Some((3, tty)),
            ..
        }) = s.fields[1].autofill
        else {
            panic!("bytesize target unresolved");
        };
        // The stored target type is the sibling's pointee.
        assert!(matches!(l.ltype(tty), LType::Array { .. }));
        assert_eq!(
            s.fields[2].autofill,
            Some(LAutofill::Len {
                target: None,
                bits: IntBits::I32
            })
        );
    }

    #[test]
    fn top_level_len_params_resolve_to_param_indices() {
        let db = db("setsockopt$x(fd fd, level const[1], opt const[2], val ptr[in, array[int8]], len bytesize[val])\n");
        let l = LoweredDb::build(&db, &ConstDb::new());
        let sys = l.syscall(0);
        assert_eq!(sys.params[4].len_target, Some(3));
        assert_eq!(sys.params[0].len_target, None);
    }

    #[test]
    fn lowered_encoder_matches_ast_walk_on_zero_values() {
        let src = r#"
resource fd_v[fd]
inner {
    a int64
    b int64
}
s {
    magic const[0xAB, int32]
    count len[data, int32]
    sz bytesize[payload, int32]
    payload ptr[in, inner]
    data ptr[in, array[int8]]
    u choice
    f fd_v
}
choice [
    x int8
    y int64
]
ioctl$X(fd fd_v, cmd const[1], arg ptr[in, s])
"#;
        let db = db(src);
        let consts = ConstDb::new();
        let l = LoweredDb::build(&db, &consts);
        let sys_idx = l.syscall_index("ioctl$X").unwrap();
        let ast_sys = db.syscall_at(sys_idx);
        let resolve = |r: &ResRef| r.fallback;
        let mut ast = MemBuilder::new(&db, &consts);
        let mut low = LoweredEncoder::new();
        for (pi, p) in ast_sys.params.iter().enumerate() {
            let v = zero_value(&p.ty, &db).unwrap();
            let a = ast.encode_arg(&p.ty, &v, &resolve);
            let b = low.encode_arg(&l, l.syscall(sys_idx).params[pi].ty, &v, &resolve);
            assert_eq!(a, b, "param {pi}");
        }
        assert_eq!(ast.segments(), low.segments());
        // And after a reset, the recycled-buffer path reproduces the
        // same image again.
        ast.reset();
        low.reset();
        for (pi, p) in ast_sys.params.iter().enumerate() {
            let v = zero_value(&p.ty, &db).unwrap();
            let a = ast.encode_arg(&p.ty, &v, &resolve);
            let b = low.encode_arg(&l, l.syscall(sys_idx).params[pi].ty, &v, &resolve);
            assert_eq!(a, b, "param {pi} after reset");
        }
        assert_eq!(ast.segments(), low.segments());
    }

    #[test]
    fn lowered_encoder_reproduces_ast_errors() {
        let db = db("s {\n\tx mystery\n}\nioctl$X(fd fd, cmd const[NOPE], arg ptr[in, s])\n");
        let consts = ConstDb::new();
        let l = LoweredDb::build(&db, &consts);
        let sys_idx = l.syscall_index("ioctl$X").unwrap();
        let ast_sys = db.syscall_at(sys_idx);
        let resolve = |r: &ResRef| r.fallback;
        let mut ast = MemBuilder::new(&db, &consts);
        let mut low = LoweredEncoder::new();
        // Unresolved const.
        let a = ast.encode_arg(&ast_sys.params[1].ty, &Value::Int(0), &resolve);
        let b = low.encode_arg(
            &l,
            l.syscall(sys_idx).params[1].ty,
            &Value::Int(0),
            &resolve,
        );
        assert_eq!(a, b);
        assert!(matches!(a, Err(EncodeError::UnresolvedConst(_))));
        // Unknown named type behind the pointer.
        let v = Value::ptr_to(Value::Group(vec![Value::Int(0)]));
        let a = ast.encode_arg(&ast_sys.params[2].ty, &v, &resolve);
        let b = low.encode_arg(&l, l.syscall(sys_idx).params[2].ty, &v, &resolve);
        assert_eq!(a, b);
        assert!(matches!(a, Err(EncodeError::Layout(_))));
        // Value-shape mismatch.
        let a = ast.encode_arg(&ast_sys.params[2].ty, &Value::Int(1), &resolve);
        let b = low.encode_arg(
            &l,
            l.syscall(sys_idx).params[2].ty,
            &Value::Int(1),
            &resolve,
        );
        assert_eq!(a, b);
        assert!(matches!(a, Err(EncodeError::Mismatch { .. })));
    }

    #[test]
    fn cfg_successors_predict_inside_at_end_and_outside_runs() {
        let table = CfgSuccessors::build(vec![
            // Out of order and with an empty row on purpose.
            CfgRun {
                start: 100,
                len: 4,
                next: Some(132),
            },
            CfgRun {
                start: 0,
                len: 0,
                next: Some(999),
            },
            CfgRun {
                start: 132,
                len: 2,
                next: None,
            },
        ]);
        assert_eq!(table.len(), 2, "empty rows dropped");
        // Inside a run: fall through.
        assert_eq!(table.predict(100), 101);
        assert_eq!(table.predict(102), 103);
        // Last block of a run with a fixed successor.
        assert_eq!(table.predict(103), 132);
        // Last block of a run without one: numerically next.
        assert_eq!(table.predict(133), 134);
        // Outside any run: numerically next (total function).
        assert_eq!(table.predict(50), 51);
        assert_eq!(table.predict(4096), 4097);
        assert_eq!(table.predict(u64::MAX), 0, "wraps instead of panicking");
    }

    #[test]
    fn cfg_successors_empty_table_predicts_next_id() {
        let table = CfgSuccessors::build(Vec::new());
        assert!(table.is_empty());
        assert_eq!(table.predict(7), 8);
    }
}
