//! Merged specification database.
//!
//! A [`SpecDb`] merges one or more [`SpecFile`]s, indexes every named
//! definition, seeds the builtin resources (`fd`, `pid`, `uid`, `gid`,
//! `sock`), and rewrites parser-produced [`Type::Named`] references that
//! name a resource into [`Type::Resource`] so downstream passes never
//! need to disambiguate.

use crate::ast::{
    Field, FlagsDef, IntBits, Item, Param, Resource, SpecFile, StructDef, Syscall, Type,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Builtin resources available without declaration, with their
/// underlying integer width.
pub const BUILTIN_RESOURCES: &[(&str, IntBits)] = &[
    ("fd", IntBits::I32),
    ("sock", IntBits::I32),
    ("pid", IntBits::I32),
    ("uid", IntBits::I32),
    ("gid", IntBits::I32),
];

/// A merged, indexed set of specification files.
///
/// Syscalls are additionally interned: every syscall has a stable
/// dense index (its rank in name order) so hot paths — the generator
/// and executor — can refer to calls by `u32` instead of cloning
/// names or whole `Syscall` ASTs per generated call.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpecDb {
    files: Vec<SpecFile>,
    structs: BTreeMap<String, StructDef>,
    resources: BTreeMap<String, Resource>,
    flags: BTreeMap<String, FlagsDef>,
    syscalls: BTreeMap<String, Syscall>,
    /// Syscalls in name order; `interned[i]` is the syscall with
    /// index `i`. Rebuilt by [`SpecDb::from_files`].
    interned: Vec<Syscall>,
}

impl SpecDb {
    /// Build a database from parsed files, resolving resource references.
    #[must_use]
    pub fn from_files(files: Vec<SpecFile>) -> SpecDb {
        let mut db = SpecDb::default();
        for (name, bits) in BUILTIN_RESOURCES {
            db.resources.insert(
                (*name).to_string(),
                Resource {
                    name: (*name).to_string(),
                    base: bits.keyword().to_string(),
                    values: Vec::new(),
                },
            );
        }
        // First pass: index declarations.
        for f in &files {
            for item in &f.items {
                match item {
                    Item::Resource(r) => {
                        db.resources.insert(r.name.clone(), r.clone());
                    }
                    Item::Struct(s) => {
                        db.structs.insert(s.name.clone(), s.clone());
                    }
                    Item::Flags(fl) => {
                        db.flags.insert(fl.name.clone(), fl.clone());
                    }
                    Item::Syscall(_) => {}
                }
            }
        }
        // Second pass: rewrite Named → Resource and index syscalls.
        let resource_names: Vec<String> = db.resources.keys().cloned().collect();
        let rewrite = |ty: &mut Type| rewrite_resources(ty, &resource_names);
        let mut files = files;
        for f in &mut files {
            for item in &mut f.items {
                match item {
                    Item::Syscall(s) => {
                        for Param { ty, .. } in &mut s.params {
                            rewrite(ty);
                        }
                    }
                    Item::Struct(s) => {
                        for Field { ty, .. } in &mut s.fields {
                            rewrite(ty);
                        }
                    }
                    _ => {}
                }
            }
        }
        // Re-index rewritten structs and syscalls.
        for f in &files {
            for item in &f.items {
                match item {
                    Item::Struct(s) => {
                        db.structs.insert(s.name.clone(), s.clone());
                    }
                    Item::Syscall(s) => {
                        db.syscalls.insert(s.name(), s.clone());
                    }
                    _ => {}
                }
            }
        }
        db.files = files;
        db.interned = db.syscalls.values().cloned().collect();
        db
    }

    /// Dense index of a syscall by full name (`ioctl$DM_VERSION`).
    /// Indices are stable for the lifetime of the database and rank
    /// syscalls in name order.
    #[must_use]
    pub fn syscall_index(&self, full_name: &str) -> Option<usize> {
        self.interned
            .binary_search_by(|s| s.name().as_str().cmp(full_name))
            .ok()
    }

    /// The syscall at a dense index (see [`SpecDb::syscall_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.syscall_count()`.
    #[must_use]
    pub fn syscall_at(&self, idx: usize) -> &Syscall {
        &self.interned[idx]
    }

    /// The merged source files (post resource-rewrite).
    #[must_use]
    pub fn files(&self) -> &[SpecFile] {
        &self.files
    }

    /// Look up a struct or union by name.
    #[must_use]
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Look up a resource by name (includes builtins).
    #[must_use]
    pub fn resource(&self, name: &str) -> Option<&Resource> {
        self.resources.get(name)
    }

    /// Look up a flag set by name.
    #[must_use]
    pub fn flags_def(&self, name: &str) -> Option<&FlagsDef> {
        self.flags.get(name)
    }

    /// Look up a syscall by full name (`ioctl$DM_VERSION`).
    #[must_use]
    pub fn syscall(&self, full_name: &str) -> Option<&Syscall> {
        self.syscalls.get(full_name)
    }

    /// All syscalls, in name order.
    pub fn syscalls(&self) -> impl Iterator<Item = &Syscall> {
        self.syscalls.values()
    }

    /// All declared (non-builtin) resources, in name order.
    pub fn resources(&self) -> impl Iterator<Item = &Resource> {
        self.resources
            .values()
            .filter(|r| !BUILTIN_RESOURCES.iter().any(|(b, _)| *b == r.name))
    }

    /// All struct/union definitions, in name order.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.structs.values()
    }

    /// All flag sets, in name order.
    pub fn flag_sets(&self) -> impl Iterator<Item = &FlagsDef> {
        self.flags.values()
    }

    /// Number of syscall descriptions.
    #[must_use]
    pub fn syscall_count(&self) -> usize {
        self.syscalls.len()
    }

    /// Number of struct/union type definitions.
    #[must_use]
    pub fn type_count(&self) -> usize {
        self.structs.len()
    }

    /// Resolve the underlying integer width of a resource, chasing
    /// resource-to-resource chains (`fd_dm` → `fd` → `int32`).
    ///
    /// Returns `None` on unknown or cyclic chains.
    #[must_use]
    pub fn resource_bits(&self, name: &str) -> Option<IntBits> {
        let mut cur = name;
        for _ in 0..32 {
            if let Some(bits) = IntBits::from_keyword(cur) {
                return Some(bits);
            }
            cur = &self.resources.get(cur)?.base;
        }
        None
    }

    /// Syscalls that *produce* the given resource (via return value or
    /// an `out`-directed resource-typed field).
    pub fn producers_of<'a>(&'a self, resource: &'a str) -> impl Iterator<Item = &'a Syscall> {
        self.syscalls.values().filter(move |s| {
            if s.ret.as_deref() == Some(resource) {
                return true;
            }
            s.params
                .iter()
                .any(|p| type_produces_resource(&p.ty, resource, self))
        })
    }
}

fn type_produces_resource(ty: &Type, resource: &str, db: &SpecDb) -> bool {
    match ty {
        Type::Ptr { dir, elem } => {
            if matches!(dir, crate::ast::Dir::Out | crate::ast::Dir::InOut) {
                pointee_produces(elem, resource, db, 0)
            } else {
                false
            }
        }
        _ => false,
    }
}

fn pointee_produces(ty: &Type, resource: &str, db: &SpecDb, depth: usize) -> bool {
    if depth > 8 {
        return false;
    }
    match ty {
        Type::Resource(n) => n == resource,
        Type::Named(n) => db.struct_def(n).is_some_and(|s| {
            s.fields
                .iter()
                .any(|f| pointee_produces(&f.ty, resource, db, depth + 1))
        }),
        Type::Array { elem, .. } => pointee_produces(elem, resource, db, depth + 1),
        Type::Ptr { elem, .. } => pointee_produces(elem, resource, db, depth + 1),
        _ => false,
    }
}

fn rewrite_resources(ty: &mut Type, resources: &[String]) {
    match ty {
        Type::Named(n) if resources.iter().any(|r| r == n) => {
            let name = n.clone();
            *ty = Type::Resource(name);
        }
        Type::Ptr { elem, .. } => rewrite_resources(elem, resources),
        Type::Array { elem, .. } => rewrite_resources(elem, resources),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn db(src: &str) -> SpecDb {
        SpecDb::from_files(vec![parse("t", src).unwrap()])
    }

    #[test]
    fn rewrites_resource_references() {
        let db =
            db("resource fd_dm[fd]\nioctl$X(fd fd_dm, cmd const[1], arg ptr[in, array[int8]])\n");
        let s = db.syscall("ioctl$X").unwrap();
        assert_eq!(s.params[0].ty, Type::Resource("fd_dm".into()));
    }

    #[test]
    fn builtin_fd_available() {
        let db = db("dup$x(old fd) fd\n");
        assert!(db.resource("fd").is_some());
        assert_eq!(db.resource_bits("fd"), Some(IntBits::I32));
    }

    #[test]
    fn resource_bits_chases_chain() {
        let db = db("resource fd_a[fd]\nresource fd_b[fd_a]\n");
        assert_eq!(db.resource_bits("fd_b"), Some(IntBits::I32));
        assert_eq!(db.resource_bits("nope"), None);
    }

    #[test]
    fn resource_bits_rejects_cycle() {
        let db = db("resource a[b]\nresource b[a]\n");
        assert_eq!(db.resource_bits("a"), None);
    }

    #[test]
    fn producers_by_return_and_out_field() {
        let src = r#"
resource fd_v[fd]
resource qid[int32]
openat$v(dir const[0], file ptr[in, string["/dev/v"]], flags const[2], mode const[0]) fd_v
ioctl$NEW(fd fd_v, cmd const[1], arg ptr[inout, q_new])
q_new {
    id qid (out)
}
"#;
        let db = db(src);
        let produced: Vec<String> = db.producers_of("qid").map(Syscall::name).collect();
        assert_eq!(produced, vec!["ioctl$NEW".to_string()]);
        let produced: Vec<String> = db.producers_of("fd_v").map(Syscall::name).collect();
        assert_eq!(produced, vec!["openat$v".to_string()]);
    }

    #[test]
    fn syscall_interning_round_trips() {
        let db = db("resource fd_v[fd]\nopenat$v(dir const[0], file ptr[in, string[\"/dev/v\"]], flags const[2], mode const[0]) fd_v\nioctl$A(fd fd_v, cmd const[1], arg ptr[in, array[int8]])\nioctl$B(fd fd_v, cmd const[2], arg ptr[in, array[int8]])\n");
        assert_eq!(db.syscall_count(), 3);
        for (i, s) in db.syscalls().enumerate() {
            let name = s.name();
            assert_eq!(db.syscall_index(&name), Some(i));
            assert_eq!(db.syscall_at(i).name(), name);
        }
        assert_eq!(db.syscall_index("ioctl$NOPE"), None);
    }

    #[test]
    fn counts() {
        let db = db("resource r[int32]\ns {\n\ta int8\n}\nu [\n\ta int8\n]\ncall$a(x int32)\n");
        assert_eq!(db.syscall_count(), 1);
        assert_eq!(db.type_count(), 2);
        assert_eq!(db.resources().count(), 1);
        assert_eq!(db.flag_sets().count(), 0);
    }
}
