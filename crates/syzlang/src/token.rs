//! Lexer for syzlang source text.
//!
//! syzlang is line-oriented: newlines terminate declarations, `#` starts
//! a comment running to end of line. The lexer therefore emits explicit
//! [`Tok::Newline`] tokens (collapsing blank runs) that the parser uses
//! as item/field separators.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`ioctl`, `ptr`, `in`, `int32`, …).
    Ident(String),
    /// Integer literal (decimal, `0x` hex, or `-1` negative mapped to two's complement).
    Num(u64),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `$`
    Dollar,
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// End of line (one token per run of newlines).
    Newline,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrack => f.write_str("`[`"),
            Tok::RBrack => f.write_str("`]`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dollar => f.write_str("`$`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Newline => f.write_str("end of line"),
        }
    }
}

/// A token with its 1-based source line, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize syzlang source text.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, malformed numbers, or
/// characters outside the syzlang alphabet.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let push = |out: &mut Vec<Spanned>, tok: Tok, line: u32| out.push(Spanned { tok, line });

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                if !matches!(
                    out.last(),
                    None | Some(Spanned {
                        tok: Tok::Newline,
                        ..
                    })
                ) {
                    push(&mut out, Tok::Newline, line);
                }
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(&mut out, Tok::LParen, line);
                i += 1;
            }
            ')' => {
                push(&mut out, Tok::RParen, line);
                i += 1;
            }
            '[' => {
                push(&mut out, Tok::LBrack, line);
                i += 1;
            }
            ']' => {
                push(&mut out, Tok::RBrack, line);
                i += 1;
            }
            '{' => {
                push(&mut out, Tok::LBrace, line);
                i += 1;
            }
            '}' => {
                push(&mut out, Tok::RBrace, line);
                i += 1;
            }
            ',' => {
                push(&mut out, Tok::Comma, line);
                i += 1;
            }
            '$' => {
                push(&mut out, Tok::Dollar, line);
                i += 1;
            }
            '=' => {
                push(&mut out, Tok::Eq, line);
                i += 1;
            }
            ':' => {
                push(&mut out, Tok::Colon, line);
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'"' {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line,
                    });
                }
                push(
                    &mut out,
                    Tok::Str(String::from_utf8_lossy(&bytes[start..j]).into_owned()),
                    line,
                );
                i = j + 1;
            }
            '-' => {
                // Negative literal: two's-complement u64 (syzlang `: -1`).
                let (n, next) = lex_number(bytes, i + 1, line)?;
                push(&mut out, Tok::Num((n as i64).wrapping_neg() as u64), line);
                i = next;
            }
            '0'..='9' => {
                let (n, next) = lex_number(bytes, i, line)?;
                push(&mut out, Tok::Num(n), line);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '/' || c == '.' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '/' || b == '.' || b == '-' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                push(
                    &mut out,
                    Tok::Ident(String::from_utf8_lossy(&bytes[start..j]).into_owned()),
                    line,
                );
                i = j;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                });
            }
        }
    }
    if !matches!(
        out.last(),
        None | Some(Spanned {
            tok: Tok::Newline,
            ..
        })
    ) {
        out.push(Spanned {
            tok: Tok::Newline,
            line,
        });
    }
    Ok(out)
}

fn lex_number(bytes: &[u8], start: usize, line: u32) -> Result<(u64, usize), LexError> {
    let mut i = start;
    let (radix, digits_start) =
        if i + 1 < bytes.len() && bytes[i] == b'0' && (bytes[i + 1] | 0x20) == b'x' {
            (16, i + 2)
        } else {
            (10, i)
        };
    i = digits_start;
    let mut value: u64 = 0;
    let mut any = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let d = match c.to_digit(radix) {
            Some(d) => d,
            None => break,
        };
        value = value
            .checked_mul(u64::from(radix))
            .and_then(|v| v.checked_add(u64::from(d)))
            .ok_or_else(|| LexError {
                message: "integer literal overflows u64".into(),
                line,
            })?;
        any = true;
        i += 1;
    }
    if !any {
        return Err(LexError {
            message: "malformed integer literal".into(),
            line,
        });
    }
    Ok((value, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_syscall_line() {
        let t = toks("ioctl$DM(fd fd_dm, cmd const[0x10])");
        assert_eq!(
            t,
            vec![
                Tok::Ident("ioctl".into()),
                Tok::Dollar,
                Tok::Ident("DM".into()),
                Tok::LParen,
                Tok::Ident("fd".into()),
                Tok::Ident("fd_dm".into()),
                Tok::Comma,
                Tok::Ident("cmd".into()),
                Tok::Ident("const".into()),
                Tok::LBrack,
                Tok::Num(16),
                Tok::RBrack,
                Tok::RParen,
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn collapses_blank_lines_and_comments() {
        let t = toks("a\n\n# comment only\n\nb");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Newline,
                Tok::Ident("b".into()),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn lexes_strings_and_paths() {
        let t = toks(r#"file ptr[in, string["/dev/mapper/control"]]"#);
        assert!(t.contains(&Tok::Str("/dev/mapper/control".into())));
    }

    #[test]
    fn lexes_negative_and_hex() {
        assert_eq!(toks("-1")[0], Tok::Num(u64::MAX));
        assert_eq!(toks("0xff")[0], Tok::Num(255));
        assert_eq!(toks("0XFF")[0], Tok::Num(255));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a ^ b").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a\nb\nc").unwrap();
        let c = spanned
            .iter()
            .find(|s| s.tok == Tok::Ident("c".into()))
            .unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn overflow_is_reported() {
        assert!(lex("0xffffffffffffffffff").is_err());
    }
}
