//! Specification validation — the analogue of `syz-extract` +
//! `syz-generate` error reporting used by KernelGPT's repair phase
//! (§3.2 of the paper).
//!
//! The validator reports the same error classes the paper lists:
//! undefined types, wrong macro (constant) names, unmatched resource
//! dependencies, plus structural problems (bad `len` targets, wrong
//! arity for known syscalls, non-scalar register arguments, recursive
//! types, empty structs, duplicate definitions).

use crate::ast::{ConstExpr, Field, Item, Param, StructDef, Syscall, Type};
use crate::consts::ConstDb;
use crate::db::SpecDb;
use crate::layout::{struct_layout, LayoutError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Category of a specification error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecErrorKind {
    /// A named struct/union/resource is not defined anywhere.
    UndefinedType(String),
    /// A symbolic constant (kernel macro) is not in the const database.
    UnknownConst(String),
    /// The same name is defined more than once.
    DuplicateDefinition(String),
    /// `len[target]`/`bytesize[target]` names no sibling field/param.
    BadLenTarget(String),
    /// A consumed resource has no producing syscall.
    UnproducedResource(String),
    /// A flags type references an undefined flag set.
    UnknownFlagSet(String),
    /// Type recursion without indirection.
    RecursiveType(String),
    /// A struct or union with no fields.
    EmptyStruct(String),
    /// A known syscall has the wrong number of parameters.
    BadArgCount {
        /// Parameters the base syscall requires.
        expected: usize,
        /// Parameters found in the description.
        found: usize,
    },
    /// A register argument has a non-scalar type (must be int-like or ptr).
    NonScalarArg(String),
}

impl fmt::Display for SpecErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecErrorKind::UndefinedType(n) => write!(f, "type `{n}` is not defined"),
            SpecErrorKind::UnknownConst(n) => write!(f, "constant `{n}` is not defined"),
            SpecErrorKind::DuplicateDefinition(n) => write!(f, "`{n}` is defined multiple times"),
            SpecErrorKind::BadLenTarget(t) => {
                write!(f, "len target `{t}` does not name a sibling")
            }
            SpecErrorKind::UnproducedResource(r) => {
                write!(f, "resource `{r}` is consumed but never produced")
            }
            SpecErrorKind::UnknownFlagSet(n) => write!(f, "flag set `{n}` is not defined"),
            SpecErrorKind::RecursiveType(n) => {
                write!(f, "type `{n}` is recursive without a pointer")
            }
            SpecErrorKind::EmptyStruct(n) => write!(f, "struct `{n}` has no fields"),
            SpecErrorKind::BadArgCount { expected, found } => {
                write!(f, "expected {expected} arguments, found {found}")
            }
            SpecErrorKind::NonScalarArg(p) => {
                write!(f, "argument `{p}` must be an integer, resource or pointer")
            }
        }
    }
}

/// A validation error attached to the item it occurred in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecError {
    /// Error category.
    pub kind: SpecErrorKind,
    /// Name of the item (syscall, struct, resource) the error belongs to.
    pub item: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.item, self.kind)
    }
}

impl std::error::Error for SpecError {}

/// Required parameter counts for the syscall bases the virtual kernel
/// implements. Descriptions of unknown bases skip the arity check.
pub const ARITY: &[(&str, usize)] = &[
    ("openat", 4),
    ("open", 3),
    ("ioctl", 3),
    ("read", 3),
    ("write", 3),
    ("close", 1),
    ("mmap", 6),
    ("dup", 1),
    ("socket", 3),
    ("bind", 3),
    ("connect", 3),
    ("accept", 3),
    ("setsockopt", 5),
    ("getsockopt", 5),
    ("sendto", 6),
    ("recvfrom", 6),
    ("sendmsg", 3),
    ("recvmsg", 3),
    ("poll", 3),
];

/// Validate a database against a constant table.
///
/// Returns all errors found (empty when the specification is valid).
#[must_use]
pub fn validate(db: &SpecDb, consts: &ConstDb) -> Vec<SpecError> {
    let mut errors = Vec::new();
    check_duplicates(db, &mut errors);
    for s in db.syscalls() {
        check_syscall(s, db, consts, &mut errors);
    }
    for def in db.structs() {
        check_struct(def, db, consts, &mut errors);
    }
    for r in db.resources() {
        if db.resource_bits(&r.name).is_none() {
            errors.push(SpecError {
                kind: SpecErrorKind::UndefinedType(r.base.clone()),
                item: r.name.clone(),
            });
        }
    }
    for fl in db.flag_sets() {
        for v in &fl.values {
            check_const(v, consts, &fl.name, &mut errors);
        }
    }
    check_resource_production(db, &mut errors);
    errors
}

fn check_duplicates(db: &SpecDb, errors: &mut Vec<SpecError>) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut seen_resources: Vec<&crate::ast::Resource> = Vec::new();
    for f in db.files() {
        for item in &f.items {
            let name = item.name();
            // Identical resource redeclarations are tolerated: suite
            // files each declare the shared resources they produce.
            if let Item::Resource(r) = item {
                if let Some(prev) = seen_resources.iter().find(|p| p.name == r.name) {
                    if *prev != r {
                        errors.push(SpecError {
                            kind: SpecErrorKind::DuplicateDefinition(name.clone()),
                            item: name,
                        });
                    }
                    continue;
                }
                seen_resources.push(r);
                continue;
            }
            // Syscalls and types live in different namespaces.
            let key = match item {
                Item::Syscall(_) => format!("call:{name}"),
                _ => format!("type:{name}"),
            };
            if !seen.insert(key) {
                errors.push(SpecError {
                    kind: SpecErrorKind::DuplicateDefinition(name.clone()),
                    item: name,
                });
            }
        }
    }
}

fn check_syscall(s: &Syscall, db: &SpecDb, consts: &ConstDb, errors: &mut Vec<SpecError>) {
    let item = s.name();
    if let Some((_, expected)) = ARITY.iter().find(|(b, _)| *b == s.base) {
        if s.params.len() != *expected {
            errors.push(SpecError {
                kind: SpecErrorKind::BadArgCount {
                    expected: *expected,
                    found: s.params.len(),
                },
                item: item.clone(),
            });
        }
    }
    let siblings: Vec<&str> = s.params.iter().map(|p| p.name.as_str()).collect();
    for Param { name, ty } in &s.params {
        if !is_register_type(ty) {
            errors.push(SpecError {
                kind: SpecErrorKind::NonScalarArg(name.clone()),
                item: item.clone(),
            });
        }
        check_type(ty, db, consts, &item, &siblings, errors);
    }
    if let Some(ret) = &s.ret {
        if db.resource(ret).is_none() {
            errors.push(SpecError {
                kind: SpecErrorKind::UndefinedType(ret.clone()),
                item: item.clone(),
            });
        }
    }
}

fn is_register_type(ty: &Type) -> bool {
    matches!(
        ty,
        Type::Int { .. }
            | Type::Const { .. }
            | Type::Flags { .. }
            | Type::Len { .. }
            | Type::Bytesize { .. }
            | Type::Proc { .. }
            | Type::Resource(_)
            | Type::Ptr { .. }
    )
}

fn check_struct(def: &StructDef, db: &SpecDb, consts: &ConstDb, errors: &mut Vec<SpecError>) {
    if def.fields.is_empty() {
        errors.push(SpecError {
            kind: SpecErrorKind::EmptyStruct(def.name.clone()),
            item: def.name.clone(),
        });
        return;
    }
    match struct_layout(def, db) {
        Err(LayoutError::Recursive(n)) => errors.push(SpecError {
            kind: SpecErrorKind::RecursiveType(n),
            item: def.name.clone(),
        }),
        // Unknown types are reported with precise context below.
        Err(LayoutError::UnknownType(_)) | Ok(_) => {}
    }
    let siblings: Vec<&str> = def.fields.iter().map(|f| f.name.as_str()).collect();
    for Field { ty, .. } in &def.fields {
        check_type(ty, db, consts, &def.name, &siblings, errors);
    }
}

fn check_type(
    ty: &Type,
    db: &SpecDb,
    consts: &ConstDb,
    item: &str,
    siblings: &[&str],
    errors: &mut Vec<SpecError>,
) {
    match ty {
        Type::Const { value, .. } => check_const(value, consts, item, errors),
        Type::Flags { set, .. } if db.flags_def(set).is_none() => {
            errors.push(SpecError {
                kind: SpecErrorKind::UnknownFlagSet(set.clone()),
                item: item.to_string(),
            });
        }
        Type::Len { target, .. } | Type::Bytesize { target, .. }
            if !siblings.contains(&target.as_str()) =>
        {
            errors.push(SpecError {
                kind: SpecErrorKind::BadLenTarget(target.clone()),
                item: item.to_string(),
            });
        }
        Type::Resource(name) if db.resource(name).is_none() => {
            errors.push(SpecError {
                kind: SpecErrorKind::UndefinedType(name.clone()),
                item: item.to_string(),
            });
        }
        Type::Named(name) if db.struct_def(name).is_none() && db.resource(name).is_none() => {
            errors.push(SpecError {
                kind: SpecErrorKind::UndefinedType(name.clone()),
                item: item.to_string(),
            });
        }
        Type::Ptr { elem, .. } => check_type(elem, db, consts, item, siblings, errors),
        Type::Array { elem, .. } => check_type(elem, db, consts, item, siblings, errors),
        _ => {}
    }
}

fn check_const(value: &ConstExpr, consts: &ConstDb, item: &str, errors: &mut Vec<SpecError>) {
    if let ConstExpr::Sym(name) = value {
        if !consts.contains(name) {
            errors.push(SpecError {
                kind: SpecErrorKind::UnknownConst(name.clone()),
                item: item.to_string(),
            });
        }
    }
}

fn check_resource_production(db: &SpecDb, errors: &mut Vec<SpecError>) {
    // A resource consumed by some syscall must be produced by some
    // syscall; builtins (plain `fd`, `sock`, …) are exempt because the
    // kernel provides generic producers.
    let mut consumed: BTreeSet<&str> = BTreeSet::new();
    for s in db.syscalls() {
        for p in &s.params {
            collect_consumed(&p.ty, &mut consumed);
        }
    }
    for r in db.resources() {
        if consumed.contains(r.name.as_str()) && db.producers_of(&r.name).next().is_none() {
            errors.push(SpecError {
                kind: SpecErrorKind::UnproducedResource(r.name.clone()),
                item: r.name.clone(),
            });
        }
    }
}

fn collect_consumed<'a>(ty: &'a Type, out: &mut BTreeSet<&'a str>) {
    match ty {
        Type::Resource(n) => {
            out.insert(n);
        }
        Type::Ptr { elem, dir } => {
            // Out-pointers *produce* the resource; only in/inout consume.
            if matches!(dir, crate::ast::Dir::In | crate::ast::Dir::InOut) {
                collect_consumed(elem, out);
            }
        }
        Type::Array { elem, .. } => collect_consumed(elem, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str, consts: &[(&str, u64)]) -> Vec<SpecError> {
        let db = SpecDb::from_files(vec![parse("t", src).unwrap()]);
        let mut cdb = ConstDb::new();
        for (k, v) in consts {
            cdb.define(*k, *v);
        }
        validate(&db, &cdb)
    }

    fn kinds(errors: &[SpecError]) -> Vec<&SpecErrorKind> {
        errors.iter().map(|e| &e.kind).collect()
    }

    #[test]
    fn valid_spec_has_no_errors() {
        let src = r#"
resource fd_dm[fd]
openat$dm(dir const[AT_FDCWD], file ptr[in, string["/dev/mapper/control"]], flags const[2], mode const[0]) fd_dm
ioctl$DM_VERSION(fd fd_dm, cmd const[DM_VERSION], arg ptr[inout, dm_ioctl])
dm_ioctl {
    version array[int32, 3]
    data_size int32
}
"#;
        let errs = check(
            src,
            &[("AT_FDCWD", 0xffff_ff9c), ("DM_VERSION", 0xc138_fd00)],
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn undefined_type_detected() {
        let errs = check("ioctl$X(fd fd, cmd const[1], arg ptr[in, mystery])\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::UndefinedType("mystery".into())));
    }

    #[test]
    fn unknown_const_detected() {
        let errs = check(
            "ioctl$X(fd fd, cmd const[NOT_A_MACRO], arg ptr[in, array[int8]])\n",
            &[],
        );
        assert!(kinds(&errs).contains(&&SpecErrorKind::UnknownConst("NOT_A_MACRO".into())));
    }

    #[test]
    fn bad_len_target_detected() {
        let errs = check("s {\n\tn len[nothing, int32]\n\ta int8\n}\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::BadLenTarget("nothing".into())));
    }

    #[test]
    fn len_target_on_params_ok() {
        let errs = check(
            "write$x(fd fd, buf ptr[in, array[int8]], count len[buf])\n",
            &[],
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn unproduced_resource_detected() {
        let errs = check(
            "resource fd_x[fd]\nioctl$A(fd fd_x, cmd const[1], arg ptr[in, array[int8]])\n",
            &[],
        );
        assert!(kinds(&errs).contains(&&SpecErrorKind::UnproducedResource("fd_x".into())));
    }

    #[test]
    fn produced_resource_ok() {
        let src = r#"
resource fd_x[fd]
openat$x(dir const[0], file ptr[in, string["/dev/x"]], flags const[2], mode const[0]) fd_x
ioctl$A(fd fd_x, cmd const[1], arg ptr[in, array[int8]])
"#;
        assert!(check(src, &[]).is_empty());
    }

    #[test]
    fn builtin_fd_needs_no_producer() {
        assert!(check(
            "read$x(fd fd, buf ptr[out, array[int8]], count len[buf])\n",
            &[]
        )
        .is_empty());
    }

    #[test]
    fn wrong_arity_detected() {
        let errs = check("ioctl$X(fd fd, cmd const[1])\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::BadArgCount {
            expected: 3,
            found: 2
        }));
    }

    #[test]
    fn non_scalar_arg_detected() {
        let errs = check("ioctl$X(fd fd, cmd const[1], arg array[int8])\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::NonScalarArg("arg".into())));
    }

    #[test]
    fn unknown_flag_set_detected() {
        let errs = check("open$x(f flags[nope], m const[0], z const[0])\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::UnknownFlagSet("nope".into())));
    }

    #[test]
    fn duplicate_definitions_detected() {
        let errs = check("s {\n\ta int8\n}\ns {\n\tb int8\n}\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::DuplicateDefinition("s".into())));
    }

    #[test]
    fn empty_struct_detected() {
        let errs = check("s {\n}\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::EmptyStruct("s".into())));
    }

    #[test]
    fn recursive_type_detected() {
        let errs = check("a {\n\tnext a\n}\n", &[]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::RecursiveType("a".into())));
    }

    #[test]
    fn flag_values_must_resolve() {
        let errs = check("myflags = KNOWN, UNKNOWN_MACRO\n", &[("KNOWN", 1)]);
        assert!(kinds(&errs).contains(&&SpecErrorKind::UnknownConst("UNKNOWN_MACRO".into())));
    }

    #[test]
    fn error_display_is_informative() {
        let e = SpecError {
            kind: SpecErrorKind::UndefinedType("dm_ioctl".into()),
            item: "ioctl$DM".into(),
        };
        assert_eq!(
            e.to_string(),
            "in `ioctl$DM`: type `dm_ioctl` is not defined"
        );
    }
}
