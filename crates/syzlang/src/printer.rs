//! Pretty-printer producing canonical syzlang text from an AST.
//!
//! `parse(print_file(f))` round-trips modulo whitespace; this is tested
//! by unit tests here and by property tests in `tests/`.

use crate::ast::{
    ArrayLen, ConstExpr, Field, FlagsDef, IntBits, Item, Resource, SpecFile, StructDef, Syscall,
    Type,
};
use std::fmt::Write as _;

/// Render a whole specification file as syzlang text.
#[must_use]
pub fn print_file(file: &SpecFile) -> String {
    let mut out = String::new();
    for item in &file.items {
        out.push_str(&print_item(item));
    }
    out
}

/// Render a single item (with trailing newline).
#[must_use]
pub fn print_item(item: &Item) -> String {
    match item {
        Item::Resource(r) => print_resource(r),
        Item::Syscall(s) => print_syscall(s),
        Item::Struct(s) => print_struct(s),
        Item::Flags(f) => print_flags(f),
    }
}

fn print_resource(r: &Resource) -> String {
    let mut s = format!("resource {}[{}]", r.name, r.base);
    if !r.values.is_empty() {
        s.push_str(" : ");
        s.push_str(&join_consts(&r.values));
    }
    s.push('\n');
    s
}

fn print_flags(f: &FlagsDef) -> String {
    format!("{} = {}\n", f.name, join_consts(&f.values))
}

fn join_consts(values: &[ConstExpr]) -> String {
    values
        .iter()
        .map(ConstExpr::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render a syscall description line.
#[must_use]
pub fn print_syscall(s: &Syscall) -> String {
    let mut out = s.name();
    out.push('(');
    let params: Vec<String> = s
        .params
        .iter()
        .map(|p| format!("{} {}", p.name, print_type(&p.ty)))
        .collect();
    out.push_str(&params.join(", "));
    out.push(')');
    if let Some(ret) = &s.ret {
        let _ = write!(out, " {ret}");
    }
    out.push('\n');
    out
}

fn print_struct(s: &StructDef) -> String {
    let (open, close) = if s.is_union { ('[', ']') } else { ('{', '}') };
    let mut out = format!("{} {open}\n", s.name);
    for f in &s.fields {
        out.push_str(&print_field(f));
    }
    out.push(close);
    if s.packed {
        out.push_str(" [packed]");
    }
    out.push('\n');
    out
}

fn print_field(f: &Field) -> String {
    let mut line = format!("\t{} {}", f.name, print_type(&f.ty));
    if let Some(d) = f.dir {
        let _ = write!(line, " ({})", d.keyword());
    }
    line.push('\n');
    line
}

/// Render a type expression.
#[must_use]
pub fn print_type(ty: &Type) -> String {
    match ty {
        Type::Int { bits, range: None } => bits.keyword().to_string(),
        Type::Int {
            bits,
            range: Some((lo, hi)),
        } => format!("{}[{}:{}]", bits.keyword(), lo, hi),
        Type::Const { value, bits } => {
            if *bits == IntBits::I64 {
                format!("const[{value}]")
            } else {
                format!("const[{value}, {}]", bits.keyword())
            }
        }
        Type::Flags { set, bits } => {
            if *bits == IntBits::I64 {
                format!("flags[{set}]")
            } else {
                format!("flags[{set}, {}]", bits.keyword())
            }
        }
        Type::StringLit { values } => {
            let inner: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
            format!("string[{}]", inner.join(", "))
        }
        Type::Ptr { dir, elem } => format!("ptr[{}, {}]", dir.keyword(), print_type(elem)),
        Type::Array { elem, len } => match len {
            ArrayLen::Unsized => format!("array[{}]", print_type(elem)),
            ArrayLen::Fixed(n) => format!("array[{}, {n}]", print_type(elem)),
            ArrayLen::Range(a, b) => format!("array[{}, {a}:{b}]", print_type(elem)),
        },
        Type::Len { target, bits } => {
            if *bits == IntBits::I64 {
                format!("len[{target}]")
            } else {
                format!("len[{target}, {}]", bits.keyword())
            }
        }
        Type::Bytesize { target, bits } => {
            if *bits == IntBits::I64 {
                format!("bytesize[{target}]")
            } else {
                format!("bytesize[{target}, {}]", bits.keyword())
            }
        }
        Type::Resource(n) | Type::Named(n) => n.clone(),
        Type::Proc { start, per, bits } => {
            if *bits == IntBits::I64 {
                format!("proc[{start}, {per}]")
            } else {
                format!("proc[{start}, {per}, {}]", bits.keyword())
            }
        }
        Type::Void => "void".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let f1 = parse("t", src).unwrap();
        let printed = print_file(&f1);
        let f2 = parse("t", &printed).unwrap();
        // Resource/Named distinction is applied by SpecDb, not the parser,
        // so the re-parse must match item-for-item.
        assert_eq!(f1.items, f2.items, "printed:\n{printed}");
    }

    #[test]
    fn round_trips_syscalls() {
        round_trip(
            "ioctl$DM_VERSION(fd fd_dm, cmd const[DM_VERSION], arg ptr[inout, dm_ioctl]) fd_out\n",
        );
    }

    #[test]
    fn round_trips_structs_and_unions() {
        round_trip(
            "dm_ioctl {\n\tversion array[int32, 3]\n\tdata_size int32\n\tname string[\"x\"]\n}\n\
             u [\n\ta int32\n\tb array[int8, 0:16]\n]\n",
        );
    }

    #[test]
    fn round_trips_resources_and_flags() {
        round_trip("resource fd_dm[fd] : -1\nopen_flags = O_RDONLY, O_WRONLY, 0x2\n");
    }

    #[test]
    fn round_trips_packed_and_proc() {
        round_trip("p {\n\ta int8\n\tb proc[100, 4, int16]\n} [packed]\n");
    }

    #[test]
    fn const_width_elided_only_for_default() {
        assert_eq!(
            print_type(&Type::Const {
                value: ConstExpr::Num(2),
                bits: IntBits::I32
            }),
            "const[0x2, int32]"
        );
        assert_eq!(
            print_type(&Type::Const {
                value: ConstExpr::Sym("X".into()),
                bits: IntBits::I64
            }),
            "const[X]"
        );
    }
}
