//! C-compatible size/alignment/offset computation for syzlang types.
//!
//! The virtual kernel decodes argument buffers with ordinary C struct
//! layout rules (natural alignment, trailing padding to the struct's
//! alignment, unions sized to their largest arm). The encoder in
//! [`crate::value`] uses the same rules, so a spec whose types match the
//! kernel's structs produces byte-identical buffers.

use crate::ast::{ArrayLen, IntBits, StructDef, Type};
use crate::db::SpecDb;
use std::fmt;

/// Computed size and alignment of a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Size in bytes. For dynamically-sized types (unsized arrays,
    /// strings) this is the *minimum* size; `dynamic` is set.
    pub size: u64,
    /// Alignment in bytes (power of two).
    pub align: u64,
    /// Whether the actual size depends on the value.
    pub dynamic: bool,
}

impl Layout {
    fn fixed(size: u64, align: u64) -> Layout {
        Layout {
            size,
            align,
            dynamic: false,
        }
    }
}

/// Error produced while computing a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A named type was not found in the database.
    UnknownType(String),
    /// Type recursion without an intervening pointer (infinite size).
    Recursive(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnknownType(n) => write!(f, "unknown type `{n}`"),
            LayoutError::Recursive(n) => write!(f, "type `{n}` is recursive without indirection"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Compute the layout of a type.
///
/// # Errors
///
/// Returns [`LayoutError`] if a referenced type is undefined or the type
/// is recursive without a pointer.
pub fn type_layout(ty: &Type, db: &SpecDb) -> Result<Layout, LayoutError> {
    layout_inner(ty, db, &mut Vec::new())
}

/// Compute the layout of a struct or union definition.
///
/// # Errors
///
/// Same conditions as [`type_layout`].
pub fn struct_layout(def: &StructDef, db: &SpecDb) -> Result<Layout, LayoutError> {
    struct_layout_inner(def, db, &mut Vec::new())
}

/// Byte offsets of every field of a (non-union) struct, plus the total
/// size, under the same rules as [`struct_layout`].
///
/// For unions every offset is zero.
///
/// # Errors
///
/// Same conditions as [`type_layout`].
pub fn field_offsets(def: &StructDef, db: &SpecDb) -> Result<(Vec<u64>, u64), LayoutError> {
    let mut stack = Vec::new();
    if def.is_union {
        let l = struct_layout_inner(def, db, &mut stack)?;
        return Ok((vec![0; def.fields.len()], l.size));
    }
    let mut offsets = Vec::with_capacity(def.fields.len());
    let mut off: u64 = 0;
    let mut max_align: u64 = 1;
    for f in &def.fields {
        let l = layout_inner(&f.ty, db, &mut stack)?;
        let align = if def.packed { 1 } else { l.align };
        off = round_up(off, align);
        offsets.push(off);
        off += l.size;
        max_align = max_align.max(align);
    }
    let total = round_up(off.max(1), if def.packed { 1 } else { max_align });
    Ok((offsets, total))
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

fn int_layout(bits: IntBits) -> Layout {
    Layout::fixed(bits.size(), bits.size())
}

fn layout_inner(ty: &Type, db: &SpecDb, stack: &mut Vec<String>) -> Result<Layout, LayoutError> {
    Ok(match ty {
        Type::Int { bits, .. }
        | Type::Const { bits, .. }
        | Type::Flags { bits, .. }
        | Type::Len { bits, .. }
        | Type::Bytesize { bits, .. }
        | Type::Proc { bits, .. } => int_layout(*bits),
        Type::Ptr { .. } => Layout::fixed(8, 8),
        Type::Void => Layout::fixed(0, 1),
        Type::StringLit { values } => {
            let min = values.iter().map(|v| v.len() as u64 + 1).min().unwrap_or(1);
            Layout {
                size: min,
                align: 1,
                dynamic: true,
            }
        }
        Type::Array { elem, len } => {
            let e = layout_inner(elem, db, stack)?;
            match len {
                ArrayLen::Fixed(n) => Layout {
                    size: e.size * n,
                    align: e.align,
                    dynamic: e.dynamic,
                },
                ArrayLen::Range(lo, _) => Layout {
                    size: e.size * lo,
                    align: e.align,
                    dynamic: true,
                },
                ArrayLen::Unsized => Layout {
                    size: 0,
                    align: e.align,
                    dynamic: true,
                },
            }
        }
        Type::Resource(name) => {
            let bits = db
                .resource_bits(name)
                .ok_or_else(|| LayoutError::UnknownType(name.clone()))?;
            int_layout(bits)
        }
        Type::Named(name) => {
            let def = db
                .struct_def(name)
                .ok_or_else(|| LayoutError::UnknownType(name.clone()))?;
            if stack.iter().any(|s| s == name) {
                return Err(LayoutError::Recursive(name.clone()));
            }
            stack.push(name.clone());
            let l = struct_layout_inner(def, db, stack)?;
            stack.pop();
            l
        }
    })
}

fn struct_layout_inner(
    def: &StructDef,
    db: &SpecDb,
    stack: &mut Vec<String>,
) -> Result<Layout, LayoutError> {
    let mut size: u64 = 0;
    let mut align: u64 = 1;
    let mut dynamic = false;
    for f in &def.fields {
        let l = layout_inner(&f.ty, db, stack)?;
        let a = if def.packed { 1 } else { l.align };
        align = align.max(a);
        dynamic |= l.dynamic;
        if def.is_union {
            size = size.max(l.size);
        } else {
            size = round_up(size, a) + l.size;
        }
    }
    let size = round_up(size.max(if def.fields.is_empty() { 0 } else { 1 }), align);
    Ok(Layout {
        size,
        align,
        dynamic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn db(src: &str) -> SpecDb {
        SpecDb::from_files(vec![parse("t", src).unwrap()])
    }

    #[test]
    fn scalar_layouts() {
        let db = SpecDb::from_files(vec![]);
        let l = type_layout(&Type::int(IntBits::I32), &db).unwrap();
        assert_eq!((l.size, l.align), (4, 4));
        let l = type_layout(&Type::ptr(crate::ast::Dir::In, Type::Void), &db).unwrap();
        assert_eq!((l.size, l.align), (8, 8));
        let l = type_layout(&Type::Void, &db).unwrap();
        assert_eq!(l.size, 0);
    }

    #[test]
    fn c_struct_padding() {
        // struct { u8 a; u32 b; u16 c; } → a@0, b@4, c@8, size 12.
        let db = db("s {\n\ta int8\n\tb int32\n\tc int16\n}\n");
        let def = db.struct_def("s").unwrap();
        let (offs, size) = field_offsets(def, &db).unwrap();
        assert_eq!(offs, vec![0, 4, 8]);
        assert_eq!(size, 12);
    }

    #[test]
    fn packed_struct_no_padding() {
        let db = db("s {\n\ta int8\n\tb int32\n} [packed]\n");
        let def = db.struct_def("s").unwrap();
        let (offs, size) = field_offsets(def, &db).unwrap();
        assert_eq!(offs, vec![0, 1]);
        assert_eq!(size, 5);
    }

    #[test]
    fn union_is_max_of_arms() {
        let db = db("u [\n\ta int16\n\tb array[int8, 7]\n\tc int64\n]\n");
        let l = struct_layout(db.struct_def("u").unwrap(), &db).unwrap();
        assert_eq!((l.size, l.align), (8, 8));
        let (offs, _) = field_offsets(db.struct_def("u").unwrap(), &db).unwrap();
        assert_eq!(offs, vec![0, 0, 0]);
    }

    #[test]
    fn nested_struct_layout() {
        let db = db("inner {\n\ta int64\n}\nouter {\n\tx int8\n\ti inner\n}\n");
        let (offs, size) = field_offsets(db.struct_def("outer").unwrap(), &db).unwrap();
        assert_eq!(offs, vec![0, 8]);
        assert_eq!(size, 16);
    }

    #[test]
    fn unsized_array_is_dynamic() {
        let db = db("s {\n\tn int32\n\tdata array[int8]\n}\n");
        let l = struct_layout(db.struct_def("s").unwrap(), &db).unwrap();
        assert!(l.dynamic);
        assert_eq!(l.size, 4);
    }

    #[test]
    fn recursion_without_ptr_rejected() {
        let db = db("a {\n\tnext a\n}\n");
        assert_eq!(
            struct_layout(db.struct_def("a").unwrap(), &db),
            Err(LayoutError::Recursive("a".into()))
        );
    }

    #[test]
    fn recursion_behind_ptr_ok() {
        let db = db("a {\n\tnext ptr[in, a]\n\tv int32\n}\n");
        let l = struct_layout(db.struct_def("a").unwrap(), &db).unwrap();
        assert_eq!(l.size, 16);
    }

    #[test]
    fn unknown_type_reported() {
        let db = db("s {\n\tx mystery\n}\n");
        assert_eq!(
            struct_layout(db.struct_def("s").unwrap(), &db),
            Err(LayoutError::UnknownType("mystery".into()))
        );
    }

    #[test]
    fn resource_layout_uses_underlying() {
        let db = db("resource fd_x[fd]\ns {\n\tf fd_x\n\tpad int32\n}\n");
        let (offs, size) = field_offsets(db.struct_def("s").unwrap(), &db).unwrap();
        assert_eq!(offs, vec![0, 4]);
        assert_eq!(size, 8);
    }

    #[test]
    fn fixed_array_layout() {
        let db = SpecDb::from_files(vec![]);
        let ty = Type::Array {
            elem: Box::new(Type::int(IntBits::I32)),
            len: ArrayLen::Fixed(3),
        };
        let l = type_layout(&ty, &db).unwrap();
        assert_eq!((l.size, l.align, l.dynamic), (12, 4, false));
    }
}
