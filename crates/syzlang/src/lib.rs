//! # kgpt-syzlang
//!
//! An implementation of (a substantial subset of) **syzlang**, the
//! syscall-description language used by [Syzkaller], as required by the
//! KernelGPT reproduction (ASPLOS '25).
//!
//! The crate provides:
//!
//! * an [`ast`] module modelling specification files: resources, syscall
//!   variants (`ioctl$DM_VERSION`), structs/unions, flag sets;
//! * a line-oriented [`parser`] and a round-tripping [`printer`];
//! * a [`consts`] database mapping symbolic constants (kernel macros such
//!   as `DM_VERSION` or `O_RDONLY`) to values — the analogue of
//!   `syz-extract` output;
//! * a [`layout`] engine computing C-compatible sizes/alignments/offsets
//!   for every describable type;
//! * a [`value`] model with a byte-level encoder used by the fuzzer to
//!   materialise arguments (auto-filling `len[...]` fields);
//! * a [`validate`] pass reproducing the error classes of
//!   `syz-extract`/`syz-generate` (undefined types, unknown constants,
//!   broken `len` targets, unproduced resources, …) that feeds the
//!   KernelGPT *specification repair* loop;
//! * a [`cache`] module memoizing compiled [`SpecDb`]s behind `Arc`s,
//!   keyed by suite content, so repeated campaign constructions and
//!   sweep harnesses stop re-parsing identical suites;
//! * a [`prog`] module with the concrete [`Program`] representation
//!   (dense syscall indices + argument [`Value`]s) shared by the
//!   fuzzer's generation/execution loop and the crash-triage
//!   minimizer;
//! * a [`lowered`] module compiling a `(SpecDb, ConstDb)` pair once
//!   into a flat, index-interned IR ([`LoweredDb`]) so the fuzzer's
//!   per-exec generate→encode path is string-free and AST-free (the
//!   arena-walking [`lowered::LoweredEncoder`] mirrors the reference
//!   [`value::MemBuilder`] byte for byte).
//!
//! ## Example
//!
//! ```
//! use kgpt_syzlang::{parse, ConstDb, SpecDb, validate::validate};
//!
//! let src = r#"
//! resource fd_msm[fd]
//! openat$msm(dir const[AT_FDCWD], file ptr[in, string["/dev/msm"]], flags const[2], mode const[0]) fd_msm
//! ioctl$MSM_NEW(fd fd_msm, cmd const[MSM_NEW_CMD], arg ptr[inout, msm_queue])
//! msm_queue {
//!     flags int32
//!     prio  int32[0:3]
//!     id    int32 (out)
//! }
//! "#;
//! let file = parse("msm.txt", src)?;
//! let mut consts = ConstDb::new();
//! consts.define("AT_FDCWD", 0xffff_ff9c);
//! consts.define("MSM_NEW_CMD", 0xc010_6d0a);
//! let db = SpecDb::from_files(vec![file]);
//! let errors = validate(&db, &consts);
//! assert!(errors.is_empty(), "{errors:?}");
//! # Ok::<(), kgpt_syzlang::parser::ParseError>(())
//! ```
//!
//! [Syzkaller]: https://github.com/google/syzkaller

pub mod ast;
pub mod cache;
pub mod consts;
pub mod db;
pub mod layout;
pub mod lowered;
pub mod parser;
pub mod printer;
pub mod prog;
pub mod token;
pub mod validate;
pub mod value;

pub use ast::{
    ArrayLen, ConstExpr, Dir, Field, FlagsDef, IntBits, Item, Param, Resource, SpecFile, StructDef,
    Syscall, Type,
};
pub use cache::SpecCache;
pub use consts::ConstDb;
pub use db::SpecDb;
pub use lowered::LoweredDb;
pub use parser::parse;
pub use printer::print_file;
pub use prog::{ProgCall, Program};
pub use validate::{SpecError, SpecErrorKind};
pub use value::Value;
