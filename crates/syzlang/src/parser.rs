//! Recursive-descent parser for syzlang specification files.
//!
//! Bare identifier types (struct/union/resource references) are parsed
//! as [`Type::Named`]; [`crate::SpecDb`] later rewrites references that
//! name a declared (or builtin) resource into [`Type::Resource`].

use crate::ast::{
    ArrayLen, ConstExpr, Dir, Field, FlagsDef, IntBits, Item, Param, Resource, SpecFile, StructDef,
    Syscall, Type,
};
use crate::token::{lex, LexError, Spanned, Tok};
use std::fmt;

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
    /// File name the error occurred in.
    pub file: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a syzlang specification file.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors; the error
/// carries the file name and 1-based line.
pub fn parse(file_name: &str, src: &str) -> Result<SpecFile, ParseError> {
    let toks = lex(src).map_err(|e: LexError| ParseError {
        message: e.message,
        line: e.line,
        file: file_name.to_string(),
    })?;
    Parser {
        toks,
        pos: 0,
        file: file_name.to_string(),
    }
    .file()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    file: String,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |s| s.line)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
            file: self.file.clone(),
        })
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {tok}, found {t}"))
            }
            None => self.err(format!("expected {tok}, found end of file")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => match self.bump() {
                Some(Tok::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected identifier, found {t}"))
            }
            None => self.err("expected identifier, found end of file"),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&Tok::Newline) {}
    }

    fn file(mut self) -> Result<SpecFile, ParseError> {
        let mut items = Vec::new();
        self.skip_newlines();
        while self.peek().is_some() {
            items.push(self.item()?);
            self.skip_newlines();
        }
        Ok(SpecFile {
            name: self.file,
            items,
        })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        let name = self.ident()?;
        if name == "resource" {
            return self.resource();
        }
        match self.peek() {
            Some(Tok::Eq) => self.flags_def(name),
            Some(Tok::LBrace) => self.struct_def(name, false),
            Some(Tok::LBrack) if self.peek2() == Some(&Tok::Newline) => self.struct_def(name, true),
            Some(Tok::LParen) | Some(Tok::Dollar) => self.syscall(name),
            Some(t) => {
                let t = t.clone();
                self.err(format!("unexpected {t} after `{name}`"))
            }
            None => self.err("unexpected end of file"),
        }
    }

    fn resource(&mut self) -> Result<Item, ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::LBrack)?;
        let base = self.ident()?;
        self.expect(&Tok::RBrack)?;
        let mut values = Vec::new();
        if self.eat(&Tok::Colon) {
            loop {
                values.push(self.const_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::Newline)?;
        Ok(Item::Resource(Resource { name, base, values }))
    }

    fn flags_def(&mut self, name: String) -> Result<Item, ParseError> {
        self.expect(&Tok::Eq)?;
        let mut values = Vec::new();
        loop {
            values.push(self.const_expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Newline)?;
        Ok(Item::Flags(FlagsDef { name, values }))
    }

    fn struct_def(&mut self, name: String, is_union: bool) -> Result<Item, ParseError> {
        let (open, close) = if is_union {
            (Tok::LBrack, Tok::RBrack)
        } else {
            (Tok::LBrace, Tok::RBrace)
        };
        self.expect(&open)?;
        self.skip_newlines();
        let mut fields = Vec::new();
        while self.peek() != Some(&close) {
            let fname = self.ident()?;
            let ty = self.ty()?;
            let mut dir = None;
            if self.eat(&Tok::LParen) {
                let kw = self.ident()?;
                dir = Dir::from_keyword(&kw);
                if dir.is_none() {
                    return self.err(format!("unknown field attribute `{kw}`"));
                }
                self.expect(&Tok::RParen)?;
            }
            fields.push(Field {
                name: fname,
                ty,
                dir,
            });
            self.expect(&Tok::Newline)?;
            self.skip_newlines();
        }
        self.expect(&close)?;
        // Optional `[packed]` attribute after the closing brace.
        let mut packed = false;
        if self.eat(&Tok::LBrack) {
            let attr = self.ident()?;
            if attr != "packed" {
                return self.err(format!("unknown struct attribute `{attr}`"));
            }
            packed = true;
            self.expect(&Tok::RBrack)?;
        }
        self.expect(&Tok::Newline)?;
        Ok(Item::Struct(StructDef {
            name,
            fields,
            is_union,
            packed,
        }))
    }

    fn syscall(&mut self, base: String) -> Result<Item, ParseError> {
        let variant = if self.eat(&Tok::Dollar) {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let ret = match self.peek() {
            Some(Tok::Ident(_)) => Some(self.ident()?),
            _ => None,
        };
        self.expect(&Tok::Newline)?;
        Ok(Item::Syscall(Syscall {
            base,
            variant,
            params,
            ret,
        }))
    }

    fn const_expr(&mut self) -> Result<ConstExpr, ParseError> {
        match self.peek() {
            Some(Tok::Num(_)) => match self.bump() {
                Some(Tok::Num(n)) => Ok(ConstExpr::Num(n)),
                _ => unreachable!(),
            },
            Some(Tok::Ident(_)) => Ok(ConstExpr::Sym(self.ident()?)),
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected constant, found {t}"))
            }
            None => self.err("expected constant, found end of file"),
        }
    }

    fn num(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(n),
            Some(t) => self.err(format!("expected number, found {t}")),
            None => self.err("expected number, found end of file"),
        }
    }

    fn opt_bits(&mut self, default: IntBits) -> Result<IntBits, ParseError> {
        if self.eat(&Tok::Comma) {
            let kw = self.ident()?;
            IntBits::from_keyword(&kw)
                .ok_or(())
                .or_else(|()| self.err(format!("expected integer width, found `{kw}`")))
        } else {
            Ok(default)
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let head = self.ident()?;
        if let Some(bits) = IntBits::from_keyword(&head) {
            // intN or intN[lo:hi]
            let mut range = None;
            if self.eat(&Tok::LBrack) {
                let lo = self.num()?;
                self.expect(&Tok::Colon)?;
                let hi = self.num()?;
                self.expect(&Tok::RBrack)?;
                range = Some((lo, hi));
            }
            return Ok(Type::Int { bits, range });
        }
        match head.as_str() {
            "void" => Ok(Type::Void),
            "const" => {
                self.expect(&Tok::LBrack)?;
                let value = self.const_expr()?;
                let bits = self.opt_bits(IntBits::I64)?;
                self.expect(&Tok::RBrack)?;
                Ok(Type::Const { value, bits })
            }
            "flags" => {
                self.expect(&Tok::LBrack)?;
                let set = self.ident()?;
                let bits = self.opt_bits(IntBits::I64)?;
                self.expect(&Tok::RBrack)?;
                Ok(Type::Flags { set, bits })
            }
            "ptr" => {
                self.expect(&Tok::LBrack)?;
                let dkw = self.ident()?;
                let dir = Dir::from_keyword(&dkw)
                    .ok_or(())
                    .or_else(|()| self.err(format!("expected direction, found `{dkw}`")))?;
                self.expect(&Tok::Comma)?;
                let elem = self.ty()?;
                self.expect(&Tok::RBrack)?;
                Ok(Type::Ptr {
                    dir,
                    elem: Box::new(elem),
                })
            }
            "array" => {
                self.expect(&Tok::LBrack)?;
                let elem = self.ty()?;
                let len = if self.eat(&Tok::Comma) {
                    let lo = self.num()?;
                    if self.eat(&Tok::Colon) {
                        let hi = self.num()?;
                        ArrayLen::Range(lo, hi)
                    } else {
                        ArrayLen::Fixed(lo)
                    }
                } else {
                    ArrayLen::Unsized
                };
                self.expect(&Tok::RBrack)?;
                Ok(Type::Array {
                    elem: Box::new(elem),
                    len,
                })
            }
            "string" => {
                self.expect(&Tok::LBrack)?;
                let mut values = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::Str(s)) => values.push(s),
                        Some(Tok::Ident(s)) => values.push(s),
                        Some(t) => return self.err(format!("expected string, found {t}")),
                        None => return self.err("expected string, found end of file"),
                    }
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RBrack)?;
                Ok(Type::StringLit { values })
            }
            "len" | "bytesize" => {
                self.expect(&Tok::LBrack)?;
                let target = self.ident()?;
                let bits = self.opt_bits(IntBits::I64)?;
                self.expect(&Tok::RBrack)?;
                if head == "len" {
                    Ok(Type::Len { target, bits })
                } else {
                    Ok(Type::Bytesize { target, bits })
                }
            }
            "proc" => {
                self.expect(&Tok::LBrack)?;
                let start = self.num()?;
                self.expect(&Tok::Comma)?;
                let per = self.num()?;
                let bits = self.opt_bits(IntBits::I64)?;
                self.expect(&Tok::RBrack)?;
                Ok(Type::Proc { start, per, bits })
            }
            _ => Ok(Type::Named(head)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_resource_with_values() {
        let f = parse("t", "resource fd_dm[fd] : -1, 0\n").unwrap();
        match &f.items[0] {
            Item::Resource(r) => {
                assert_eq!(r.name, "fd_dm");
                assert_eq!(r.base, "fd");
                assert_eq!(r.values, vec![ConstExpr::Num(u64::MAX), ConstExpr::Num(0)]);
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_msm_example_from_paper() {
        let src = r#"
resource fd_msm[fd]
resource msm_submitqueue_id[int32]
openat$msm(dir const[0], file ptr[in, string["/dev/msm"]], flags const[2], mode const[0]) fd_msm
ioctl$NEW(fd fd_msm, cmd const[DRM_IOCTL_MSM_SUBMITQUEUE_NEW], arg ptr[inout, drm_msm_submitqueue])
ioctl$CLOSE(fd fd_msm, cmd const[DRM_IOCTL_MSM_SUBMITQUEUE_CLOSE], arg ptr[in, msm_submitqueue_id])
drm_msm_submitqueue {
    flags flags[msm_submitqueue_flags, int32]
    prio int32[0:3]
    id msm_submitqueue_id (out)
}
msm_submitqueue_flags = MSM_F_A, MSM_F_B
"#;
        let f = parse("msm", src).unwrap();
        assert_eq!(f.items.len(), 7);
        let s: Vec<_> = f.syscalls().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].name(), "openat$msm");
        assert_eq!(s[0].ret.as_deref(), Some("fd_msm"));
        let st: Vec<_> = f.structs().collect();
        assert_eq!(st[0].fields.len(), 3);
        assert_eq!(st[0].fields[2].dir, Some(Dir::Out));
        assert!(matches!(
            st[0].fields[1].ty,
            Type::Int {
                bits: IntBits::I32,
                range: Some((0, 3))
            }
        ));
    }

    #[test]
    fn parses_union() {
        let src = "u [\n    a int32\n    b array[int8, 16]\n]\n";
        let f = parse("t", src).unwrap();
        match &f.items[0] {
            Item::Struct(s) => {
                assert!(s.is_union);
                assert_eq!(s.fields.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_packed_struct() {
        let src = "p {\n    a int8\n    b int32\n} [packed]\n";
        let f = parse("t", src).unwrap();
        match &f.items[0] {
            Item::Struct(s) => assert!(s.packed && !s.is_union),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_proc_and_bytesize() {
        let src = "call$x(a proc[100, 4, int16], b bytesize[c, int32], c ptr[in, array[int8]])\n";
        let f = parse("t", src).unwrap();
        let s: Vec<_> = f.syscalls().collect();
        assert!(matches!(
            s[0].params[0].ty,
            Type::Proc {
                start: 100,
                per: 4,
                bits: IntBits::I16
            }
        ));
    }

    #[test]
    fn error_carries_position() {
        let err = parse("bad.txt", "ioctl$(fd fd)\n").unwrap_err();
        assert_eq!(err.file, "bad.txt");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unknown_attribute() {
        assert!(parse("t", "s {\n    a int8 (sideways)\n}\n").is_err());
        assert!(parse("t", "s {\n    a int8\n} [aligned]\n").is_err());
    }

    #[test]
    fn empty_file_ok() {
        let f = parse("t", "\n# only a comment\n").unwrap();
        assert!(f.items.is_empty());
    }

    #[test]
    fn multi_string_set() {
        let src = "open$x(file ptr[in, string[\"/dev/a\", \"/dev/b\"]])\n";
        let f = parse("t", src).unwrap();
        let s: Vec<_> = f.syscalls().collect();
        match &s[0].params[0].ty {
            Type::Ptr { elem, .. } => match elem.as_ref() {
                Type::StringLit { values } => assert_eq!(values.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
