//! Compiled-spec cache.
//!
//! [`SpecDb::from_files`] re-parses resource references and re-indexes
//! every definition each time it runs, and campaign constructors call
//! it once per construction — so a Table 5/6-style sweep that builds
//! dozens of campaigns over the *same* suite recompiles it dozens of
//! times. A [`SpecCache`] memoizes compiled databases behind `Arc`s:
//! the key is a structural content fingerprint of the input suite
//! (FNV-1a over the `Hash` of every file — names and full ASTs,
//! no allocation), a hit is an `Arc` clone, and the stored suite is
//! compared for full equality on every hit so two distinct suites can
//! never alias even if their 64-bit fingerprints collide.
//!
//! The databases are immutable once built, so sharing one compiled
//! [`SpecDb`] across campaigns — including across threads; the cache
//! is `Sync` — is safe by construction. [`SpecCache::global`] is the
//! process-wide instance used by the `Campaign`/`ShardedCampaign`
//! constructors and the merged-validation paths.
//!
//! A cache can be **size-bounded** ([`SpecCache::with_capacity`]):
//! over capacity, the least-recently-used suite is evicted (recency
//! is refreshed on every hit), so a long-lived service compiling
//! unbounded distinct suites holds at most `capacity` databases —
//! plus whatever outstanding `Arc`s its campaigns still pin. The
//! global cache is bounded at [`GLOBAL_CACHE_CAPACITY`];
//! hit/miss/eviction counters are exposed for monitoring.

use crate::ast::SpecFile;
use crate::consts::ConstDb;
use crate::db::SpecDb;
use crate::lowered::LoweredDb;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry cap of the process-wide [`SpecCache::global`] cache: far
/// above any sweep's distinct-suite count, but a hard bound so a
/// long-lived service feeding unbounded distinct suites cannot grow
/// the cache without limit.
pub const GLOBAL_CACHE_CAPACITY: usize = 512;

/// Lowered IRs retained per cached suite (one per distinct constant
/// table); beyond this, the oldest lowering is dropped. One table per
/// suite is the norm — the cap only bounds pathological sweeps.
pub const MAX_LOWERED_PER_ENTRY: usize = 4;

/// One cached compilation.
struct CacheEntry {
    /// The exact input suite; compared on every lookup so fingerprint
    /// collisions degrade to misses, not wrong databases.
    files: Vec<SpecFile>,
    db: Arc<SpecDb>,
    /// Lowered IRs compiled from this database, keyed by the
    /// fingerprint *and* exact content of the [`ConstDb`] they were
    /// resolved against (same convention as suite lookups: the
    /// fingerprint is a fast path, never trusted alone). A suite is
    /// almost always paired with exactly one constant table, so this
    /// holds one entry in practice; it is capped at
    /// [`MAX_LOWERED_PER_ENTRY`] (oldest dropped first) so a
    /// long-lived process sweeping constant variants over one hot
    /// suite cannot grow it without bound. Evicted with the entry.
    lowered: Vec<(u64, ConstDb, Arc<LoweredDb>)>,
    /// Recency stamp from the cache's monotone tick, for LRU
    /// eviction; refreshed on every hit.
    last_used: u64,
}

/// A memoizing wrapper over [`SpecDb::from_files`], keyed by suite
/// content. Cheap to share by reference across threads. Optionally
/// size-bounded: over capacity, the least-recently-used suite is
/// evicted (outstanding `Arc`s stay alive).
#[derive(Default)]
pub struct SpecCache {
    entries: Mutex<BTreeMap<u64, Vec<CacheEntry>>>,
    /// Maximum retained suites; 0 = unbounded.
    capacity: usize,
    /// Monotone recency clock (bumped on every hit and insert).
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SpecCache {
    /// Empty, unbounded cache.
    #[must_use]
    pub fn new() -> SpecCache {
        SpecCache::default()
    }

    /// Empty cache retaining at most `capacity` compiled suites;
    /// beyond that, lookups evict the least-recently-used suite.
    /// `0` means unbounded.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> SpecCache {
        SpecCache {
            capacity,
            ..SpecCache::default()
        }
    }

    /// The process-wide cache used by campaign constructors and
    /// merged-validation paths; LRU-bounded at
    /// [`GLOBAL_CACHE_CAPACITY`] suites.
    #[must_use]
    pub fn global() -> &'static SpecCache {
        static GLOBAL: OnceLock<SpecCache> = OnceLock::new();
        GLOBAL.get_or_init(|| SpecCache::with_capacity(GLOBAL_CACHE_CAPACITY))
    }

    /// Maximum retained suites (0 = unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Structural content fingerprint of a suite: FNV-1a over the
    /// [`Hash`] of every file (names and full ASTs), allocation-free.
    /// Equal suites always fingerprint equally; the cache never trusts
    /// the converse — every hit compares the stored suite for full
    /// equality.
    #[must_use]
    pub fn fingerprint(files: &[SpecFile]) -> u64 {
        let mut h = Fnv1a::default();
        files.hash(&mut h);
        h.finish()
    }

    /// The compiled database for a suite: an `Arc` clone on a hit, a
    /// fresh [`SpecDb::from_files`] compilation on a miss. Two calls
    /// with equal suites return the *same* `Arc` (pointer-equal). The
    /// warm path is a fingerprint plus one equality check — no
    /// parsing, no indexing, no allocation.
    #[must_use]
    pub fn get_or_build(&self, files: &[SpecFile]) -> Arc<SpecDb> {
        let key = SpecCache::fingerprint(files);
        {
            let mut entries = self.entries.lock().expect("spec cache poisoned");
            if let Some(bucket) = entries.get_mut(&key) {
                if let Some(e) = bucket.iter_mut().find(|e| e.files == files) {
                    e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&e.db);
                }
            }
        }
        // Compile outside the lock; on a race, the first insertion
        // wins so repeated lookups keep returning one pointer.
        let db = Arc::new(SpecDb::from_files(files.to_vec()));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("spec cache poisoned");
        if let Some(e) = entries
            .get_mut(&key)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.files == files))
        {
            e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&e.db);
        }
        entries.entry(key).or_default().push(CacheEntry {
            files: files.to_vec(),
            db: Arc::clone(&db),
            lowered: Vec::new(),
            last_used: self.tick.fetch_add(1, Ordering::Relaxed),
        });
        self.evict_over_capacity(&mut entries);
        db
    }

    /// The lowered IR for a cached compiled database: an `Arc` clone
    /// when `(db, consts)` was lowered before, a fresh
    /// [`LoweredDb::build`] otherwise. The database is matched by
    /// pointer identity, so any `Arc` previously returned by
    /// [`SpecCache::get_or_build`] hits; a foreign database (not in
    /// this cache) is lowered without being retained.
    ///
    /// Campaign constructors call this once per construction, so a
    /// sweep over one suite lowers it exactly once — the lowering
    /// rides the same LRU entry as its `SpecDb`.
    #[must_use]
    pub fn get_or_lower(&self, db: &Arc<SpecDb>, consts: &ConstDb) -> Arc<LoweredDb> {
        let ckey = consts_fingerprint(consts);
        {
            let mut entries = self.entries.lock().expect("spec cache poisoned");
            for bucket in entries.values_mut() {
                for e in bucket.iter_mut() {
                    if Arc::ptr_eq(&e.db, db) {
                        if let Some((_, _, l)) =
                            e.lowered.iter().find(|(k, c, _)| *k == ckey && c == consts)
                        {
                            // A lowering hit keeps the whole entry hot:
                            // `with_db`-style constructions never call
                            // `get_or_build`, so this is their only
                            // recency signal against LRU eviction.
                            e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Arc::clone(l);
                        }
                    }
                }
            }
        }
        // Lower outside the lock; first insertion wins on a race.
        let lowered = Arc::new(LoweredDb::build(db, consts));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("spec cache poisoned");
        for bucket in entries.values_mut() {
            for e in bucket.iter_mut() {
                if Arc::ptr_eq(&e.db, db) {
                    e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    if let Some((_, _, l)) =
                        e.lowered.iter().find(|(k, c, _)| *k == ckey && c == consts)
                    {
                        return Arc::clone(l);
                    }
                    if e.lowered.len() >= MAX_LOWERED_PER_ENTRY {
                        e.lowered.remove(0);
                    }
                    e.lowered.push((ckey, consts.clone(), Arc::clone(&lowered)));
                    return lowered;
                }
            }
        }
        lowered
    }

    /// Convenience over [`SpecCache::get_or_build`] +
    /// [`SpecCache::get_or_lower`]: the compiled and lowered forms of
    /// a suite in one call.
    #[must_use]
    pub fn get_or_build_lowered(
        &self,
        files: &[SpecFile],
        consts: &ConstDb,
    ) -> (Arc<SpecDb>, Arc<LoweredDb>) {
        let db = self.get_or_build(files);
        let lowered = self.get_or_lower(&db, consts);
        (db, lowered)
    }

    /// Drop least-recently-used suites until the entry count is back
    /// under capacity. Called with the entries lock held.
    fn evict_over_capacity(&self, entries: &mut BTreeMap<u64, Vec<CacheEntry>>) {
        if self.capacity == 0 {
            return;
        }
        while entries.values().map(Vec::len).sum::<usize>() > self.capacity {
            let Some((&key, idx)) = entries
                .iter()
                .flat_map(|(k, bucket)| {
                    bucket
                        .iter()
                        .enumerate()
                        .map(move |(i, e)| (k, i, e.last_used))
                })
                .min_by_key(|&(_, _, last_used)| last_used)
                .map(|(k, i, _)| (k, i))
            else {
                return;
            };
            let bucket = entries.get_mut(&key).expect("victim bucket exists");
            bucket.remove(idx);
            if bucket.is_empty() {
                entries.remove(&key);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lookups served without compiling.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that compiled a new database.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Suites evicted under the capacity bound.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct suites currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("spec cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds no compiled suites.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached database (outstanding `Arc`s stay alive) and
    /// reset the hit/miss/eviction counters.
    pub fn clear(&self) {
        self.entries.lock().expect("spec cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Structural fingerprint of a constant table, for the per-entry
/// lowered-IR cache: a fast path in front of the full equality check,
/// exactly like suite fingerprints.
fn consts_fingerprint(consts: &ConstDb) -> u64 {
    let mut h = Fnv1a::default();
    h.write(b"consts-v1");
    for (name, value) in consts.iter() {
        h.write(name.as_bytes());
        h.write(&[0xff]);
        h.write(&value.to_le_bytes());
    }
    h.finish()
}

/// FNV-1a as a [`Hasher`], so suite fingerprints come straight from
/// the derived structural `Hash` of the AST with no intermediate
/// serialization.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn suite(src: &str) -> Vec<SpecFile> {
        vec![parse("t", src).unwrap()]
    }

    #[test]
    fn warm_lookup_returns_the_same_arc() {
        let cache = SpecCache::new();
        let files =
            suite("resource fd_x[fd]\nioctl$A(fd fd_x, cmd const[1], arg ptr[in, array[int8]])\n");
        let cold = cache.get_or_build(&files);
        let warm = cache.get_or_build(&files);
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn equal_content_different_vectors_still_hit() {
        let cache = SpecCache::new();
        let a = suite("resource fd_y[fd]\n");
        let b = suite("resource fd_y[fd]\n");
        assert!(Arc::ptr_eq(
            &cache.get_or_build(&a),
            &cache.get_or_build(&b)
        ));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn different_suites_never_collide() {
        let cache = SpecCache::new();
        let a = cache.get_or_build(&suite("resource fd_a[fd]\n"));
        let b = cache.get_or_build(&suite("resource fd_b[fd]\n"));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.resource("fd_a").is_some());
        assert!(a.resource("fd_b").is_none());
        assert!(b.resource("fd_b").is_some());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn file_name_is_part_of_the_key() {
        let cache = SpecCache::new();
        let a = vec![parse("a", "resource fd_z[fd]\n").unwrap()];
        let b = vec![parse("b", "resource fd_z[fd]\n").unwrap()];
        assert!(!Arc::ptr_eq(
            &cache.get_or_build(&a),
            &cache.get_or_build(&b)
        ));
        assert_ne!(SpecCache::fingerprint(&a), SpecCache::fingerprint(&b));
    }

    #[test]
    fn multi_file_order_matters_for_identity() {
        // A merged database indexes later files over earlier ones, so
        // suite order is part of the content identity.
        let f1 = parse("one", "resource fd_m[fd]\n").unwrap();
        let f2 = parse("two", "resource fd_n[fd]\n").unwrap();
        let cache = SpecCache::new();
        let ab = cache.get_or_build(&[f1.clone(), f2.clone()]);
        let ba = cache.get_or_build(&[f2, f1]);
        assert!(!Arc::ptr_eq(&ab, &ba));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn empty_suite_is_cacheable() {
        let cache = SpecCache::new();
        let a = cache.get_or_build(&[]);
        let b = cache.get_or_build(&[]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.syscall_count(), 0);
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = SpecCache::new();
        let files = suite("resource fd_c[fd]\n");
        let before = cache.get_or_build(&files);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
        let after = cache.get_or_build(&files);
        // The evicted Arc stays usable; the rebuild is a new pointer.
        assert!(!Arc::ptr_eq(&before, &after));
        assert!(before.resource("fd_c").is_some());
    }

    #[test]
    fn lru_eviction_respects_the_capacity_bound() {
        let cache = SpecCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let a = suite("resource fd_la[fd]\n");
        let b = suite("resource fd_lb[fd]\n");
        let c = suite("resource fd_lc[fd]\n");
        let _ = cache.get_or_build(&a);
        let _ = cache.get_or_build(&b);
        assert_eq!(cache.evictions(), 0);
        // Touch `a` so `b` becomes the least recently used...
        let _ = cache.get_or_build(&a);
        // ...then overflow: `b` is evicted, `a` survives.
        let _ = cache.get_or_build(&c);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        let misses_before = cache.misses();
        let _ = cache.get_or_build(&a);
        let _ = cache.get_or_build(&c);
        assert_eq!(cache.misses(), misses_before, "a and c must still hit");
        let _ = cache.get_or_build(&b);
        assert_eq!(cache.misses(), misses_before + 1, "b was evicted");
        assert_eq!(cache.evictions(), 2, "rebuilding b evicts the next LRU");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicted_databases_stay_alive_through_outstanding_arcs() {
        let cache = SpecCache::with_capacity(1);
        let a = suite("resource fd_ea[fd]\n");
        let held = cache.get_or_build(&a);
        let _ = cache.get_or_build(&suite("resource fd_eb[fd]\n"));
        assert_eq!(cache.evictions(), 1);
        // The evicted Arc is still usable; a re-lookup recompiles.
        assert!(held.resource("fd_ea").is_some());
        assert!(!Arc::ptr_eq(&held, &cache.get_or_build(&a)));
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = SpecCache::new();
        assert_eq!(cache.capacity(), 0);
        for i in 0..64 {
            let _ = cache.get_or_build(&suite(&format!("resource fd_u{i}[fd]\n")));
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn clear_resets_eviction_counter() {
        let cache = SpecCache::with_capacity(1);
        let _ = cache.get_or_build(&suite("resource fd_ca[fd]\n"));
        let _ = cache.get_or_build(&suite("resource fd_cb[fd]\n"));
        assert_eq!(cache.evictions(), 1);
        cache.clear();
        assert_eq!(cache.evictions(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn lowering_is_cached_per_db_and_consts() {
        let cache = SpecCache::new();
        let files = suite(
            "resource fd_l[fd]\nioctl$L(fd fd_l, cmd const[CMD], arg ptr[in, array[int8]])\n",
        );
        let mut consts = ConstDb::new();
        consts.define("CMD", 7);
        let (db, l1) = cache.get_or_build_lowered(&files, &consts);
        let l2 = cache.get_or_lower(&db, &consts);
        assert!(Arc::ptr_eq(&l1, &l2), "same (db, consts) must share one IR");
        // A different constant table is a different lowering.
        let mut other = ConstDb::new();
        other.define("CMD", 8);
        let l3 = cache.get_or_lower(&db, &other);
        assert!(!Arc::ptr_eq(&l1, &l3));
        // A foreign database (never inserted) still lowers, uncached.
        let foreign = Arc::new(SpecDb::from_files(files.clone()));
        let f1 = cache.get_or_lower(&foreign, &consts);
        let f2 = cache.get_or_lower(&foreign, &consts);
        assert!(!Arc::ptr_eq(&f1, &f2));
        assert_eq!(f1.syscall_count(), 1);
    }

    #[test]
    fn lowerings_per_entry_are_capped() {
        let cache = SpecCache::new();
        let files = suite(
            "resource fd_cap[fd]\nioctl$C(fd fd_cap, cmd const[K], arg ptr[in, array[int8]])\n",
        );
        let db = cache.get_or_build(&files);
        let mut tables = Vec::new();
        for i in 0..(MAX_LOWERED_PER_ENTRY as u64 + 2) {
            let mut consts = ConstDb::new();
            consts.define("K", i);
            tables.push(consts);
        }
        let first = cache.get_or_lower(&db, &tables[0]);
        for consts in &tables[1..] {
            let _ = cache.get_or_lower(&db, consts);
        }
        // The oldest lowering was dropped: re-requesting it rebuilds.
        let rebuilt = cache.get_or_lower(&db, &tables[0]);
        assert!(!Arc::ptr_eq(&first, &rebuilt), "oldest lowering evicted");
        // The newest is still cached.
        let newest = cache.get_or_lower(&db, tables.last().unwrap());
        let again = cache.get_or_lower(&db, tables.last().unwrap());
        assert!(Arc::ptr_eq(&newest, &again));
    }

    #[test]
    fn lowering_hits_refresh_lru_recency() {
        // A suite used only through `get_or_lower` (the `with_db`
        // construction path) must stay hot: its entry's recency is
        // refreshed on lowering hits, so the LRU evicts idle suites
        // first.
        let cache = SpecCache::with_capacity(2);
        let a_files = suite("resource fd_ra[fd]\n");
        let b_files = suite("resource fd_rb[fd]\n");
        let consts = ConstDb::new();
        let a = cache.get_or_build(&a_files);
        let _ = cache.get_or_build(&b_files);
        // Touch `a` through the lowering path only.
        let l1 = cache.get_or_lower(&a, &consts);
        // Overflow: `b` (stale) is evicted, `a` and its lowering stay.
        let _ = cache.get_or_build(&suite("resource fd_rc[fd]\n"));
        assert_eq!(cache.evictions(), 1);
        let l2 = cache.get_or_lower(&a, &consts);
        assert!(
            Arc::ptr_eq(&l1, &l2),
            "a's cached lowering must survive the eviction"
        );
        let misses_before = cache.misses();
        let _ = cache.get_or_build(&b_files);
        assert_eq!(cache.misses(), misses_before + 1, "b was the LRU victim");
    }

    #[test]
    fn capacity_one_thrash_rebuilds_correct_databases_every_time() {
        // Regression guard for the pathological LRU shape: a
        // capacity-1 cache fed two suites alternately must evict on
        // every other lookup, yet every returned `Arc<SpecDb>` /
        // `Arc<LoweredDb>` must belong to the suite that was asked
        // for — thrashing may cost compiles, never correctness.
        let cache = SpecCache::with_capacity(1);
        let a_files = suite(
            "resource fd_ta[fd]\nioctl$TA(fd fd_ta, cmd const[K], arg ptr[in, array[int8]])\n",
        );
        let b_files = suite(
            "resource fd_tb[fd]\nioctl$TB(fd fd_tb, cmd const[K], arg ptr[in, array[int8]])\n",
        );
        let mut consts = ConstDb::new();
        consts.define("K", 9);
        for round in 0..4u64 {
            let (a_db, a_low) = cache.get_or_build_lowered(&a_files, &consts);
            assert!(a_db.resource("fd_ta").is_some(), "round {round}");
            assert!(a_db.resource("fd_tb").is_none(), "round {round}");
            assert_eq!(a_low.syscall_count(), 1, "round {round}");
            // Within the round the lowering lookup hits the entry the
            // build just (re)inserted — pointer-equal on re-request.
            assert!(Arc::ptr_eq(&a_low, &cache.get_or_lower(&a_db, &consts)));
            assert_eq!(cache.len(), 1, "capacity bound violated");

            let (b_db, b_low) = cache.get_or_build_lowered(&b_files, &consts);
            assert!(b_db.resource("fd_tb").is_some(), "round {round}");
            assert!(b_db.resource("fd_ta").is_none(), "round {round}");
            assert!(!Arc::ptr_eq(&a_db, &b_db));
            assert!(Arc::ptr_eq(&b_low, &cache.get_or_lower(&b_db, &consts)));
            assert_eq!(cache.len(), 1, "capacity bound violated");
        }
        // Counter arithmetic of the thrash: every get_or_build after
        // the first insertion of each suite misses (the other suite
        // evicted it), and each build-miss round also re-lowers; the
        // same-round get_or_lower re-requests above all hit.
        // Per round: 2 build misses + 2 lower misses, and 2 lowering
        // hits from the pointer-equality re-requests.
        assert_eq!(cache.misses(), 16, "4 rounds x (2 builds + 2 lowerings)");
        assert_eq!(cache.hits(), 8, "4 rounds x 2 same-round lowering hits");
        // Every insertion past the very first evicts the other suite.
        assert_eq!(cache.evictions(), 7);
    }

    #[test]
    fn global_cache_is_shared_and_warm() {
        let files = suite("resource fd_g[fd]\n");
        let a = SpecCache::global().get_or_build(&files);
        let b = SpecCache::global().get_or_build(&files);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
