//! Abstract syntax tree for syzlang specification files.
//!
//! The model follows the upstream syntax documented in
//! `docs/syscall_descriptions_syntax.md` of Syzkaller, restricted to the
//! constructs exercised by the KernelGPT paper: resources, syscall
//! variants, structs, unions, flag sets, and the core type combinators
//! (`const`, `flags`, `ptr`, `array`, `string`, `len`, `bytesize`,
//! integer ranges and `proc` values).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of an integer type, in the `intN` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntBits {
    /// `int8` — one byte.
    I8,
    /// `int16` — two bytes.
    I16,
    /// `int32` — four bytes.
    I32,
    /// `int64` — eight bytes.
    I64,
}

impl IntBits {
    /// Size of the integer in bytes.
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            IntBits::I8 => 1,
            IntBits::I16 => 2,
            IntBits::I32 => 4,
            IntBits::I64 => 8,
        }
    }

    /// Parse an `intN` keyword (`"int8"`, …) into its width.
    #[must_use]
    pub fn from_keyword(kw: &str) -> Option<IntBits> {
        Some(match kw {
            "int8" => IntBits::I8,
            "int16" => IntBits::I16,
            "int32" => IntBits::I32,
            "int64" | "intptr" => IntBits::I64,
            _ => return None,
        })
    }

    /// The syzlang keyword for this width.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            IntBits::I8 => "int8",
            IntBits::I16 => "int16",
            IntBits::I32 => "int32",
            IntBits::I64 => "int64",
        }
    }

    /// Mask a value to the width of this integer.
    #[must_use]
    pub fn truncate(self, v: u64) -> u64 {
        match self {
            IntBits::I8 => v & 0xff,
            IntBits::I16 => v & 0xffff,
            IntBits::I32 => v & 0xffff_ffff,
            IntBits::I64 => v,
        }
    }
}

impl fmt::Display for IntBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Data-flow direction of a pointer or field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Dir {
    /// Userspace → kernel.
    #[default]
    In,
    /// Kernel → userspace.
    Out,
    /// Both directions.
    InOut,
}

impl Dir {
    /// The syzlang keyword (`in`, `out`, `inout`).
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            Dir::In => "in",
            Dir::Out => "out",
            Dir::InOut => "inout",
        }
    }

    /// Parse a direction keyword.
    #[must_use]
    pub fn from_keyword(kw: &str) -> Option<Dir> {
        Some(match kw {
            "in" => Dir::In,
            "out" => Dir::Out,
            "inout" => Dir::InOut,
            _ => return None,
        })
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A constant expression: either a literal number or a symbolic kernel
/// macro resolved through [`crate::ConstDb`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstExpr {
    /// Literal value (`const[2]`).
    Num(u64),
    /// Symbolic macro name (`const[DM_VERSION]`).
    Sym(String),
}

impl ConstExpr {
    /// Symbolic name, if this is a symbol.
    #[must_use]
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            ConstExpr::Sym(s) => Some(s),
            ConstExpr::Num(_) => None,
        }
    }
}

impl fmt::Display for ConstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstExpr::Num(n) => write!(f, "{n:#x}"),
            ConstExpr::Sym(s) => f.write_str(s),
        }
    }
}

/// Length specifier of an `array[...]` type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayLen {
    /// `array[T]` — size chosen by the generator.
    Unsized,
    /// `array[T, N]` — exactly `N` elements.
    Fixed(u64),
    /// `array[T, A:B]` — between `A` and `B` elements.
    Range(u64, u64),
}

/// A syzlang type expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `intN` with an optional inclusive value range `intN[A:B]`.
    Int {
        /// Integer width.
        bits: IntBits,
        /// Optional `[lo:hi]` value constraint.
        range: Option<(u64, u64)>,
    },
    /// `const[VALUE]` / `const[VALUE, intN]`.
    Const {
        /// The pinned value.
        value: ConstExpr,
        /// Wire width of the constant.
        bits: IntBits,
    },
    /// `flags[set_name]` / `flags[set_name, intN]`.
    Flags {
        /// Name of a [`FlagsDef`].
        set: String,
        /// Wire width.
        bits: IntBits,
    },
    /// `string["/dev/x"]` (single literal) or `string[name_set]`.
    StringLit {
        /// Candidate literal values; generation picks one.
        values: Vec<String>,
    },
    /// `ptr[dir, T]`.
    Ptr {
        /// Data-flow direction.
        dir: Dir,
        /// Pointee type.
        elem: Box<Type>,
    },
    /// `array[T]`, `array[T, N]`, `array[T, A:B]`.
    Array {
        /// Element type.
        elem: Box<Type>,
        /// Element count specifier.
        len: ArrayLen,
    },
    /// `len[target]` / `len[target, intN]` — element count of a sibling.
    Len {
        /// Sibling field or parameter name.
        target: String,
        /// Wire width.
        bits: IntBits,
    },
    /// `bytesize[target]` — byte size of a sibling.
    Bytesize {
        /// Sibling field or parameter name.
        target: String,
        /// Wire width.
        bits: IntBits,
    },
    /// Reference to a declared [`Resource`] (e.g. `fd_dm`).
    Resource(String),
    /// Reference to a named struct or union.
    Named(String),
    /// `proc[start, per_proc]` — per-process disjoint values.
    Proc {
        /// Base value.
        start: u64,
        /// Stride per process.
        per: u64,
        /// Wire width.
        bits: IntBits,
    },
    /// `void` — zero-size placeholder (union arms).
    Void,
}

impl Type {
    /// Convenience constructor for a plain `intN`.
    #[must_use]
    pub fn int(bits: IntBits) -> Type {
        Type::Int { bits, range: None }
    }

    /// Convenience constructor for a byte buffer `array[int8]`.
    #[must_use]
    pub fn buffer() -> Type {
        Type::Array {
            elem: Box::new(Type::int(IntBits::I8)),
            len: ArrayLen::Unsized,
        }
    }

    /// Convenience constructor for `ptr[dir, elem]`.
    #[must_use]
    pub fn ptr(dir: Dir, elem: Type) -> Type {
        Type::Ptr {
            dir,
            elem: Box::new(elem),
        }
    }

    /// Convenience constructor for a symbolic `const[SYM]` of width `bits`.
    pub fn sym_const(name: impl Into<String>, bits: IntBits) -> Type {
        Type::Const {
            value: ConstExpr::Sym(name.into()),
            bits,
        }
    }

    /// Name referenced by this type, if it is a named/resource/flags ref.
    #[must_use]
    pub fn referenced_name(&self) -> Option<&str> {
        match self {
            Type::Flags { set, .. } => Some(set),
            Type::Resource(n) | Type::Named(n) => Some(n),
            _ => None,
        }
    }

    /// Does this type (transitively) contain a pointer?
    #[must_use]
    pub fn contains_ptr(&self) -> bool {
        match self {
            Type::Ptr { .. } => true,
            Type::Array { elem, .. } => elem.contains_ptr(),
            _ => false,
        }
    }
}

/// A named parameter of a syscall.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name (`fd`, `cmd`, `arg`, …).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

impl Param {
    /// Create a parameter.
    pub fn new(name: impl Into<String>, ty: Type) -> Param {
        Param {
            name: name.into(),
            ty,
        }
    }
}

/// A syscall description, e.g. `ioctl$DM_VERSION(fd fd_dm, ...) fd_out`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Syscall {
    /// Base syscall name (`ioctl`, `openat`, `setsockopt`, …).
    pub base: String,
    /// Optional `$variant` suffix.
    pub variant: Option<String>,
    /// Ordered parameters.
    pub params: Vec<Param>,
    /// Resource produced by the return value, if any.
    pub ret: Option<String>,
}

impl Syscall {
    /// Full name, `base$variant` or plain `base`.
    #[must_use]
    pub fn name(&self) -> String {
        match &self.variant {
            Some(v) => format!("{}${}", self.base, v),
            None => self.base.clone(),
        }
    }
}

/// One field of a struct or union.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Optional `(in)`, `(out)`, `(inout)` attribute.
    pub dir: Option<Dir>,
}

impl Field {
    /// Create a field without a direction attribute.
    pub fn new(name: impl Into<String>, ty: Type) -> Field {
        Field {
            name: name.into(),
            ty,
            dir: None,
        }
    }
}

/// A struct (`name { ... }`) or union (`name [ ... ]`) definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Ordered member fields.
    pub fields: Vec<Field>,
    /// `true` for unions (overlapping members).
    pub is_union: bool,
    /// `true` if declared `[packed]` (no alignment padding).
    pub packed: bool,
}

/// A resource declaration, `resource name[underlying]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resource {
    /// Resource name (`fd_dm`).
    pub name: String,
    /// Underlying representation: another resource or an `intN` keyword.
    pub base: String,
    /// Optional special values (`: -1, 0`).
    pub values: Vec<ConstExpr>,
}

/// A flag-set definition, `name = A, B, C`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlagsDef {
    /// Set name.
    pub name: String,
    /// Member values.
    pub values: Vec<ConstExpr>,
}

/// A top-level item of a specification file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Item {
    /// `resource ...`.
    Resource(Resource),
    /// A syscall description.
    Syscall(Syscall),
    /// A struct or union definition.
    Struct(StructDef),
    /// A flag-set definition.
    Flags(FlagsDef),
}

impl Item {
    /// Name the item defines (syscalls use their full `base$variant` name).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Item::Resource(r) => r.name.clone(),
            Item::Syscall(s) => s.name(),
            Item::Struct(s) => s.name.clone(),
            Item::Flags(fl) => fl.name.clone(),
        }
    }
}

/// A parsed specification file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SpecFile {
    /// File name, for diagnostics.
    pub name: String,
    /// Items in declaration order.
    pub items: Vec<Item>,
}

impl SpecFile {
    /// Create an empty file with the given name.
    pub fn new(name: impl Into<String>) -> SpecFile {
        SpecFile {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// Iterate over the syscalls declared in this file.
    pub fn syscalls(&self) -> impl Iterator<Item = &Syscall> {
        self.items.iter().filter_map(|i| match i {
            Item::Syscall(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate over struct/union definitions in this file.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate over resource declarations in this file.
    pub fn resources(&self) -> impl Iterator<Item = &Resource> {
        self.items.iter().filter_map(|i| match i {
            Item::Resource(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_bits_round_trip() {
        for b in [IntBits::I8, IntBits::I16, IntBits::I32, IntBits::I64] {
            assert_eq!(IntBits::from_keyword(b.keyword()), Some(b));
        }
        assert_eq!(IntBits::from_keyword("intptr"), Some(IntBits::I64));
        assert_eq!(IntBits::from_keyword("int7"), None);
    }

    #[test]
    fn int_bits_truncate() {
        assert_eq!(IntBits::I8.truncate(0x1ff), 0xff);
        assert_eq!(IntBits::I16.truncate(0x1_0001), 1);
        assert_eq!(IntBits::I32.truncate(u64::MAX), 0xffff_ffff);
        assert_eq!(IntBits::I64.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn syscall_name_with_variant() {
        let s = Syscall {
            base: "ioctl".into(),
            variant: Some("DM_VERSION".into()),
            params: vec![],
            ret: None,
        };
        assert_eq!(s.name(), "ioctl$DM_VERSION");
    }

    #[test]
    fn syscall_name_plain() {
        let s = Syscall {
            base: "close".into(),
            variant: None,
            params: vec![],
            ret: None,
        };
        assert_eq!(s.name(), "close");
    }

    #[test]
    fn type_helpers() {
        assert!(Type::ptr(Dir::In, Type::buffer()).contains_ptr());
        assert!(!Type::int(IntBits::I32).contains_ptr());
        assert_eq!(
            Type::Resource("fd_dm".into()).referenced_name(),
            Some("fd_dm")
        );
        assert_eq!(Type::Void.referenced_name(), None);
    }

    #[test]
    fn dir_round_trip() {
        for d in [Dir::In, Dir::Out, Dir::InOut] {
            assert_eq!(Dir::from_keyword(d.keyword()), Some(d));
        }
        assert_eq!(Dir::from_keyword("sideways"), None);
    }

    #[test]
    fn const_expr_display() {
        assert_eq!(ConstExpr::Num(16).to_string(), "0x10");
        assert_eq!(
            ConstExpr::Sym("DM_VERSION".into()).to_string(),
            "DM_VERSION"
        );
    }
}
