//! Symbolic-constant database (the analogue of `syz-extract` output).
//!
//! Specifications refer to kernel macros by name (`DM_VERSION`,
//! `O_RDONLY`). Before a spec can be compiled for fuzzing, every symbol
//! must resolve to a concrete value. The virtual kernel publishes its
//! macro table into a [`ConstDb`]; the validator reports any unresolved
//! symbol as [`crate::SpecErrorKind::UnknownConst`].

use crate::ast::ConstExpr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Map from symbolic constant name to value.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstDb {
    values: BTreeMap<String, u64>,
}

impl ConstDb {
    /// Create an empty database.
    #[must_use]
    pub fn new() -> ConstDb {
        ConstDb::default()
    }

    /// Define (or overwrite) a constant.
    pub fn define(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Look up a constant by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Resolve a [`ConstExpr`] to its numeric value.
    #[must_use]
    pub fn resolve(&self, expr: &ConstExpr) -> Option<u64> {
        match expr {
            ConstExpr::Num(n) => Some(*n),
            ConstExpr::Sym(s) => self.get(s),
        }
    }

    /// Whether a symbol is defined.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Number of constants defined.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merge another database into this one (other wins on conflict).
    pub fn merge(&mut self, other: &ConstDb) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), *v);
        }
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl FromIterator<(String, u64)> for ConstDb {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> ConstDb {
        ConstDb {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, u64)> for ConstDb {
    fn extend<T: IntoIterator<Item = (String, u64)>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_resolve() {
        let mut db = ConstDb::new();
        db.define("DM_VERSION", 0xc138_fd00);
        assert_eq!(db.get("DM_VERSION"), Some(0xc138_fd00));
        assert_eq!(
            db.resolve(&ConstExpr::Sym("DM_VERSION".into())),
            Some(0xc138_fd00)
        );
        assert_eq!(db.resolve(&ConstExpr::Num(7)), Some(7));
        assert_eq!(db.resolve(&ConstExpr::Sym("MISSING".into())), None);
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = ConstDb::new();
        a.define("X", 1);
        let mut b = ConstDb::new();
        b.define("X", 2);
        b.define("Y", 3);
        a.merge(&b);
        assert_eq!(a.get("X"), Some(2));
        assert_eq!(a.get("Y"), Some(3));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_iterator() {
        let db: ConstDb = vec![("A".to_string(), 1u64), ("B".to_string(), 2)]
            .into_iter()
            .collect();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.iter().count(), 2);
    }
}
