//! Program representation: an ordered list of syscalls with concrete
//! argument values and resource references into earlier calls.
//!
//! Calls reference their syscall description by dense [`SpecDb`]
//! index (see [`SpecDb::syscall_index`]) instead of owning a cloned
//! AST — a program is just indices plus argument values, so cloning
//! and mutating corpus entries never copies specification text.
//!
//! The type lives in `kgpt-syzlang` (not the fuzzer) because a
//! program is meaningful to every consumer of a compiled spec: the
//! fuzzer generates and executes programs, and the crash-triage
//! subsystem (`kgpt-triage`) projects and minimizes them without
//! pulling in the whole fuzzing loop.

use crate::db::SpecDb;
use crate::value::ResRef;
use crate::{Syscall, Value};
use serde::{Deserialize, Serialize};

/// Maximum value-tree nesting accepted by [`Program::decode_from`].
/// Generated values are shallow (a handful of levels); the bound
/// exists so a corrupt snapshot cannot recurse the decoder off the
/// stack.
pub const MAX_VALUE_DEPTH: usize = 64;

/// Error decoding a serialized program (see
/// [`Program::decode_from`]): truncated input, an unknown value tag,
/// or nesting beyond [`MAX_VALUE_DEPTH`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for DecodeError {}

/// One call in a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgCall {
    /// Dense index of the syscall description in the [`SpecDb`] the
    /// program was generated from.
    pub sys: u32,
    /// One value per parameter.
    pub args: Vec<Value>,
}

impl ProgCall {
    /// Resolve the syscall description against its database.
    #[must_use]
    pub fn syscall<'a>(&self, db: &'a SpecDb) -> &'a Syscall {
        db.syscall_at(self.sys as usize)
    }
}

/// A syscall sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Calls in execution order.
    pub calls: Vec<ProgCall>,
}

impl Program {
    /// Number of calls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Drop trailing calls, keeping resource references valid (they
    /// only ever point backwards).
    pub fn truncate(&mut self, len: usize) {
        self.calls.truncate(len);
    }

    /// Human-readable one-line-per-call rendering (for crash reports).
    #[must_use]
    pub fn display(&self, db: &SpecDb) -> String {
        self.calls
            .iter()
            .map(|c| c.syscall(db).name())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Append a dense little-endian binary encoding of the program to
    /// `out`. The format is self-delimiting, so multiple programs can
    /// be concatenated and read back with [`Program::decode_from`].
    /// This is the serialization hook for campaign checkpoints; the
    /// vendored `serde` derives are no-ops, so the wire format lives
    /// here.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, u32::try_from(self.calls.len()).unwrap_or(u32::MAX));
        for call in &self.calls {
            put_u32(out, call.sys);
            put_u32(out, u32::try_from(call.args.len()).unwrap_or(u32::MAX));
            for arg in &call.args {
                encode_value(arg, out);
            }
        }
    }

    /// Decode a program previously written by [`Program::encode_into`],
    /// starting at `*pos` and advancing it past the consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated input, an unknown value
    /// tag, or value nesting deeper than the decoder's fixed bound —
    /// without panicking or recursing unboundedly, so a corrupt
    /// snapshot is a recoverable condition.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<Program, DecodeError> {
        let n_calls = take_u32(bytes, pos)? as usize;
        let mut calls = Vec::new();
        for _ in 0..n_calls {
            let sys = take_u32(bytes, pos)?;
            let n_args = take_u32(bytes, pos)? as usize;
            let mut args = Vec::new();
            for _ in 0..n_args {
                args.push(decode_value(bytes, pos, 0)?);
            }
            calls.push(ProgCall { sys, args });
        }
        Ok(Program { calls })
    }
}

// ---- binary value codec -------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_RES: u8 = 1;
const TAG_BYTES: u8 = 2;
const TAG_GROUP: u8 = 3;
const TAG_UNION: u8 = 4;
const TAG_PTR_NULL: u8 = 5;
const TAG_PTR: u8 = 6;

/// `Option<usize>` producer indices are encoded as a u64 with
/// `u64::MAX` standing in for `None`; real indices are call positions
/// and never approach that value.
const NO_PRODUCER: u64 = u64::MAX;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(DecodeError {
            message: "truncated u32",
            offset: *pos,
        });
    };
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(DecodeError {
            message: "truncated u64",
            offset: *pos,
        });
    };
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn take_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
    let Some(&b) = bytes.get(*pos) else {
        return Err(DecodeError {
            message: "truncated tag",
            offset: *pos,
        });
    };
    *pos += 1;
    Ok(b)
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(n) => {
            out.push(TAG_INT);
            put_u64(out, *n);
        }
        Value::Res(r) => {
            out.push(TAG_RES);
            put_u64(out, r.producer.map_or(NO_PRODUCER, |p| p as u64));
            put_u64(out, r.fallback);
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            put_u32(out, u32::try_from(b.len()).unwrap_or(u32::MAX));
            out.extend_from_slice(b);
        }
        Value::Group(vs) => {
            out.push(TAG_GROUP);
            put_u32(out, u32::try_from(vs.len()).unwrap_or(u32::MAX));
            for v in vs {
                encode_value(v, out);
            }
        }
        Value::Union { arm, value } => {
            out.push(TAG_UNION);
            put_u32(out, u32::try_from(*arm).unwrap_or(u32::MAX));
            encode_value(value, out);
        }
        Value::Ptr { pointee: None } => out.push(TAG_PTR_NULL),
        Value::Ptr { pointee: Some(p) } => {
            out.push(TAG_PTR);
            encode_value(p, out);
        }
    }
}

#[allow(clippy::cast_possible_truncation)]
fn decode_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, DecodeError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(DecodeError {
            message: "value nesting too deep",
            offset: *pos,
        });
    }
    let tag = take_u8(bytes, pos)?;
    match tag {
        TAG_INT => Ok(Value::Int(take_u64(bytes, pos)?)),
        TAG_RES => {
            let producer = take_u64(bytes, pos)?;
            let fallback = take_u64(bytes, pos)?;
            Ok(Value::Res(ResRef {
                producer: (producer != NO_PRODUCER).then_some(producer as usize),
                fallback,
            }))
        }
        TAG_BYTES => {
            let len = take_u32(bytes, pos)? as usize;
            let end = pos.checked_add(len).filter(|&e| e <= bytes.len());
            let Some(end) = end else {
                return Err(DecodeError {
                    message: "truncated byte blob",
                    offset: *pos,
                });
            };
            let b = bytes[*pos..end].to_vec();
            *pos = end;
            Ok(Value::Bytes(b))
        }
        TAG_GROUP => {
            let len = take_u32(bytes, pos)? as usize;
            let mut vs = Vec::new();
            for _ in 0..len {
                vs.push(decode_value(bytes, pos, depth + 1)?);
            }
            Ok(Value::Group(vs))
        }
        TAG_UNION => {
            let arm = take_u32(bytes, pos)? as usize;
            let value = Box::new(decode_value(bytes, pos, depth + 1)?);
            Ok(Value::Union { arm, value })
        }
        TAG_PTR_NULL => Ok(Value::Ptr { pointee: None }),
        TAG_PTR => Ok(Value::Ptr {
            pointee: Some(Box::new(decode_value(bytes, pos, depth + 1)?)),
        }),
        _ => Err(DecodeError {
            message: "unknown value tag",
            offset: *pos - 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_and_display() {
        let db = SpecDb::from_files(vec![
            crate::parse("t", "close$a(fd fd)\nclose$b(fd fd)\n").unwrap()
        ]);
        let a = db.syscall_index("close$a").unwrap() as u32;
        let b = db.syscall_index("close$b").unwrap() as u32;
        let mut p = Program {
            calls: vec![
                ProgCall {
                    sys: b,
                    args: vec![Value::Int(0)],
                },
                ProgCall {
                    sys: a,
                    args: vec![Value::Int(0)],
                },
            ],
        };
        assert_eq!(p.len(), 2);
        assert_eq!(p.calls[0].syscall(&db).name(), "close$b");
        p.truncate(1);
        assert_eq!(p.display(&db), "close$b");
        assert!(!p.is_empty());
    }

    #[test]
    fn binary_round_trip_preserves_every_value_shape() {
        let p = Program {
            calls: vec![
                ProgCall {
                    sys: 3,
                    args: vec![
                        Value::Int(u64::MAX),
                        Value::Res(ResRef {
                            producer: Some(0),
                            fallback: 7,
                        }),
                        Value::Res(ResRef {
                            producer: None,
                            fallback: 0xFFFF_FFFF_FFFF,
                        }),
                    ],
                },
                ProgCall {
                    sys: 0,
                    args: vec![
                        Value::Bytes(vec![0, 1, 255]),
                        Value::Group(vec![
                            Value::Int(1),
                            Value::Union {
                                arm: 2,
                                value: Box::new(Value::Ptr {
                                    pointee: Some(Box::new(Value::Bytes(Vec::new()))),
                                }),
                            },
                        ]),
                        Value::Ptr { pointee: None },
                    ],
                },
            ],
        };
        let mut buf = Vec::new();
        p.encode_into(&mut buf);
        // Self-delimiting: a second program concatenates cleanly.
        Program::default().encode_into(&mut buf);
        let mut pos = 0;
        assert_eq!(Program::decode_from(&buf, &mut pos).unwrap(), p);
        assert_eq!(
            Program::decode_from(&buf, &mut pos).unwrap(),
            Program::default()
        );
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decoder_rejects_corruption_without_panicking() {
        let p = Program {
            calls: vec![ProgCall {
                sys: 1,
                args: vec![Value::Int(5)],
            }],
        };
        let mut buf = Vec::new();
        p.encode_into(&mut buf);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(Program::decode_from(&buf[..cut], &mut pos).is_err());
        }
        // Unknown tag.
        let mut bad = buf.clone();
        let tag_at = 4 + 4 + 4; // n_calls, sys, n_args
        bad[tag_at] = 0xEE;
        let mut pos = 0;
        assert!(Program::decode_from(&bad, &mut pos).is_err());
        // Nesting past the depth bound: a chain of Ptr tags.
        let mut deep = Vec::new();
        super::put_u32(&mut deep, 1); // one call
        super::put_u32(&mut deep, 0); // sys
        super::put_u32(&mut deep, 1); // one arg
        deep.extend(std::iter::repeat_n(super::TAG_PTR, 200));
        deep.push(super::TAG_PTR_NULL);
        let mut pos = 0;
        let err = Program::decode_from(&deep, &mut pos).unwrap_err();
        assert_eq!(err.message, "value nesting too deep");
    }
}
