//! Program representation: an ordered list of syscalls with concrete
//! argument values and resource references into earlier calls.
//!
//! Calls reference their syscall description by dense [`SpecDb`]
//! index (see [`SpecDb::syscall_index`]) instead of owning a cloned
//! AST — a program is just indices plus argument values, so cloning
//! and mutating corpus entries never copies specification text.
//!
//! The type lives in `kgpt-syzlang` (not the fuzzer) because a
//! program is meaningful to every consumer of a compiled spec: the
//! fuzzer generates and executes programs, and the crash-triage
//! subsystem (`kgpt-triage`) projects and minimizes them without
//! pulling in the whole fuzzing loop.

use crate::db::SpecDb;
use crate::{Syscall, Value};
use serde::{Deserialize, Serialize};

/// One call in a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgCall {
    /// Dense index of the syscall description in the [`SpecDb`] the
    /// program was generated from.
    pub sys: u32,
    /// One value per parameter.
    pub args: Vec<Value>,
}

impl ProgCall {
    /// Resolve the syscall description against its database.
    #[must_use]
    pub fn syscall<'a>(&self, db: &'a SpecDb) -> &'a Syscall {
        db.syscall_at(self.sys as usize)
    }
}

/// A syscall sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Calls in execution order.
    pub calls: Vec<ProgCall>,
}

impl Program {
    /// Number of calls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Drop trailing calls, keeping resource references valid (they
    /// only ever point backwards).
    pub fn truncate(&mut self, len: usize) {
        self.calls.truncate(len);
    }

    /// Human-readable one-line-per-call rendering (for crash reports).
    #[must_use]
    pub fn display(&self, db: &SpecDb) -> String {
        self.calls
            .iter()
            .map(|c| c.syscall(db).name())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_and_display() {
        let db = SpecDb::from_files(vec![
            crate::parse("t", "close$a(fd fd)\nclose$b(fd fd)\n").unwrap()
        ]);
        let a = db.syscall_index("close$a").unwrap() as u32;
        let b = db.syscall_index("close$b").unwrap() as u32;
        let mut p = Program {
            calls: vec![
                ProgCall {
                    sys: b,
                    args: vec![Value::Int(0)],
                },
                ProgCall {
                    sys: a,
                    args: vec![Value::Int(0)],
                },
            ],
        };
        assert_eq!(p.len(), 2);
        assert_eq!(p.calls[0].syscall(&db).name(), "close$b");
        p.truncate(1);
        assert_eq!(p.display(&db), "close$b");
        assert!(!p.is_empty());
    }
}
