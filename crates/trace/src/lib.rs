//! # kgpt-trace — the flight recorder
//!
//! Compact per-exec trace capture and offline storage: every
//! execution a campaign shard runs can leave behind a self-contained
//! [`ExecTrace`] — small enough (tens of bytes of stream per exec,
//! see the `trace` section of `fuzz_bench`) that recording stays on
//! during campaigns — from which the deterministic replayer in
//! `kgpt-fuzzer` re-executes the exec bit-identically and
//! cross-checks the recorded block stream against the live run.
//!
//! ## Protocol overview
//!
//! The recorder is layered; each layer is independently testable and
//! strictly validated on the way back in:
//!
//! 1. **Event capture** (`kgpt-vkernel`): with tracing enabled, the
//!    kernel's exec path appends [`TraceEvent`]s to the per-VM
//!    [`kgpt_vkernel::TraceLog`] — merged `Block {start, len}` runs
//!    for every coverage retirement, executor-injected `Call {index}`
//!    markers at syscall boundaries, and a `Crash {site}` marker when
//!    a sanitizer fires. Capture never changes execution results.
//!
//! 2. **Delta coding** ([`encode_events`]/[`decode_events`]): the
//!    event list is bit-packed against a static prediction table
//!    ([`CfgSuccessors`], built from the booted kernel's block
//!    layout). Tokens are prefix-free, LSB-first within bytes:
//!
//!    ```text
//!    0                         PRED    + varint(len-1)
//!    10                        CALL    + varint(index delta)
//!    110                       DIVERGE + svarint(start - predicted) + varint(len-1)
//!    1110                      CRASH   + svarint(site - prev_block)
//!    1111                      END
//!    ```
//!
//!    A `PRED` block starts exactly where the table predicts from the
//!    previous block, so the common straight-line case costs one bit
//!    plus a short length. `varint` is a 5-bit-chunk little-endian
//!    code (`[more:1][data:4]`, at most 16 chunks); `svarint` zigzags
//!    a signed delta through it. Both the recorder and the replayer
//!    must use the same table for streams to compare byte-for-byte —
//!    which holds because the table is a pure function of the booted
//!    kernel.
//!
//! 3. **Trace framing** ([`ExecTrace`]): the stream plus everything
//!    replay needs — shard, epoch, per-shard exec ordinal, fuel
//!    budget, spec fingerprint, crash signature, and the encoded
//!    [`Program`] — in the workspace's dense little-endian framing.
//!
//! 4. **Storage** ([`TraceStore`]): a per-shard ring of the last N
//!    non-crashing traces plus a **pinned** map of crash traces
//!    (first trace per [`CrashSignature`] is kept forever; later
//!    execs can never evict it). Stores serialize with the standard
//!    `magic | version | FNV-1a checksum | payload` framing, so they
//!    ride inside campaign checkpoints (traces survive resume) and in
//!    standalone trace files ([`write_trace_file`]).
//!
//! Decoding is strict at every layer: truncation, bit flips and
//! garbage return [`TraceError`], never panic — pinned by the
//! robustness tests below, mirroring the checkpoint and fabric-wire
//! codecs.
//!
//! ## Replay contract
//!
//! An [`ExecTrace`] identifies its execution completely: the encoded
//! program, the spec fingerprint (refusing replay against the wrong
//! suite), and the fuel budget. Re-executing the program on the same
//! booted kernel with the same fuel limit reproduces the recorded
//! event stream bit-for-bit — the campaign loop is deterministic and
//! an exec's events depend only on (program, kernel, fuel). The
//! replayer (`kgpt-fuzzer`'s `flight` module) re-encodes the live
//! events with the same table and demands byte equality plus matching
//! crash signatures.

use kgpt_syzlang::lowered::CfgSuccessors;
use kgpt_syzlang::prog::Program;
use kgpt_vkernel::{CrashSignature, SanitizerKind, Sysno, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

pub use kgpt_syzlang::lowered::CfgRun;

/// File magic of a serialized [`TraceStore`].
const STORE_MAGIC: &[u8; 8] = b"KGPTTRCE";

/// File magic of a multi-store trace file ([`write_trace_file`]).
const FILE_MAGIC: &[u8; 8] = b"KGPTTRCF";

/// Current trace format version (store and file framing). Bumped on
/// any layout change; a reader never guesses at an unknown version.
const VERSION: u32 = 1;

/// Error decoding or validating trace data (truncation, bitrot,
/// malformed fields, fingerprint mismatches). Always names the
/// failing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    /// Build an error from any displayable message (consumers layering
    /// their own checks — e.g. the replayer's fingerprint validation —
    /// report through the same type).
    pub fn new(message: impl Into<String>) -> TraceError {
        TraceError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceError {}

/// FNV-1a over a byte slice — the payload checksum (same constants as
/// the checkpoint layer's; this crate sits below `kgpt-fuzzer` so it
/// carries its own copy). Catches truncation and bitrot — the threat
/// model; not a cryptographic seal.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- bit-level coding -----------------------------------------------------

/// LSB-first bit writer for the token stream.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bits: u32,
}

impl BitWriter {
    fn bit(&mut self, b: bool) {
        let idx = (self.bits / 8) as usize;
        if idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if b {
            self.bytes[idx] |= 1 << (self.bits % 8);
        }
        self.bits += 1;
    }

    /// Little-endian variable-length code: 5-bit chunks of
    /// `[more:1][data:4]`, low data bits first, at most 16 chunks.
    fn varint(&mut self, mut v: u64) {
        loop {
            let chunk = (v & 0xF) as u8;
            v >>= 4;
            let more = v != 0;
            self.bit(more);
            for i in 0..4 {
                self.bit(chunk >> i & 1 == 1);
            }
            if !more {
                break;
            }
        }
    }

    /// Zigzag a signed delta through [`BitWriter::varint`].
    fn svarint(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    fn finish(self) -> (Vec<u8>, u32) {
        (self.bytes, self.bits)
    }
}

/// LSB-first bit reader; every read is bounds-checked against the
/// declared bit length.
struct BitReader<'a> {
    bytes: &'a [u8],
    bits: u32,
    pos: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8], bits: u32) -> Result<BitReader<'a>, TraceError> {
        if (bits as usize).div_ceil(8) != bytes.len() {
            return Err(TraceError::new(format!(
                "trace stream length mismatch: {} bits declared, {} bytes present",
                bits,
                bytes.len()
            )));
        }
        BitReader {
            bytes,
            bits,
            pos: 0,
        }
        .check_padding()
    }

    /// The writer zero-fills the final partial byte; any set padding
    /// bit means the stream was not produced by the encoder.
    fn check_padding(self) -> Result<BitReader<'a>, TraceError> {
        if let Some(&last) = self.bytes.last() {
            let used = self.bits % 8;
            if used != 0 && last >> used != 0 {
                return Err(TraceError::new("nonzero padding bits in trace stream"));
            }
        }
        Ok(self)
    }

    fn bit(&mut self) -> Result<bool, TraceError> {
        if self.pos >= self.bits {
            return Err(TraceError::new("trace stream ended mid-token"));
        }
        let b = self.bytes[(self.pos / 8) as usize] >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        for chunk in 0..16 {
            let more = self.bit()?;
            let mut data = 0u64;
            for i in 0..4 {
                data |= u64::from(self.bit()?) << i;
            }
            v |= data << (4 * chunk);
            if !more {
                return Ok(v);
            }
        }
        Err(TraceError::new("varint longer than 16 chunks"))
    }

    fn svarint(&mut self) -> Result<i64, TraceError> {
        let z = self.varint()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }
}

// ---- event-stream coding --------------------------------------------------

/// Delta-code an event list into a bit-packed token stream (see the
/// crate docs for the token grammar). Returns the packed bytes and
/// the exact bit length. Pure: the same `(table, events)` pair always
/// produces the same bytes, which is what lets the replayer compare
/// streams byte-for-byte.
#[must_use]
pub fn encode_events(cfg: &CfgSuccessors, events: &[TraceEvent]) -> (Vec<u8>, u32) {
    let mut w = BitWriter::default();
    let mut prev_block = 0u64;
    let mut next_call = 0u32;
    for ev in events {
        match *ev {
            TraceEvent::Block { start, len } => {
                if len == 0 {
                    continue;
                }
                let predicted = cfg.predict(prev_block);
                if start == predicted {
                    w.bit(false);
                } else {
                    w.bit(true);
                    w.bit(true);
                    w.bit(false);
                    w.svarint((start as i64).wrapping_sub(predicted as i64));
                }
                w.varint(u64::from(len - 1));
                prev_block = start + u64::from(len) - 1;
            }
            TraceEvent::Call { index } => {
                w.bit(true);
                w.bit(false);
                w.varint(u64::from(index.wrapping_sub(next_call)));
                next_call = index.wrapping_add(1);
            }
            TraceEvent::Crash { site } => {
                w.bit(true);
                w.bit(true);
                w.bit(true);
                w.bit(false);
                w.svarint((site as i64).wrapping_sub(prev_block as i64));
            }
        }
    }
    w.bit(true);
    w.bit(true);
    w.bit(true);
    w.bit(true);
    w.finish()
}

/// Decode a token stream produced by [`encode_events`] back into the
/// event list, using the same prediction table.
///
/// # Errors
///
/// Returns a [`TraceError`] on truncation (stream ends before `END`),
/// length mismatches, nonzero padding, out-of-range deltas, or
/// trailing bits after `END` — strict, never a panic or a silent
/// partial decode.
pub fn decode_events(
    cfg: &CfgSuccessors,
    stream: &[u8],
    bits: u32,
) -> Result<Vec<TraceEvent>, TraceError> {
    let mut r = BitReader::new(stream, bits)?;
    let mut events = Vec::new();
    let mut prev_block = 0u64;
    let mut next_call = 0u32;
    loop {
        if !r.bit()? {
            // PRED: the block run starts where the table predicts.
            let start = cfg.predict(prev_block);
            let len = take_len(&mut r)?;
            prev_block = end_of_run(start, len)?;
            events.push(TraceEvent::Block { start, len });
            continue;
        }
        if !r.bit()? {
            // CALL
            let delta = r.varint()?;
            let delta = u32::try_from(delta)
                .map_err(|_| TraceError::new("call-index delta out of range"))?;
            let index = next_call.wrapping_add(delta);
            next_call = index.wrapping_add(1);
            events.push(TraceEvent::Call { index });
            continue;
        }
        if !r.bit()? {
            // DIVERGE
            let delta = r.svarint()?;
            let predicted = cfg.predict(prev_block);
            let start = offset_block(predicted, delta)?;
            let len = take_len(&mut r)?;
            prev_block = end_of_run(start, len)?;
            events.push(TraceEvent::Block { start, len });
        } else if !r.bit()? {
            // CRASH
            let delta = r.svarint()?;
            let site = offset_block(prev_block, delta)?;
            events.push(TraceEvent::Crash { site });
        } else {
            // END
            break;
        }
    }
    if r.pos != r.bits {
        return Err(TraceError::new(format!(
            "{} trailing bits after trace END token",
            r.bits - r.pos
        )));
    }
    Ok(events)
}

/// Read a `len-1` varint and return the run length as `u32`.
fn take_len(r: &mut BitReader<'_>) -> Result<u32, TraceError> {
    let v = r.varint()?;
    v.checked_add(1)
        .and_then(|l| u32::try_from(l).ok())
        .ok_or_else(|| TraceError::new("block-run length out of range"))
}

/// Apply a signed delta to a block id, rejecting wraparound.
fn offset_block(base: u64, delta: i64) -> Result<u64, TraceError> {
    let v = i128::from(base) + i128::from(delta);
    u64::try_from(v).map_err(|_| TraceError::new("block id out of range"))
}

/// Last block id of a run, rejecting wraparound.
fn end_of_run(start: u64, len: u32) -> Result<u64, TraceError> {
    start
        .checked_add(u64::from(len) - 1)
        .ok_or_else(|| TraceError::new("block run past the id space"))
}

// ---- trace framing --------------------------------------------------------

/// One recorded execution: the delta-coded event stream plus the
/// complete replay header (see the crate docs' replay contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecTrace {
    /// Shard that ran the exec.
    pub shard: u32,
    /// Shard epoch the exec ran in.
    pub epoch: u64,
    /// Shard-local exec ordinal (0-based over the shard's lifetime).
    pub exec: u64,
    /// Per-exec fuel budget the exec ran under (0 = unlimited);
    /// replay must reuse it for exhaustion to reproduce.
    pub exec_fuel: u64,
    /// Fingerprint of the compiled spec suite the program was
    /// generated against; replay refuses a mismatch.
    pub spec_fingerprint: u64,
    /// Whether the exec exhausted its fuel budget.
    pub fuel_exhausted: bool,
    /// Crash signature, when the exec crashed.
    pub crash: Option<CrashSignature>,
    /// The executed [`Program`], encoded with
    /// [`Program::encode_into`].
    pub program: Vec<u8>,
    /// Delta-coded event stream ([`encode_events`]).
    pub stream: Vec<u8>,
    /// Exact bit length of `stream`.
    pub stream_bits: u32,
}

impl ExecTrace {
    /// Decode the recorded program.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the embedded program bytes are
    /// malformed or carry trailing garbage.
    pub fn decode_program(&self) -> Result<Program, TraceError> {
        let mut pos = 0usize;
        let prog = Program::decode_from(&self.program, &mut pos)
            .map_err(|e| TraceError::new(format!("trace program decode failed: {e}")))?;
        if pos != self.program.len() {
            return Err(TraceError::new(format!(
                "{} trailing bytes after trace program",
                self.program.len() - pos
            )));
        }
        Ok(prog)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shard);
        put_u64(out, self.epoch);
        put_u64(out, self.exec);
        put_u64(out, self.exec_fuel);
        put_u64(out, self.spec_fingerprint);
        let mut flags = 0u8;
        if self.fuel_exhausted {
            flags |= 1;
        }
        if self.crash.is_some() {
            flags |= 2;
        }
        out.push(flags);
        if let Some(sig) = &self.crash {
            out.push(sig.sysno.as_index());
            out.push(sig.chain_depth);
            out.push(sig.sanitizer.as_index());
            put_u64(out, sig.site);
        }
        put_u32(out, u32::try_from(self.program.len()).unwrap_or(u32::MAX));
        out.extend_from_slice(&self.program);
        put_u32(out, self.stream_bits);
        put_u32(out, u32::try_from(self.stream.len()).unwrap_or(u32::MAX));
        out.extend_from_slice(&self.stream);
    }

    fn decode_from(bytes: &[u8], pos: &mut usize) -> Result<ExecTrace, TraceError> {
        let shard = take_u32(bytes, pos)?;
        let epoch = take_u64(bytes, pos)?;
        let exec = take_u64(bytes, pos)?;
        let exec_fuel = take_u64(bytes, pos)?;
        let spec_fingerprint = take_u64(bytes, pos)?;
        let flags = take_u8(bytes, pos)?;
        if flags & !3 != 0 {
            return Err(TraceError::new(format!("unknown trace flags {flags:#x}")));
        }
        let fuel_exhausted = flags & 1 != 0;
        let crash = if flags & 2 != 0 {
            let sysno = Sysno::from_index(take_u8(bytes, pos)?)
                .ok_or_else(|| TraceError::new("trace crash sysno out of range"))?;
            let chain_depth = take_u8(bytes, pos)?;
            let sanitizer = SanitizerKind::from_index(take_u8(bytes, pos)?)
                .ok_or_else(|| TraceError::new("trace crash sanitizer out of range"))?;
            let site = take_u64(bytes, pos)?;
            Some(CrashSignature {
                sysno,
                chain_depth,
                sanitizer,
                site,
            })
        } else {
            None
        };
        let program = take_bytes(bytes, pos)?;
        let stream_bits = take_u32(bytes, pos)?;
        let stream = take_bytes(bytes, pos)?;
        if (stream_bits as usize).div_ceil(8) != stream.len() {
            return Err(TraceError::new(format!(
                "trace stream length mismatch: {} bits declared, {} bytes present",
                stream_bits,
                stream.len()
            )));
        }
        Ok(ExecTrace {
            shard,
            epoch,
            exec,
            exec_fuel,
            spec_fingerprint,
            fuel_exhausted,
            crash,
            program,
            stream,
            stream_bits,
        })
    }
}

// ---- storage --------------------------------------------------------------

/// Per-shard trace retention: a bounded ring of the most recent
/// non-crashing traces plus a pinned map of crash traces.
///
/// Crash-path execs are **always retained**: the first trace per
/// [`CrashSignature`] goes into the pinned map and later execs can
/// never overwrite or evict it, regardless of ring churn — the fix
/// the crash-replay CI smoke relies on. Non-crashing traces share the
/// ring; when full, the oldest is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStore {
    /// Ring capacity (non-crash traces retained).
    cap: usize,
    /// Total executions recorded into this store over its lifetime.
    execs_seen: u64,
    /// Most recent non-crashing traces, oldest first.
    ring: VecDeque<ExecTrace>,
    /// First trace per crash signature, pinned forever.
    pinned: BTreeMap<CrashSignature, ExecTrace>,
}

impl TraceStore {
    /// Empty store retaining up to `cap` non-crash traces.
    #[must_use]
    pub fn new(cap: usize) -> TraceStore {
        TraceStore {
            cap,
            execs_seen: 0,
            ring: VecDeque::new(),
            pinned: BTreeMap::new(),
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total executions recorded over the store's lifetime (including
    /// every trace the ring has since dropped).
    #[must_use]
    pub fn execs_seen(&self) -> u64 {
        self.execs_seen
    }

    /// Record one exec's trace: crash traces are pinned
    /// (first-per-signature wins, never evicted), the rest rotate
    /// through the ring.
    pub fn record(&mut self, trace: ExecTrace) {
        self.execs_seen += 1;
        if let Some(sig) = trace.crash {
            self.pinned.entry(sig).or_insert(trace);
            return;
        }
        if self.cap == 0 {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(trace);
    }

    /// The ring of retained non-crash traces, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &ExecTrace> {
        self.ring.iter()
    }

    /// The pinned crash traces, in signature order.
    pub fn pinned(&self) -> impl Iterator<Item = (&CrashSignature, &ExecTrace)> {
        self.pinned.iter()
    }

    /// The pinned trace for `sig`, if this store saw the crash.
    #[must_use]
    pub fn pinned_for(&self, sig: &CrashSignature) -> Option<&ExecTrace> {
        self.pinned.get(sig)
    }

    /// Every retained trace: the ring (oldest first) then the pinned
    /// crash traces (signature order).
    pub fn iter(&self) -> impl Iterator<Item = &ExecTrace> {
        self.ring.iter().chain(self.pinned.values())
    }

    /// Number of retained traces (ring + pinned).
    #[must_use]
    pub fn retained(&self) -> usize {
        self.ring.len() + self.pinned.len()
    }

    /// Number of pinned crash traces.
    #[must_use]
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Total encoded-stream bytes across retained traces (what the
    /// bits-per-exec bench metric amortizes over the campaign).
    #[must_use]
    pub fn stream_bytes(&self) -> u64 {
        self.iter().map(|t| t.stream.len() as u64).sum()
    }

    /// Total encoded-stream bits across retained traces.
    #[must_use]
    pub fn stream_bits(&self) -> u64 {
        self.iter().map(|t| u64::from(t.stream_bits)).sum()
    }

    /// Serialize with the standard framing
    /// (`magic | version | checksum | payload`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.cap as u64);
        put_u64(&mut payload, self.execs_seen);
        put_u32(
            &mut payload,
            u32::try_from(self.ring.len()).unwrap_or(u32::MAX),
        );
        for t in &self.ring {
            t.encode_into(&mut payload);
        }
        put_u32(
            &mut payload,
            u32::try_from(self.pinned.len()).unwrap_or(u32::MAX),
        );
        for t in self.pinned.values() {
            t.encode_into(&mut payload);
        }
        frame(STORE_MAGIC, &payload)
    }

    /// Parse a store previously produced by [`TraceStore::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on wrong magic, unknown version,
    /// checksum mismatch (truncation/bitrot), malformed fields,
    /// ring traces carrying a crash, pinned traces missing one, or
    /// trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceStore, TraceError> {
        let payload = unframe(STORE_MAGIC, "trace store", bytes)?;
        let bytes = payload;
        let mut pos = 0usize;
        let cap = usize::try_from(take_u64(bytes, &mut pos)?)
            .map_err(|_| TraceError::new("trace ring capacity out of range"))?;
        let execs_seen = take_u64(bytes, &mut pos)?;
        let n_ring = take_u32(bytes, &mut pos)? as usize;
        let mut ring = VecDeque::new();
        for _ in 0..n_ring {
            let t = ExecTrace::decode_from(bytes, &mut pos)?;
            if t.crash.is_some() {
                return Err(TraceError::new("crash trace in the non-crash ring"));
            }
            ring.push_back(t);
        }
        if ring.len() > cap {
            return Err(TraceError::new("trace ring larger than its capacity"));
        }
        let n_pinned = take_u32(bytes, &mut pos)? as usize;
        let mut pinned = BTreeMap::new();
        for _ in 0..n_pinned {
            let t = ExecTrace::decode_from(bytes, &mut pos)?;
            let Some(sig) = t.crash else {
                return Err(TraceError::new("pinned trace without a crash signature"));
            };
            if pinned.insert(sig, t).is_some() {
                return Err(TraceError::new("duplicate pinned crash signature"));
            }
        }
        if pos != bytes.len() {
            return Err(TraceError::new(format!(
                "{} trailing bytes after trace store payload",
                bytes.len() - pos
            )));
        }
        Ok(TraceStore {
            cap,
            execs_seen,
            ring,
            pinned,
        })
    }
}

/// Write one trace file holding the per-shard stores of a campaign
/// (shard-id order), with the standard outer framing.
///
/// # Errors
///
/// Returns a [`TraceError`] when the filesystem rejects the write.
pub fn write_trace_file(path: &Path, stores: &[TraceStore]) -> Result<(), TraceError> {
    let mut payload = Vec::new();
    put_u32(
        &mut payload,
        u32::try_from(stores.len()).unwrap_or(u32::MAX),
    );
    for s in stores {
        let bytes = s.to_bytes();
        put_u32(&mut payload, u32::try_from(bytes.len()).unwrap_or(u32::MAX));
        payload.extend_from_slice(&bytes);
    }
    std::fs::write(path, frame(FILE_MAGIC, &payload))
        .map_err(|e| TraceError::new(format!("write {} failed: {e}", path.display())))
}

/// Read a trace file written by [`write_trace_file`].
///
/// # Errors
///
/// Returns a [`TraceError`] when the file cannot be read or any
/// framing/store layer fails validation.
pub fn read_trace_file(path: &Path) -> Result<Vec<TraceStore>, TraceError> {
    let bytes = std::fs::read(path)
        .map_err(|e| TraceError::new(format!("read {} failed: {e}", path.display())))?;
    let payload = unframe(FILE_MAGIC, "trace file", &bytes)?;
    let mut pos = 0usize;
    let n = take_u32(payload, &mut pos)? as usize;
    let mut stores = Vec::new();
    for _ in 0..n {
        let store_bytes = take_bytes(payload, &mut pos)?;
        stores.push(TraceStore::from_bytes(&store_bytes)?);
    }
    if pos != payload.len() {
        return Err(TraceError::new(format!(
            "{} trailing bytes after trace file payload",
            payload.len() - pos
        )));
    }
    Ok(stores)
}

/// Wrap a payload in `magic | version | checksum | payload`.
fn frame(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(magic);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, fnv1a(payload));
    out.extend_from_slice(payload);
    out
}

/// Validate and strip the outer framing, returning the payload.
fn unframe<'a>(magic: &[u8; 8], what: &str, bytes: &'a [u8]) -> Result<&'a [u8], TraceError> {
    if bytes.len() < magic.len() + 12 {
        return Err(TraceError::new(format!(
            "{what} too short ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..8] != magic {
        return Err(TraceError::new(format!("bad {what} magic")));
    }
    let mut pos = 8usize;
    let version = take_u32(bytes, &mut pos)?;
    if version != VERSION {
        return Err(TraceError::new(format!(
            "unsupported {what} version {version} (expected {VERSION})"
        )));
    }
    let checksum = take_u64(bytes, &mut pos)?;
    let payload = &bytes[pos..];
    if fnv1a(payload) != checksum {
        return Err(TraceError::new(format!("{what} checksum mismatch")));
    }
    Ok(payload)
}

// ---- primitive writers/readers --------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, TraceError> {
    let b = bytes
        .get(*pos)
        .copied()
        .ok_or_else(|| TraceError::new("trace data truncated reading u8"))?;
    *pos += 1;
    Ok(b)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, TraceError> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| TraceError::new("trace data truncated reading u32"))?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(buf))
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| TraceError::new("trace data truncated reading u64"))?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(buf))
}

fn take_bytes(bytes: &[u8], pos: &mut usize) -> Result<Vec<u8>, TraceError> {
    let len = take_u32(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| TraceError::new("trace data truncated reading bytes"))?;
    let out = bytes[*pos..end].to_vec();
    *pos = end;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CfgSuccessors {
        CfgSuccessors::build(vec![
            CfgRun {
                start: 4096,
                len: 4,
                next: None,
            },
            CfgRun {
                start: 4196,
                len: 3,
                next: Some(4228),
            },
            CfgRun {
                start: 4228,
                len: 2,
                next: None,
            },
        ])
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Call { index: 0 },
            TraceEvent::Block {
                start: 4096,
                len: 4,
            },
            TraceEvent::Call { index: 1 },
            TraceEvent::Block {
                start: 4196,
                len: 3,
            },
            TraceEvent::Block {
                start: 4228,
                len: 2,
            },
            TraceEvent::Call { index: 3 },
            TraceEvent::Crash { site: 8096 },
        ]
    }

    fn sig() -> CrashSignature {
        CrashSignature {
            sysno: Sysno::Ioctl,
            chain_depth: 1,
            sanitizer: SanitizerKind::Kmalloc,
            site: 8096,
        }
    }

    fn trace_with(crash: Option<CrashSignature>, exec: u64) -> ExecTrace {
        let (stream, stream_bits) = encode_events(&table(), &sample_events());
        ExecTrace {
            shard: 2,
            epoch: 5,
            exec,
            exec_fuel: 1 << 20,
            spec_fingerprint: 0xFEED_F00D,
            fuel_exhausted: false,
            crash,
            program: vec![0, 0, 0, 0], // empty Program encoding
            stream,
            stream_bits,
        }
    }

    #[test]
    fn varints_round_trip_at_extremes() {
        for v in [0u64, 1, 15, 16, 255, 4096, u64::from(u32::MAX), u64::MAX] {
            let mut w = BitWriter::default();
            w.varint(v);
            let (bytes, bits) = w.finish();
            let mut r = BitReader::new(&bytes, bits).unwrap();
            assert_eq!(r.varint().unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut w = BitWriter::default();
            w.svarint(v);
            let (bytes, bits) = w.finish();
            let mut r = BitReader::new(&bytes, bits).unwrap();
            assert_eq!(r.svarint().unwrap(), v);
        }
    }

    #[test]
    fn event_streams_round_trip() {
        let cfg = table();
        let events = sample_events();
        let (stream, bits) = encode_events(&cfg, &events);
        assert_eq!(decode_events(&cfg, &stream, bits).unwrap(), events);
        // Empty stream: just the END token.
        let (stream, bits) = encode_events(&cfg, &[]);
        assert_eq!(bits, 4);
        assert_eq!(decode_events(&cfg, &stream, bits).unwrap(), Vec::new());
    }

    #[test]
    fn predicted_successors_compress_the_stream() {
        let cfg = table();
        // 4196..=4198 falls through to 4228 per the table: the second
        // block run costs a 1-bit PRED token instead of a DIVERGE.
        let predicted = [
            TraceEvent::Block {
                start: 4196,
                len: 3,
            },
            TraceEvent::Block {
                start: 4228,
                len: 2,
            },
        ];
        let diverging = [
            TraceEvent::Block {
                start: 4196,
                len: 3,
            },
            TraceEvent::Block {
                start: 5000,
                len: 2,
            },
        ];
        let (_, predicted_bits) = encode_events(&cfg, &predicted);
        let (_, diverging_bits) = encode_events(&cfg, &diverging);
        assert!(
            predicted_bits < diverging_bits,
            "PRED {predicted_bits} bits vs DIVERGE {diverging_bits} bits"
        );
    }

    #[test]
    fn truncated_streams_error_at_every_cut() {
        let cfg = table();
        let (stream, bits) = encode_events(&cfg, &sample_events());
        for cut in 0..bits {
            let bytes = &stream[..(cut as usize).div_ceil(8)];
            // Mask padding so only the truncation itself can trip.
            let mut owned = bytes.to_vec();
            if cut % 8 != 0 {
                if let Some(last) = owned.last_mut() {
                    *last &= (1u16 << (cut % 8)) as u8 - 1;
                }
            }
            assert!(
                decode_events(&cfg, &owned, cut).is_err(),
                "cut at bit {cut} decoded"
            );
        }
    }

    #[test]
    fn garbage_streams_never_panic() {
        let cfg = table();
        let mut rng = 0x1234_5678_9abc_def0u64;
        for _ in 0..256 {
            let len = (rng % 32) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                bytes.push((rng >> 33) as u8);
            }
            let bits = (len * 8) as u32;
            // Any outcome but a panic is acceptable for raw garbage…
            let _ = decode_events(&cfg, &bytes, bits);
            // …and a wrong declared length must error.
            assert!(decode_events(&cfg, &bytes, bits + 8).is_err());
        }
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        let cfg = table();
        let (mut stream, bits) = encode_events(&cfg, &sample_events());
        if bits % 8 != 0 {
            *stream.last_mut().unwrap() |= 0x80;
            let err = decode_events(&cfg, &stream, bits).unwrap_err();
            assert!(err.message.contains("padding"), "{err}");
        }
    }

    #[test]
    fn stores_round_trip_and_reject_corruption() {
        let mut store = TraceStore::new(2);
        store.record(trace_with(None, 0));
        store.record(trace_with(Some(sig()), 1));
        store.record(trace_with(None, 2));
        let bytes = store.to_bytes();
        assert_eq!(TraceStore::from_bytes(&bytes).unwrap(), store);
        // Truncation at every prefix is rejected, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                TraceStore::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
        // Any single-byte flip is rejected (header checks or checksum).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(TraceStore::from_bytes(&bad).is_err(), "flip at {i} parsed");
        }
    }

    #[test]
    fn garbage_store_bytes_never_panic() {
        let mut rng = 0x0bad_cafe_dead_beefu64;
        for _ in 0..256 {
            let len = (rng % 64) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                bytes.push((rng >> 33) as u8);
            }
            assert!(TraceStore::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn crash_traces_are_pinned_and_never_evicted() {
        let mut store = TraceStore::new(2);
        store.record(trace_with(Some(sig()), 7));
        // Churn the ring far past its capacity: the crash trace must
        // survive untouched, first capture wins.
        for i in 0..100 {
            store.record(trace_with(None, 100 + i));
        }
        store.record(trace_with(Some(sig()), 999));
        assert_eq!(store.pinned_len(), 1);
        let pinned = store.pinned_for(&sig()).unwrap();
        assert_eq!(pinned.exec, 7, "first crash capture wins");
        assert_eq!(store.ring().count(), 2);
        assert_eq!(store.execs_seen(), 102);
        // Ring keeps the most recent non-crash traces.
        let execs: Vec<u64> = store.ring().map(|t| t.exec).collect();
        assert_eq!(execs, vec![198, 199]);
    }

    #[test]
    fn zero_capacity_ring_still_pins_crashes() {
        let mut store = TraceStore::new(0);
        store.record(trace_with(None, 0));
        store.record(trace_with(Some(sig()), 1));
        assert_eq!(store.ring().count(), 0);
        assert_eq!(store.pinned_len(), 1);
        assert_eq!(store.retained(), 1);
    }

    #[test]
    fn trace_files_round_trip() {
        let mut a = TraceStore::new(4);
        a.record(trace_with(None, 0));
        let mut b = TraceStore::new(4);
        b.record(trace_with(Some(sig()), 3));
        let path = std::env::temp_dir().join(format!("kgpt_trace_file_{}.trc", std::process::id()));
        write_trace_file(&path, &[a.clone(), b.clone()]).unwrap();
        let stores = read_trace_file(&path).unwrap();
        assert_eq!(stores, vec![a, b]);
        // Corrupt one payload byte: the file no longer reads.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_trace_file(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exec_trace_program_round_trips_through_the_store() {
        let t = trace_with(Some(sig()), 1);
        let prog = t.decode_program().unwrap();
        assert!(prog.is_empty());
        // Trailing garbage after the program is rejected.
        let mut bad = t.clone();
        bad.program.push(0);
        assert!(bad.decode_program().is_err());
    }
}
