//! # kgpt-fabric
//!
//! The distributed campaign fabric: one **coordinator** process hands
//! out shard-range leases to worker processes, collects their
//! per-epoch deltas, and merges them — in shard-id order, at
//! lockstep epoch boundaries — into a
//! [`kgpt_fuzzer::CampaignResult`] that is **bit-identical** to a
//! single-process [`kgpt_fuzzer::ShardedCampaign`] run of the same
//! config, across process boundaries.
//!
//! The deterministic halves (the epoch stepper a worker drives and
//! the order-preserving merge the coordinator applies) live in
//! [`kgpt_fuzzer::fabric`]; this crate adds the protocol around
//! them:
//!
//! * [`wire`] — the message set ([`wire::Message`]) and its framing:
//!   version + FNV-1a checksum per frame, bodies in the
//!   `CampaignSnapshot` dense codec, so a delta is literally a
//!   checkpoint fragment; boundary frames are tagged
//!   [`wire::DeltaKind::Full`] (complete per-shard snapshots — the
//!   mandatory first frame of every lease) or
//!   [`wire::DeltaKind::Incremental`] (sparse
//!   [`kgpt_fuzzer::EpochPatch`] diffs against the last acked
//!   boundary, roughly an order of magnitude smaller);
//! * [`transport`] — a pluggable byte-frame [`transport::Transport`]:
//!   in-memory channels for tests, length-prefixed localhost TCP for
//!   real workers, and a fault-injecting wrapper
//!   ([`transport::FaultyTransport`]) that drops or duplicates the
//!   n-th outbound frame from a [`kgpt_fuzzer::FaultPlan`];
//! * [`lease`] — the coordinator's range bookkeeping
//!   ([`lease::LeaseTable`]): contiguous shard ranges in
//!   registration order (worker-id order *is* shard-id order),
//!   deadlines, expiry counters;
//! * [`coordinator`] — the single-threaded coordinator loop:
//!   register → grant → collect deltas → barrier-merge → reply,
//!   with deterministic failure handling (lease expiry reassigns the
//!   range to the next registrant with the last *committed* boundary
//!   snapshots; duplicate deltas re-ack without re-merging; corrupt
//!   frames are rejected by checksum and recovered by sender resend);
//! * [`worker`] — the thin worker loop around
//!   [`kgpt_fuzzer::LeaseRunner`]: claim lease → run epoch → ship
//!   delta → await ack (resending on timeout) → import seeds →
//!   repeat until `Finish`;
//! * [`service`] — the multi-tenant layer ([`service::TenantService`])
//!   over the same wire: several named campaigns share one
//!   coordinator process and one worker pool, each with its own
//!   config, spec fingerprint, and [`budget::TenantQuota`];
//! * [`budget`] — per-tenant resource budgets
//!   ([`budget::BudgetTracker`]): execs / wall-time / delta-byte
//!   quotas checked only at epoch boundaries, so overflow triggers
//!   graceful termination, never a mid-epoch abort;
//! * [`health`] — worker supervision ([`health::HealthTable`]):
//!   strike counters per stable worker id, deterministic quarantine
//!   measured in grant cycles, and overload shedding (parked, not
//!   dropped) past the worker cap.
//!
//! ## Protocol v3: tenant tagging, retry, quarantine
//!
//! Frame layout is unchanged from v2 (`version | checksum | tag |
//! body`), but the version byte is now **3** and the message set
//! grew multi-tenant coordinates:
//!
//! * `Register` carries a stable `worker_id` (0 = anonymous) — the
//!   key the service's health table tracks strikes and quarantine by;
//! * `Grant`, `Delta`, `Proceed`, and `Finish` carry the `tenant` id
//!   that scoped them, so one connection is always pinned to exactly
//!   one tenant's campaign and a misrouted delta is a protocol
//!   violation, not a merge hazard;
//! * `Retry` (new) is the service's refusal: `after_grants` tells the
//!   worker when to re-register (a deadline in *grant cycles*, the
//!   service's deterministic clock), `quarantined` says whether the
//!   refusal was earned (strikes) or circumstantial (worker cap).
//!
//! A quarantined worker is refused re-registration until the cooldown
//! lapses; its range re-runs elsewhere from committed snapshots, so
//! byzantine workers cost bandwidth, never correctness. Tenant
//! budgets are enforced at the same boundaries the merge commits at:
//! an exhausted tenant finishes its current boundary, folds what was
//! committed, and releases its leases — bit-identical to an unlimited
//! run halted at the same boundary.
//!
//! Because committed state only advances at full boundaries, a worker
//! killed mid-lease loses exactly its uncommitted epochs: the
//! replacement re-runs them from the committed boundary and the
//! campaign result does not change — the failure matrix is part of
//! the determinism contract, not an exception to it.

pub mod budget;
pub mod coordinator;
pub mod health;
pub mod lease;
pub mod service;
pub mod transport;
pub mod wire;
pub mod worker;

pub use budget::{BudgetTracker, BudgetUsage, OverflowKind, TenantQuota};
pub use coordinator::{Coordinator, CoordinatorOpts, FabricStats};
pub use health::{Admission, HealthOpts, HealthTable, StrikeKind};
pub use lease::LeaseTable;
pub use service::{ServiceOpts, ServiceStats, TenantResult, TenantService, TenantSpec};
pub use transport::{ChannelTransport, FaultyTransport, TcpTransport, Transport};
pub use wire::{DeltaKind, DeltaPayload, Grant, Message};
pub use worker::{
    flap_worker, run_worker, FlapOutcome, GrantHook, RetryAdvice, WorkerOpts, WorkerSummary,
};

use kgpt_fuzzer::CheckpointError;
use std::fmt;

/// Errors surfaced by the fabric protocol.
///
/// Transient wire damage (a corrupt frame, a dropped delta) is *not*
/// an error — it is absorbed by checksum rejection and resend. An
/// error here means the protocol itself was violated or the
/// underlying transport failed unrecoverably.
#[derive(Debug)]
pub enum FabricError {
    /// The underlying transport failed (socket error, channel gone).
    Io(std::io::Error),
    /// A peer violated the protocol (wrong message, bad fingerprint,
    /// reply never arrived within the resend budget).
    Protocol(String),
    /// A message body failed to decode under the checkpoint codec.
    Codec(CheckpointError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Io(e) => write!(f, "fabric transport error: {e}"),
            FabricError::Protocol(m) => write!(f, "fabric protocol error: {m}"),
            FabricError::Codec(e) => write!(f, "fabric codec error: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> FabricError {
        FabricError::Io(e)
    }
}

impl From<CheckpointError> for FabricError {
    fn from(e: CheckpointError) -> FabricError {
        FabricError::Codec(e)
    }
}
