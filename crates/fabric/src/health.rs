//! Worker-health supervision: strike counters, deterministic
//! quarantine, and overload shedding.
//!
//! The multi-tenant service keys a [`HealthTable`] on the stable
//! `worker_id` a worker sends in `Register` (0 = anonymous, never
//! tracked). Three behaviours earn a **strike**: a checksum-rejected
//! frame, a revoked patch (wrong-range delta or an increment that
//! does not fit the committed base), and a lease expiry (including
//! disconnecting with an active lease — the flapping pattern). At
//! [`HealthOpts::strike_limit`] strikes the worker is **quarantined**:
//! its re-registrations are refused with a `Retry` until
//! [`HealthOpts::quarantine_grants`] further grant cycles have been
//! issued — a deterministic cooldown measured in protocol progress,
//! not wall time, so tests and CI observe the exact same refusals.
//! Registrations beyond [`HealthOpts::worker_cap`] seated workers are
//! **parked** with a retry-after, not dropped.
//!
//! None of this touches merge state: quarantine only changes *who*
//! re-runs a range, and every range re-runs from committed boundary
//! snapshots, so the campaign result is identical with or without a
//! byzantine worker in the mix.

use std::collections::BTreeMap;

/// Supervision thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthOpts {
    /// Strikes at which a worker is quarantined.
    pub strike_limit: u32,
    /// Quarantine cooldown, measured in grant cycles issued by the
    /// service after the quarantine began.
    pub quarantine_grants: u64,
    /// Maximum simultaneously seated workers (0 = unlimited);
    /// registrations beyond it are parked with a retry-after.
    pub worker_cap: usize,
    /// Retry-after handed to parked (overload-shed) registrants,
    /// in grant cycles.
    pub park_grants: u64,
}

impl Default for HealthOpts {
    fn default() -> HealthOpts {
        HealthOpts {
            strike_limit: 3,
            quarantine_grants: 8,
            worker_cap: 0,
            park_grants: 2,
        }
    }
}

/// What earned a strike — kept for accounting symmetry with the
/// protocol's failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrikeKind {
    /// A frame from this worker failed checksum/decode.
    RejectedFrame,
    /// A delta/patch from this worker was revoked (wrong range, or an
    /// increment that does not fit the committed base).
    RevokedPatch,
    /// The worker's lease expired or it disconnected mid-lease.
    LeaseExpiry,
}

#[derive(Debug, Clone, Copy, Default)]
struct WorkerRecord {
    strikes: u32,
    /// Grant-cycle count until which the worker is refused, if
    /// quarantined.
    quarantined_until: Option<u64>,
}

/// Per-worker strike and quarantine bookkeeping. Grant cycles — the
/// table's clock — advance via [`HealthTable::note_grant`] every time
/// the service issues a lease grant.
#[derive(Debug, Default)]
pub struct HealthTable {
    opts: HealthOpts,
    records: BTreeMap<u64, WorkerRecord>,
    grant_cycles: u64,
    quarantines: u64,
}

/// The admission decision for a registering worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Seat the worker.
    Admit,
    /// Refuse: quarantined for this many more grant cycles.
    Quarantined {
        /// Grant cycles left on the cooldown.
        remaining: u64,
    },
    /// Refuse: over the worker cap; retry after this many grant
    /// cycles.
    Parked {
        /// The configured park retry-after.
        retry_after: u64,
    },
}

impl HealthTable {
    /// A fresh table under `opts`.
    #[must_use]
    pub fn new(opts: HealthOpts) -> HealthTable {
        HealthTable {
            opts,
            ..HealthTable::default()
        }
    }

    /// Admission decision for `worker_id` when `seated` workers
    /// currently hold connections. Quarantine outranks the cap.
    #[must_use]
    pub fn admit(&self, worker_id: u64, seated: usize) -> Admission {
        if let Some(remaining) = self.quarantine_remaining(worker_id) {
            return Admission::Quarantined { remaining };
        }
        if self.opts.worker_cap > 0 && seated >= self.opts.worker_cap {
            return Admission::Parked {
                retry_after: self.opts.park_grants,
            };
        }
        Admission::Admit
    }

    /// Grant cycles left on `worker_id`'s quarantine, if any. A
    /// cooldown that has lapsed reads as `None` (the expiry is
    /// implicit — no sweep needed).
    #[must_use]
    pub fn quarantine_remaining(&self, worker_id: u64) -> Option<u64> {
        let until = self.records.get(&worker_id)?.quarantined_until?;
        until.checked_sub(self.grant_cycles).filter(|r| *r > 0)
    }

    /// Record one issued grant — the table's clock tick.
    pub fn note_grant(&mut self) {
        self.grant_cycles += 1;
    }

    /// Record a strike against `worker_id`. Anonymous workers (id 0)
    /// are never tracked — they cannot be re-identified across
    /// reconnects, so quarantining them would only punish whichever
    /// honest worker connects next. Returns true when this strike
    /// tripped the limit and the worker is now quarantined.
    pub fn strike(&mut self, worker_id: u64, _kind: StrikeKind) -> bool {
        if worker_id == 0 {
            return false;
        }
        let grant_cycles = self.grant_cycles;
        let rec = self.records.entry(worker_id).or_default();
        if rec
            .quarantined_until
            .is_some_and(|until| until <= grant_cycles)
        {
            rec.quarantined_until = None;
        }
        rec.strikes += 1;
        if rec.strikes >= self.opts.strike_limit && rec.quarantined_until.is_none() {
            rec.quarantined_until = Some(self.grant_cycles + self.opts.quarantine_grants);
            rec.strikes = 0;
            self.quarantines += 1;
            return true;
        }
        false
    }

    /// Total quarantines imposed so far.
    #[must_use]
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Grant cycles issued so far.
    #[must_use]
    pub fn grant_cycles(&self) -> u64 {
        self.grant_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> HealthOpts {
        HealthOpts {
            strike_limit: 3,
            quarantine_grants: 4,
            worker_cap: 2,
            park_grants: 5,
        }
    }

    #[test]
    fn strikes_at_the_limit_quarantine_for_exactly_the_cooldown() {
        let mut t = HealthTable::new(opts());
        assert!(!t.strike(7, StrikeKind::RejectedFrame));
        assert!(!t.strike(7, StrikeKind::RevokedPatch));
        assert_eq!(t.admit(7, 0), Admission::Admit);
        assert!(t.strike(7, StrikeKind::LeaseExpiry));
        assert_eq!(t.quarantines(), 1);
        // Refused for exactly 4 grant cycles, counting down per grant.
        for remaining in (1..=4u64).rev() {
            assert_eq!(t.admit(7, 0), Admission::Quarantined { remaining });
            t.note_grant();
        }
        assert_eq!(t.admit(7, 0), Admission::Admit, "cooldown lapsed");
    }

    #[test]
    fn anonymous_workers_are_never_quarantined() {
        let mut t = HealthTable::new(opts());
        for _ in 0..10 {
            assert!(!t.strike(0, StrikeKind::RejectedFrame));
        }
        assert_eq!(t.admit(0, 0), Admission::Admit);
        assert_eq!(t.quarantines(), 0);
    }

    #[test]
    fn registrations_beyond_the_cap_are_parked_not_dropped() {
        let t = HealthTable::new(opts());
        assert_eq!(t.admit(1, 1), Admission::Admit);
        assert_eq!(t.admit(1, 2), Admission::Parked { retry_after: 5 });
        // Cap 0 = unlimited.
        let unlimited = HealthTable::new(HealthOpts {
            worker_cap: 0,
            ..opts()
        });
        assert_eq!(unlimited.admit(1, 10_000), Admission::Admit);
    }

    #[test]
    fn quarantine_outranks_the_worker_cap() {
        let mut t = HealthTable::new(opts());
        for _ in 0..3 {
            t.strike(9, StrikeKind::LeaseExpiry);
        }
        assert_eq!(t.admit(9, 2), Admission::Quarantined { remaining: 4 });
    }

    #[test]
    fn strikes_reaccumulate_after_a_lapsed_quarantine() {
        let mut t = HealthTable::new(opts());
        for _ in 0..3 {
            t.strike(5, StrikeKind::RejectedFrame);
        }
        for _ in 0..4 {
            t.note_grant();
        }
        assert_eq!(t.admit(5, 0), Admission::Admit);
        // The counter restarted: three fresh strikes re-quarantine.
        assert!(!t.strike(5, StrikeKind::RejectedFrame));
        assert!(!t.strike(5, StrikeKind::RejectedFrame));
        assert!(t.strike(5, StrikeKind::RejectedFrame));
        assert_eq!(t.quarantines(), 2);
    }
}
