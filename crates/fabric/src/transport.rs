//! Pluggable byte-frame transports.
//!
//! A [`Transport`] moves opaque frames (see [`crate::wire`]) between
//! one worker and the coordinator. Three implementations:
//!
//! * [`ChannelTransport`] — in-memory mpsc pair, for in-process tests
//!   and the bench harness;
//! * [`TcpTransport`] — localhost/LAN TCP with a `u32` LE length
//!   prefix per frame and incremental buffered reads, for real worker
//!   processes;
//! * [`FaultyTransport`] — wraps any transport and applies the fabric
//!   faults of a [`FaultPlan`] (drop / duplicate the n-th outbound
//!   frame), so the wire failure matrix is testable from a seed.
//!
//! Error contract shared by all three: `Ok(None)` from
//! [`Transport::recv_timeout`] means "nothing arrived in time" (the
//! peer may be slow or a frame may have been dropped — callers
//! resend); `Err(_)` means the connection is gone for good.

use kgpt_fuzzer::FaultPlan;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// A bidirectional frame pipe between one worker and the coordinator.
pub trait Transport: Send {
    /// Send one frame. An error means the peer is unreachable.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the connection is gone.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receive one frame, waiting at most `timeout`. `Ok(None)` on
    /// timeout; an error means the connection is gone.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the connection is gone.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>>;
}

impl Transport for Box<dyn Transport> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        (**self).send(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        (**self).recv_timeout(timeout)
    }
}

// ---- in-memory channel ---------------------------------------------------

/// In-memory transport endpoint: one half of an mpsc pair.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// A connected endpoint pair (coordinator half, worker half).
    #[must_use]
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "channel peer gone"))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "channel peer gone",
            )),
        }
    }
}

// ---- TCP -----------------------------------------------------------------

/// TCP transport: each frame is preceded by its `u32` LE length.
/// Reads are buffered and incremental, so a frame split across
/// segments (or several frames coalesced into one) is reassembled
/// correctly.
pub struct TcpTransport {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Frames larger than this are treated as stream corruption.
const MAX_FRAME: usize = 256 << 20;

impl TcpTransport {
    /// Wrap an accepted / connected stream.
    #[must_use]
    pub fn new(stream: TcpStream) -> TcpTransport {
        stream.set_nodelay(true).ok();
        TcpTransport {
            stream,
            buf: Vec::new(),
        }
    }

    /// Connect to a coordinator.
    ///
    /// # Errors
    ///
    /// Returns the connection error (e.g. refused while the
    /// coordinator is still starting — callers retry, or use
    /// [`TcpTransport::connect_with_backoff`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        Ok(TcpTransport::new(TcpStream::connect(addr)?))
    }

    /// Connect to a coordinator, retrying failed attempts with
    /// bounded deterministic backoff: `base` doubles per attempt up
    /// to `cap`, for at most `attempts` tries. No jitter — the
    /// schedule is a pure function of the arguments, so a machine-
    /// spanning launch script behaves the same on every run.
    ///
    /// # Errors
    ///
    /// Returns the *last* connection error once the attempt budget is
    /// exhausted.
    pub fn connect_with_backoff(
        addr: impl ToSocketAddrs,
        attempts: u32,
        base: Duration,
        cap: Duration,
    ) -> io::Result<TcpTransport> {
        let mut delay = base.min(cap);
        let mut last = io::Error::new(io::ErrorKind::InvalidInput, "zero connection attempts");
        for attempt in 0..attempts.max(1) {
            match TcpTransport::connect(&addr) {
                Ok(t) => return Ok(t),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts.max(1) {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2).min(cap);
            }
        }
        Err(last)
    }

    fn buffered_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds limit"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.stream.write_all(&len.to_le_bytes())?;
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(frame) = self.buffered_frame()? {
                return Ok(Some(frame));
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| *d > Duration::ZERO)
            else {
                return Ok(None);
            };
            self.stream.set_read_timeout(Some(remaining))?;
            let mut chunk = [0u8; 64 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ---- fault injection -----------------------------------------------------

/// Wraps a transport and applies a [`FaultPlan`]'s wire faults to the
/// **outbound** direction: the n-th outbound frame (0-based, counted
/// across the connection's lifetime) can be silently dropped
/// (`Fault::DropFrame`), sent twice (`Fault::DuplicateFrame`), or
/// sent with a flipped byte (`Fault::ByzantineFrames` — the receiver's
/// wire checksum must reject it and the sender's resend loop must
/// recover). Inbound frames pass through untouched — a peer's losses
/// are modeled by that peer's own plan.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    sent: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` under `plan`.
    #[must_use]
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan,
            sent: 0,
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let nth = self.sent;
        self.sent += 1;
        if self.plan.drop_frame(nth) {
            return Ok(());
        }
        if self.plan.byzantine_frame(nth) && !frame.is_empty() {
            // Flip one bit mid-frame: the checksum no longer matches,
            // so the receiver must reject the frame (and, in the
            // multi-tenant service, score a strike).
            let mut corrupt = frame.to_vec();
            let mid = corrupt.len() / 2;
            corrupt[mid] ^= 0x40;
            self.inner.send(&corrupt)?;
            if self.plan.duplicate_frame(nth) {
                self.inner.send(&corrupt)?;
            }
            return Ok(());
        }
        self.inner.send(frame)?;
        if self.plan.duplicate_frame(nth) {
            self.inner.send(frame)?;
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_fuzzer::Fault;
    use std::net::TcpListener;

    #[test]
    fn channel_pair_is_bidirectional_and_reports_disconnect() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"ping").unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(b"ping".to_vec())
        );
        b.send(b"pong").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(b"pong".to_vec())
        );
        assert_eq!(a.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        drop(b);
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn tcp_reassembles_split_and_coalesced_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(addr).unwrap();
            // Two frames in quick succession: likely coalesced into
            // one segment on loopback; must still come out as two.
            t.send(&[1u8; 70_000]).unwrap(); // > one read chunk: split
            t.send(b"tail").unwrap();
            let echoed = t.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
            assert_eq!(echoed, b"ok");
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        let big = t.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(big.len(), 70_000);
        assert!(big.iter().all(|&b| b == 1));
        let tail = t.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(tail, b"tail");
        t.send(b"ok").unwrap();
        client.join().unwrap();
    }

    #[test]
    fn tcp_recv_times_out_then_disconnects_on_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpTransport::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        assert_eq!(t.recv_timeout(Duration::from_millis(50)).unwrap(), None);
        drop(client);
        assert!(t.recv_timeout(Duration::from_millis(500)).is_err());
    }

    #[test]
    fn connect_with_backoff_rides_out_a_late_coordinator() {
        // Reserve a port, release it, and only rebind it after a
        // delay — the worker's early attempts get refused and the
        // backoff schedule must carry it to the late listener.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = TcpListener::bind(addr).unwrap();
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let frame = t.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
            assert_eq!(frame, b"late");
        });
        let mut t = TcpTransport::connect_with_backoff(
            addr,
            10,
            Duration::from_millis(20),
            Duration::from_millis(200),
        )
        .expect("backoff must outlast the coordinator's startup");
        t.send(b"late").unwrap();
        server.join().unwrap();
    }

    #[test]
    fn connect_with_backoff_reports_the_last_refusal() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let started = Instant::now();
        let err = TcpTransport::connect_with_backoff(
            addr,
            3,
            Duration::from_millis(5),
            Duration::from_millis(10),
        );
        assert!(err.is_err(), "no listener ever appears");
        // 3 attempts sleep 5ms + 10ms between them; well under a
        // second even on a loaded machine.
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn tcp_rejects_an_oversized_length_prefix_before_allocating() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Path 1: the poisoned prefix is the very first thing on the
        // stream.
        let client = std::thread::spawn(move || {
            let mut raw = TcpStream::connect(addr).unwrap();
            let huge = u32::try_from(MAX_FRAME + 1).unwrap();
            raw.write_all(&huge.to_le_bytes()).unwrap();
            raw.flush().unwrap();
            // Keep the stream open so the server error is the length
            // check, not a disconnect.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        let err = t
            .recv_timeout(Duration::from_secs(5))
            .expect_err("oversized prefix must be rejected, not allocated");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        client.join().unwrap();

        // Path 2: the poisoned prefix rides the buffer *behind* a
        // valid frame (coalesced into one segment), so it is seen by
        // the buffered continuation, not the initial read.
        let client = std::thread::spawn(move || {
            let mut raw = TcpStream::connect(addr).unwrap();
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&2u32.to_le_bytes());
            bytes.extend_from_slice(b"ok");
            bytes.extend_from_slice(&u32::MAX.to_le_bytes());
            raw.write_all(&bytes).unwrap();
            raw.flush().unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        let good = t.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(good, b"ok");
        let err = t
            .recv_timeout(Duration::from_secs(5))
            .expect_err("buffered oversized prefix must be rejected too");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        client.join().unwrap();
    }

    #[test]
    fn connect_with_backoff_follows_the_deterministic_schedule() {
        // A port with no listener refuses instantly, so the elapsed
        // time is dominated by the between-attempt sleeps: base
        // doubling under the cap gives 10 + 15 + 15 = 40ms for four
        // attempts (three sleeps).
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let started = Instant::now();
        let err = TcpTransport::connect_with_backoff(
            addr,
            4,
            Duration::from_millis(10),
            Duration::from_millis(15),
        );
        let elapsed = started.elapsed();
        assert!(err.is_err(), "no listener ever appears");
        assert!(
            elapsed >= Duration::from_millis(40),
            "schedule floor (3 sleeps summing 40ms) not honored: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "schedule must stay bounded: {elapsed:?}"
        );

        // A single attempt never sleeps: the refusal comes back well
        // under the base delay.
        let started = Instant::now();
        let err = TcpTransport::connect_with_backoff(
            addr,
            1,
            Duration::from_secs(10),
            Duration::from_secs(10),
        );
        assert!(err.is_err());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "one attempt must not enter the backoff sleep"
        );
    }

    #[test]
    fn faulty_transport_corrupts_the_planned_byzantine_frames() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::none().with(Fault::ByzantineFrames {
            from_nth: 1,
            count: 1,
        });
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(b"clean-0").unwrap();
        faulty.send(b"clean-1").unwrap(); // corrupted in flight
        faulty.send(b"clean-2").unwrap();
        let f0 = b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        let f1 = b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        let f2 = b.recv_timeout(Duration::from_millis(50)).unwrap().unwrap();
        assert_eq!(f0, b"clean-0");
        assert_ne!(f1, b"clean-1", "planned frame must arrive damaged");
        assert_eq!(
            f1.len(),
            b"clean-1".len(),
            "corruption flips, never truncates"
        );
        assert_eq!(f2, b"clean-2");
    }

    #[test]
    fn faulty_transport_drops_and_duplicates_the_planned_frames() {
        let (a, mut b) = ChannelTransport::pair();
        let plan = FaultPlan::none()
            .with(Fault::DropFrame { nth: 1 })
            .with(Fault::DuplicateFrame { nth: 2 });
        let mut faulty = FaultyTransport::new(a, plan);
        faulty.send(b"f0").unwrap(); // delivered
        faulty.send(b"f1").unwrap(); // dropped
        faulty.send(b"f2").unwrap(); // duplicated
        let mut got = Vec::new();
        while let Some(f) = b.recv_timeout(Duration::from_millis(50)).unwrap() {
            got.push(f);
        }
        assert_eq!(got, vec![b"f0".to_vec(), b"f2".to_vec(), b"f2".to_vec()]);
    }
}
