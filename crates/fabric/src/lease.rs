//! Lease bookkeeping: contiguous shard ranges, deadlines, expiry.
//!
//! The coordinator splits the campaign's shards into `workers`
//! contiguous ranges up front — range order *is* shard order, and
//! because grants go out in registration order, worker-id order is
//! shard-id order too, which is what makes the merge deterministic
//! regardless of which worker process ends up holding which range.
//!
//! A lease binds one range to one live connection until its deadline.
//! Deadlines advance on observed progress (a fresh delta, a boundary
//! reply); an expired or surrendered lease returns the range to the
//! pool, to be granted to the next registrant **with the last
//! committed boundary snapshots** — the epochs the previous holder
//! never committed are simply re-run, bit-identically.

use std::time::{Duration, Instant};

/// One active lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Unique (per coordinator) lease id, echoed in every delta.
    pub id: u64,
    /// When the lease lapses unless progress is observed first.
    pub deadline: Instant,
}

#[derive(Debug, Clone)]
struct RangeSlot {
    lo: u32,
    hi: u32,
    lease: Option<Lease>,
}

/// The coordinator's range/lease table.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    slots: Vec<RangeSlot>,
    next_id: u64,
    expired: u64,
}

impl LeaseTable {
    /// Split `shards` into `workers` contiguous ranges, as evenly as
    /// possible, all initially vacant. `workers` is clamped to
    /// `1..=shards` (a range must hold at least one shard).
    #[must_use]
    pub fn new(shards: u32, workers: u32) -> LeaseTable {
        let shards = shards.max(1);
        let workers = workers.clamp(1, shards);
        let slots = (0..workers)
            .map(|w| RangeSlot {
                lo: shards * w / workers,
                hi: shards * (w + 1) / workers,
                lease: None,
            })
            .collect();
        LeaseTable {
            slots,
            next_id: 0,
            expired: 0,
        }
    }

    /// Number of range slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false: the table holds at least one range.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shard range `[lo, hi)` of `slot`.
    #[must_use]
    pub fn range(&self, slot: usize) -> (u32, u32) {
        (self.slots[slot].lo, self.slots[slot].hi)
    }

    /// The first slot without an active lease, lowest first.
    #[must_use]
    pub fn vacant_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.lease.is_none())
    }

    /// Lease `slot` until `now + timeout`; returns the new lease id.
    /// The slot must be vacant.
    pub fn grant(&mut self, slot: usize, now: Instant, timeout: Duration) -> u64 {
        debug_assert!(
            self.slots[slot].lease.is_none(),
            "slot {slot} already leased"
        );
        self.next_id += 1;
        self.slots[slot].lease = Some(Lease {
            id: self.next_id,
            deadline: now + timeout,
        });
        self.next_id
    }

    /// The active lease on `slot`, if any.
    #[must_use]
    pub fn lease(&self, slot: usize) -> Option<Lease> {
        self.slots[slot].lease
    }

    /// Push `slot`'s deadline out to `now + timeout` (progress was
    /// observed). No-op on a vacant slot.
    pub fn renew(&mut self, slot: usize, now: Instant, timeout: Duration) {
        if let Some(lease) = &mut self.slots[slot].lease {
            lease.deadline = now + timeout;
        }
    }

    /// Drop `slot`'s lease (expiry, disconnect, or surrender) and
    /// count it; the range returns to the pool for the next
    /// registrant.
    pub fn revoke(&mut self, slot: usize) {
        if self.slots[slot].lease.take().is_some() {
            self.expired += 1;
        }
    }

    /// The first slot whose lease deadline has passed, if any.
    #[must_use]
    pub fn expired_slot(&self, now: Instant) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.lease.is_some_and(|l| l.deadline <= now))
    }

    /// Leases revoked over the table's lifetime.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_contiguous_even_and_cover_all_shards() {
        for (shards, workers) in [(8u32, 1u32), (8, 2), (8, 3), (8, 4), (8, 8), (3, 5), (1, 4)] {
            let table = LeaseTable::new(shards, workers);
            let mut next = 0u32;
            let mut sizes = Vec::new();
            for slot in 0..table.len() {
                let (lo, hi) = table.range(slot);
                assert_eq!(lo, next, "{shards}/{workers}: ranges must be contiguous");
                assert!(hi > lo, "{shards}/{workers}: empty range");
                sizes.push(hi - lo);
                next = hi;
            }
            assert_eq!(
                next, shards,
                "{shards}/{workers}: ranges must cover all shards"
            );
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "{shards}/{workers}: uneven split {sizes:?}");
        }
    }

    #[test]
    fn lease_lifecycle_grants_expires_and_reassigns() {
        let mut table = LeaseTable::new(4, 2);
        let now = Instant::now();
        let timeout = Duration::from_millis(100);

        assert_eq!(table.vacant_slot(), Some(0));
        let id0 = table.grant(0, now, timeout);
        assert_eq!(table.vacant_slot(), Some(1));
        let id1 = table.grant(1, now, timeout);
        assert_ne!(id0, id1, "lease ids are unique");
        assert_eq!(table.vacant_slot(), None);

        // Nothing expired yet; renewal pushes the deadline out.
        assert_eq!(table.expired_slot(now), None);
        table.renew(0, now + timeout, timeout);

        // Slot 1 lapses first (its deadline was never renewed).
        let later = now + timeout + Duration::from_millis(1);
        assert_eq!(table.expired_slot(later), Some(1));
        table.revoke(1);
        assert_eq!(table.expired(), 1);
        assert_eq!(table.vacant_slot(), Some(1));

        // The replacement gets a fresh id on the same range.
        let id2 = table.grant(1, later, timeout);
        assert!(id2 > id1);
        assert_eq!(table.range(1), (2, 4));
        // Revoking a vacant slot is a no-op, not a double count.
        table.revoke(0);
        table.revoke(0);
        assert_eq!(table.expired(), 2);
    }
}
