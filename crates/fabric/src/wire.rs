//! Message set and frame codec.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! version: u32 LE | checksum: u64 LE (FNV-1a of everything after) | tag: u8 | body
//! ```
//!
//! Bodies reuse the `CampaignSnapshot` dense little-endian codec via
//! the public [`kgpt_fuzzer::fabric`] encode/decode functions, so the
//! delta wire format *is* the checkpoint framing. Stream transports
//! add their own length prefix (see [`crate::transport`]); the frame
//! itself is self-validating — a flipped bit anywhere fails the
//! checksum and the frame is discarded, to be recovered by the
//! sender's resend loop.

use crate::FabricError;
use kgpt_fuzzer::checkpoint::fnv1a;
use kgpt_fuzzer::fabric::{
    decode_config, decode_deltas, decode_patches, decode_seeds, decode_snapshots, encode_config,
    encode_deltas, encode_patches, encode_seeds, encode_snapshots, EpochDelta, EpochPatch,
};
use kgpt_fuzzer::{CampaignConfig, HubSeed, ShardSnapshot};

/// Frame format version. Bump on any layout change.
/// v2: delta frames carry a [`DeltaKind`] tag (full vs incremental).
/// v3: multi-tenant service — `Register` carries a stable worker id,
/// grants/deltas/replies are tenant-tagged, and a new [`Message::Retry`]
/// refuses a registration (quarantine or overload shedding) with a
/// retry-after measured in grant cycles.
pub const FRAME_VERSION: u32 = 3;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, FabricError> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| FabricError::Protocol(format!("truncated u32 at {pos}")))?;
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, FabricError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| FabricError::Protocol(format!("truncated u64 at {pos}")))?;
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

/// A granted lease: everything a worker needs to run its shard range
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant {
    /// Tenant (campaign) this lease belongs to — admission order on
    /// the service; always 0 under the single-tenant coordinator.
    pub tenant: u32,
    /// Coordinator-assigned lease id; echoed back in every delta.
    pub lease_id: u64,
    /// Range slot index (== registration order == range order).
    pub slot: u32,
    /// First shard of the range (inclusive).
    pub shard_lo: u32,
    /// One past the last shard of the range.
    pub shard_hi: u32,
    /// Total shard count of the campaign.
    pub shards_total: u32,
    /// Boundaries already committed; the worker's first delta is for
    /// `boundary + 1`.
    pub boundary: u64,
    /// Lease deadline budget, for the worker's stall pacing.
    pub lease_timeout_ms: u64,
    /// Fingerprint of the spec suite the campaign runs against; the
    /// worker must resolve it to the same compiled suite.
    pub spec_fp: u64,
    /// The campaign config (the deterministic identity, with
    /// `shards_total`, of the whole run).
    pub config: CampaignConfig,
    /// Committed boundary state of the range; empty for a fresh
    /// campaign (the worker builds fresh shard states itself).
    pub snapshots: Vec<ShardSnapshot>,
}

/// How a [`Message::Delta`] frame encodes its boundary state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Complete per-shard boundary snapshots.
    Full,
    /// Increments against the last acked boundary's committed state.
    Incremental,
}

/// The payload of a [`Message::Delta`] frame.
///
/// A full payload is always valid and is **mandatory** on a worker's
/// first boundary after a grant — fresh campaign or lease
/// reassignment alike — because no baseline has been agreed yet. The
/// grant's `boundary`/`snapshots` fields tell the worker exactly
/// which committed state the coordinator holds; every boundary the
/// worker gets acked after that establishes a shared baseline (the
/// post-import snapshots both sides hold byte-identically), against
/// which the next boundary may ship as increments.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaPayload {
    /// One full [`EpochDelta`] per shard of the range, ascending id.
    Full(Vec<EpochDelta>),
    /// One [`EpochPatch`] per shard of the range, ascending id,
    /// diffed against the previous acked boundary.
    Incremental(Vec<EpochPatch>),
}

impl DeltaPayload {
    /// Which kind of payload this is.
    #[must_use]
    pub fn kind(&self) -> DeltaKind {
        match self {
            DeltaPayload::Full(_) => DeltaKind::Full,
            DeltaPayload::Incremental(_) => DeltaKind::Incremental,
        }
    }

    /// Number of per-shard records carried.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            DeltaPayload::Full(d) => d.len(),
            DeltaPayload::Incremental(p) => p.len(),
        }
    }

    /// Whether the payload carries no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard ids of the carried records, in payload order.
    #[must_use]
    pub fn shard_ids(&self) -> Vec<u32> {
        match self {
            DeltaPayload::Full(d) => d.iter().map(EpochDelta::shard_id).collect(),
            DeltaPayload::Incremental(p) => p.iter().map(EpochPatch::shard_id).collect(),
        }
    }
}

/// The fabric protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator: "I exist, lease me a range." Resent
    /// periodically until a [`Message::Grant`] arrives, so a dropped
    /// registration self-heals.
    Register {
        /// Stable worker identity across reconnects, chosen by the
        /// worker (0 = anonymous). The multi-tenant service keys its
        /// strike counters and quarantine on it; anonymous workers
        /// are never quarantined (they cannot be re-identified).
        worker_id: u64,
    },
    /// Coordinator → worker: a range lease.
    Grant(Grant),
    /// Coordinator → worker: registration refused for now — quarantine
    /// cooldown or overload shedding. The worker is *parked*, not
    /// dropped: it may re-register after `after_grants` further grant
    /// cycles have been issued by the service.
    Retry {
        /// Grant cycles to wait before re-registering.
        after_grants: u64,
        /// True when the refusal is a quarantine (strike limit
        /// reached); false when it is overload shedding (worker cap).
        quarantined: bool,
    },
    /// Worker → coordinator: one epoch's deltas for the whole range,
    /// at `boundary` (= grant boundary + epochs run since).
    Delta {
        /// Tenant the lease belongs to (echoed from the grant).
        tenant: u32,
        /// Lease the deltas belong to.
        lease_id: u64,
        /// The boundary these deltas complete.
        boundary: u64,
        /// The boundary state, full or incremental.
        deltas: DeltaPayload,
    },
    /// Coordinator → worker: boundary `boundary` merged; import
    /// `seeds` (the hub's newly retained seeds) and run the next
    /// epoch.
    Proceed {
        /// Tenant whose boundary merged.
        tenant: u32,
        /// The boundary just merged.
        boundary: u64,
        /// Hub seeds retained at this boundary, in publication order.
        seeds: Vec<HubSeed>,
    },
    /// Coordinator → worker: the final boundary merged — naturally or
    /// by graceful budget exhaustion; the campaign is complete for
    /// this tenant and the worker may exit.
    Finish {
        /// Tenant whose campaign completed.
        tenant: u32,
        /// The final boundary.
        boundary: u64,
    },
}

const TAG_REGISTER: u8 = 1;
const TAG_GRANT: u8 = 2;
const TAG_DELTA: u8 = 3;
const TAG_PROCEED: u8 = 4;
const TAG_FINISH: u8 = 5;
const TAG_RETRY: u8 = 6;

const KIND_FULL: u8 = 0;
const KIND_INCREMENTAL: u8 = 1;

impl Message {
    /// Encode to a self-validating frame.
    #[must_use]
    pub fn to_frame(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Message::Register { worker_id } => {
                body.push(TAG_REGISTER);
                put_u64(&mut body, *worker_id);
            }
            Message::Grant(g) => {
                body.push(TAG_GRANT);
                put_u32(&mut body, g.tenant);
                put_u64(&mut body, g.lease_id);
                put_u32(&mut body, g.slot);
                put_u32(&mut body, g.shard_lo);
                put_u32(&mut body, g.shard_hi);
                put_u32(&mut body, g.shards_total);
                put_u64(&mut body, g.boundary);
                put_u64(&mut body, g.lease_timeout_ms);
                put_u64(&mut body, g.spec_fp);
                encode_config(&g.config, &mut body);
                encode_snapshots(&g.snapshots, &mut body);
            }
            Message::Retry {
                after_grants,
                quarantined,
            } => {
                body.push(TAG_RETRY);
                put_u64(&mut body, *after_grants);
                body.push(u8::from(*quarantined));
            }
            Message::Delta {
                tenant,
                lease_id,
                boundary,
                deltas,
            } => {
                body.push(TAG_DELTA);
                put_u32(&mut body, *tenant);
                put_u64(&mut body, *lease_id);
                put_u64(&mut body, *boundary);
                match deltas {
                    DeltaPayload::Full(d) => {
                        body.push(KIND_FULL);
                        encode_deltas(d, &mut body);
                    }
                    DeltaPayload::Incremental(p) => {
                        body.push(KIND_INCREMENTAL);
                        encode_patches(p, &mut body);
                    }
                }
            }
            Message::Proceed {
                tenant,
                boundary,
                seeds,
            } => {
                body.push(TAG_PROCEED);
                put_u32(&mut body, *tenant);
                put_u64(&mut body, *boundary);
                encode_seeds(seeds, &mut body);
            }
            Message::Finish { tenant, boundary } => {
                body.push(TAG_FINISH);
                put_u32(&mut body, *tenant);
                put_u64(&mut body, *boundary);
            }
        }
        let mut frame = Vec::with_capacity(12 + body.len());
        put_u32(&mut frame, FRAME_VERSION);
        put_u64(&mut frame, fnv1a(&body));
        frame.extend_from_slice(&body);
        frame
    }

    /// Decode and validate a frame (inverse of [`Message::to_frame`]).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Protocol`] on a bad version, checksum,
    /// tag, or trailing bytes, and [`FabricError::Codec`] when a body
    /// fails the checkpoint codec. Receivers treat any error as a
    /// dropped frame: the sender's resend loop recovers it.
    pub fn from_frame(frame: &[u8]) -> Result<Message, FabricError> {
        let mut pos = 0usize;
        let version = take_u32(frame, &mut pos)?;
        if version != FRAME_VERSION {
            return Err(FabricError::Protocol(format!(
                "frame version {version}, expected {FRAME_VERSION}"
            )));
        }
        let checksum = take_u64(frame, &mut pos)?;
        let body = &frame[pos..];
        if fnv1a(body) != checksum {
            return Err(FabricError::Protocol("frame checksum mismatch".into()));
        }
        if body.is_empty() {
            return Err(FabricError::Protocol("empty frame body".into()));
        }
        let tag = body[0];
        let bytes = body;
        let mut pos = 1usize;
        let msg = match tag {
            TAG_REGISTER => {
                let worker_id = take_u64(bytes, &mut pos)?;
                Message::Register { worker_id }
            }
            TAG_GRANT => {
                let tenant = take_u32(bytes, &mut pos)?;
                let lease_id = take_u64(bytes, &mut pos)?;
                let slot = take_u32(bytes, &mut pos)?;
                let shard_lo = take_u32(bytes, &mut pos)?;
                let shard_hi = take_u32(bytes, &mut pos)?;
                let shards_total = take_u32(bytes, &mut pos)?;
                let boundary = take_u64(bytes, &mut pos)?;
                let lease_timeout_ms = take_u64(bytes, &mut pos)?;
                let spec_fp = take_u64(bytes, &mut pos)?;
                let config = decode_config(bytes, &mut pos)?;
                let snapshots = decode_snapshots(bytes, &mut pos)?;
                Message::Grant(Grant {
                    tenant,
                    lease_id,
                    slot,
                    shard_lo,
                    shard_hi,
                    shards_total,
                    boundary,
                    lease_timeout_ms,
                    spec_fp,
                    config,
                    snapshots,
                })
            }
            TAG_RETRY => {
                let after_grants = take_u64(bytes, &mut pos)?;
                let quarantined = *bytes
                    .get(pos)
                    .ok_or_else(|| FabricError::Protocol("truncated retry flag".into()))?;
                pos += 1;
                if quarantined > 1 {
                    return Err(FabricError::Protocol(format!(
                        "bad retry flag {quarantined}"
                    )));
                }
                Message::Retry {
                    after_grants,
                    quarantined: quarantined == 1,
                }
            }
            TAG_DELTA => {
                let tenant = take_u32(bytes, &mut pos)?;
                let lease_id = take_u64(bytes, &mut pos)?;
                let boundary = take_u64(bytes, &mut pos)?;
                let kind = *bytes
                    .get(pos)
                    .ok_or_else(|| FabricError::Protocol("truncated delta kind".into()))?;
                pos += 1;
                let deltas = match kind {
                    KIND_FULL => DeltaPayload::Full(decode_deltas(bytes, &mut pos)?),
                    KIND_INCREMENTAL => DeltaPayload::Incremental(decode_patches(bytes, &mut pos)?),
                    k => {
                        return Err(FabricError::Protocol(format!("unknown delta kind {k}")));
                    }
                };
                Message::Delta {
                    tenant,
                    lease_id,
                    boundary,
                    deltas,
                }
            }
            TAG_PROCEED => {
                let tenant = take_u32(bytes, &mut pos)?;
                let boundary = take_u64(bytes, &mut pos)?;
                let seeds = decode_seeds(bytes, &mut pos)?;
                Message::Proceed {
                    tenant,
                    boundary,
                    seeds,
                }
            }
            TAG_FINISH => {
                let tenant = take_u32(bytes, &mut pos)?;
                let boundary = take_u64(bytes, &mut pos)?;
                Message::Finish { tenant, boundary }
            }
            t => return Err(FabricError::Protocol(format!("unknown frame tag {t}"))),
        };
        if pos != bytes.len() {
            return Err(FabricError::Protocol(format!(
                "{} trailing bytes after frame body",
                bytes.len() - pos
            )));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpt_fuzzer::fabric::{diff_boundary, sample_boundary};

    /// Meaty full + incremental delta frames built from the fuzzer
    /// crate's boundary fixture.
    fn sample_delta_frames() -> [Message; 2] {
        let (base, deltas) = sample_boundary();
        let patches = diff_boundary(&base, deltas.clone()).expect("diffable fixture");
        [
            Message::Delta {
                tenant: 1,
                lease_id: 5,
                boundary: 2,
                deltas: DeltaPayload::Full(deltas),
            },
            Message::Delta {
                tenant: 1,
                lease_id: 5,
                boundary: 2,
                deltas: DeltaPayload::Incremental(patches),
            },
        ]
    }

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            Message::Register { worker_id: 0 },
            Message::Register {
                worker_id: 0xC0FFEE,
            },
            Message::Retry {
                after_grants: 12,
                quarantined: true,
            },
            Message::Retry {
                after_grants: 3,
                quarantined: false,
            },
            Message::Proceed {
                tenant: 2,
                boundary: 9,
                seeds: Vec::new(),
            },
            Message::Finish {
                tenant: 2,
                boundary: 17,
            },
            Message::Delta {
                tenant: 0,
                lease_id: 3,
                boundary: 4,
                deltas: DeltaPayload::Full(Vec::new()),
            },
            Message::Delta {
                tenant: 0,
                lease_id: 3,
                boundary: 4,
                deltas: DeltaPayload::Incremental(Vec::new()),
            },
            Message::Grant(Grant {
                tenant: 7,
                lease_id: 1,
                slot: 0,
                shard_lo: 0,
                shard_hi: 4,
                shards_total: 8,
                boundary: 0,
                lease_timeout_ms: 5000,
                spec_fp: 0xfeed,
                config: CampaignConfig::default(),
                snapshots: Vec::new(),
            }),
        ] {
            let frame = msg.to_frame();
            assert_eq!(Message::from_frame(&frame).expect("round trip"), msg);
        }
    }

    #[test]
    fn delta_payloads_round_trip_both_kinds() {
        for msg in sample_delta_frames() {
            let frame = msg.to_frame();
            let back = Message::from_frame(&frame).expect("round trip");
            assert_eq!(back, msg);
            if let Message::Delta { deltas, .. } = &back {
                assert_eq!(deltas.shard_ids(), vec![0, 1]);
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = Message::Finish {
            tenant: 1,
            boundary: 42,
        }
        .to_frame();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut damaged = frame.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    Message::from_frame(&damaged).is_err(),
                    "flip byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let frame = Message::Register { worker_id: 9 }.to_frame();
        for len in 0..frame.len() {
            assert!(Message::from_frame(&frame[..len]).is_err(), "len {len}");
        }
        let mut padded = frame;
        padded.push(0);
        assert!(Message::from_frame(&padded).is_err(), "trailing byte");
    }

    /// Fuzz-style robustness over both delta kinds: every truncation,
    /// every single bit flip, and seeded random garbage (corrupted
    /// suffixes, garbage prefixes, pure noise) must return `Err` —
    /// never panic, and never decode to a different message.
    #[test]
    fn mangled_delta_frames_never_panic_or_misdecode() {
        let mut rng = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            // xorshift64* — deterministic, no external RNG dep.
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for msg in sample_delta_frames() {
            let frame = msg.to_frame();
            for len in 0..frame.len() {
                assert!(Message::from_frame(&frame[..len]).is_err(), "len {len}");
            }
            for byte in 0..frame.len() {
                for bit in 0..8 {
                    let mut damaged = frame.clone();
                    damaged[byte] ^= 1 << bit;
                    assert!(
                        Message::from_frame(&damaged).is_err(),
                        "flip byte {byte} bit {bit} must be rejected"
                    );
                }
            }
            for _ in 0..500 {
                // Corrupt a random run of bytes somewhere in the frame.
                let mut damaged = frame.clone();
                let start = (next() as usize) % damaged.len();
                let run = 1 + (next() as usize) % 32;
                for b in damaged.iter_mut().skip(start).take(run) {
                    *b ^= (next() & 0xFF) as u8;
                }
                // A run of zero xor bytes leaves the frame intact, so
                // Ok is tolerated iff it decodes to the same message.
                match Message::from_frame(&damaged) {
                    Err(_) => {}
                    Ok(back) => assert_eq!(back, msg, "corruption must not mis-decode"),
                }
                // Garbage prefix ahead of a valid frame.
                let mut prefixed = vec![(next() & 0xFF) as u8; 1 + (next() as usize) % 16];
                prefixed.extend_from_slice(&frame);
                assert!(Message::from_frame(&prefixed).is_err(), "garbage prefix");
                // Pure noise of a plausible length.
                let noise: Vec<u8> = (0..13 + (next() as usize) % 64)
                    .map(|_| (next() & 0xFF) as u8)
                    .collect();
                assert!(Message::from_frame(&noise).is_err(), "pure noise");
            }
        }
    }
}
