//! The coordinator: registration, grants, barrier merge, replies.
//!
//! Single-threaded by design — every state transition it applies
//! (triage admission, hub publish/import, snapshot commit) is the
//! deterministic merge of [`CampaignMerge`], driven in shard-id order
//! at lockstep epoch boundaries. The coordinator never executes a
//! program: it needs no kernel and no lowered spec IR, only the
//! campaign config and the workers' deltas.
//!
//! Failure handling is part of the determinism contract:
//!
//! * **lease expiry / disconnect** — the range returns to the pool
//!   and the next registrant is granted it *with the last committed
//!   boundary snapshots*; the epochs the previous holder never
//!   committed are re-run bit-identically;
//! * **duplicate delta** — a boundary already merged is re-acked from
//!   the cached reply frame, never re-merged (idempotent delivery);
//! * **corrupt frame** — rejected by the wire checksum and counted;
//!   the sender's resend loop recovers it;
//! * **lost grant** — a worker that keeps sending `Register` on a
//!   granted connection gets the grant frame resent.

use crate::lease::LeaseTable;
use crate::transport::Transport;
use crate::wire::{DeltaPayload, Grant, Message};
use crate::FabricError;
use kgpt_fuzzer::fabric::{apply_patches, CampaignMerge, EpochDelta};
use kgpt_fuzzer::{CampaignConfig, CampaignResult};
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorOpts {
    /// Logical shard count of the campaign (the deterministic
    /// identity; must match the single-process run being mirrored).
    pub shards: u32,
    /// Number of worker range slots to split the shards into.
    pub workers: u32,
    /// Lease deadline budget: a lease showing no progress for this
    /// long is revoked and its range reassigned.
    pub lease_timeout: Duration,
    /// Fingerprint of the spec suite workers must resolve.
    pub spec_fp: u64,
}

impl Default for CoordinatorOpts {
    fn default() -> CoordinatorOpts {
        CoordinatorOpts {
            shards: 8,
            workers: 2,
            lease_timeout: Duration::from_secs(5),
            spec_fp: 0,
        }
    }
}

/// Wire/merge counters for the bench gate and the failure-matrix
/// tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Boundaries merged.
    pub boundaries: u64,
    /// Total bytes of accepted (first-delivery) delta frames.
    pub delta_bytes: u64,
    /// Total time inside [`CampaignMerge::apply_boundary`].
    pub merge_nanos: u64,
    /// Leases revoked (expiry, disconnect, or pre-grant death).
    pub expired_leases: u64,
    /// Frames re-acked from cache (duplicate or post-merge deltas,
    /// re-registrations on a granted connection).
    pub redelivered_frames: u64,
    /// Frames discarded by checksum/decode failure.
    pub rejected_frames: u64,
}

struct Conn {
    transport: Box<dyn Transport>,
    /// The last frame this connection must be able to receive again:
    /// its grant until the first boundary reply, then the latest
    /// `Proceed`/`Finish`. Re-sent verbatim on duplicate deliveries.
    last_reply: Vec<u8>,
}

/// The campaign coordinator. Create with [`Coordinator::new`], then
/// [`Coordinator::run`] to completion.
pub struct Coordinator {
    merge: CampaignMerge,
    table: LeaseTable,
    opts: CoordinatorOpts,
    stats: FabricStats,
}

/// Per-connection receive poll. Short: the run loop must keep
/// cycling between slots so one slow worker cannot starve another's
/// frames or a pending registration.
const POLL: Duration = Duration::from_millis(2);

impl Coordinator {
    /// A coordinator for `config` split across `opts.workers` ranges
    /// of `opts.shards` shards.
    #[must_use]
    pub fn new(config: CampaignConfig, opts: CoordinatorOpts) -> Coordinator {
        let merge = CampaignMerge::new(config, opts.shards);
        let table = LeaseTable::new(opts.shards, opts.workers);
        Coordinator {
            merge,
            table,
            opts,
            stats: FabricStats::default(),
        }
    }

    /// Drive the campaign to completion. `accept` is polled for a new
    /// worker connection only while a range lacks a lease (so a TCP
    /// listener's backlog is consumed exactly as fast as ranges free
    /// up, and a test harness can spawn workers on demand); it
    /// returns `None` when no connection is ready right now.
    ///
    /// Returns the merged result — bit-identical to the
    /// single-process [`kgpt_fuzzer::ShardedCampaign`] of the same
    /// config — and the wire/merge counters.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] only on an unrecoverable protocol
    /// violation; wire damage and worker loss are absorbed by the
    /// lease machinery.
    pub fn run(
        mut self,
        accept: &mut dyn FnMut() -> Option<Box<dyn Transport>>,
    ) -> Result<(CampaignResult, FabricStats), FabricError> {
        let slots = self.table.len();
        let mut conns: Vec<Option<Conn>> = (0..slots).map(|_| None).collect();
        let mut stash: Vec<Option<Vec<EpochDelta>>> = (0..slots).map(|_| None).collect();
        let mut arrivals: Vec<Box<dyn Transport>> = Vec::new();
        loop {
            let now = Instant::now();
            while let Some(slot) = self.table.expired_slot(now) {
                self.table.revoke(slot);
                conns[slot] = None;
            }
            self.seat_registrants(&mut conns, &mut arrivals, accept);
            self.poll_deltas(&mut conns, &mut stash);
            if stash.iter().all(Option::is_some) {
                let deltas: Vec<EpochDelta> = stash
                    .iter_mut()
                    .flat_map(|s| s.take().expect("stash checked full"))
                    .collect();
                let merged_at = Instant::now();
                let outcome = self.merge.apply_boundary(deltas)?;
                self.stats.merge_nanos = self.stats.merge_nanos.saturating_add(
                    u64::try_from(merged_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
                self.stats.boundaries += 1;
                let boundary = self.merge.epochs_done();
                let reply = if outcome.finished {
                    Message::Finish {
                        tenant: 0,
                        boundary,
                    }
                } else {
                    Message::Proceed {
                        tenant: 0,
                        boundary,
                        seeds: outcome.seeds,
                    }
                };
                let frame = reply.to_frame();
                for (slot, entry) in conns.iter_mut().enumerate().take(slots) {
                    let Some(conn) = entry else { continue };
                    if conn.transport.send(&frame).is_err() {
                        self.table.revoke(slot);
                        *entry = None;
                        continue;
                    }
                    conn.last_reply.clone_from(&frame);
                    self.table
                        .renew(slot, Instant::now(), self.opts.lease_timeout);
                }
                if outcome.finished {
                    self.stats.expired_leases = self.table.expired();
                    let result = self.merge.finish()?;
                    return Ok((result, self.stats));
                }
            }
        }
    }

    /// Fill vacant range slots: drain `Register`s from queued
    /// arrivals, pulling new connections from `accept` only while a
    /// slot still wants one.
    fn seat_registrants(
        &mut self,
        conns: &mut [Option<Conn>],
        arrivals: &mut Vec<Box<dyn Transport>>,
        accept: &mut dyn FnMut() -> Option<Box<dyn Transport>>,
    ) {
        while let Some(slot) = self.table.vacant_slot() {
            let mut seated = false;
            let mut i = 0;
            while i < arrivals.len() {
                match arrivals[i].recv_timeout(POLL) {
                    Ok(Some(frame)) => match Message::from_frame(&frame) {
                        Ok(Message::Register { .. }) => {
                            let transport = arrivals.remove(i);
                            self.grant(slot, transport, conns);
                            seated = true;
                            break;
                        }
                        Ok(_) => i += 1,
                        Err(_) => {
                            self.stats.rejected_frames += 1;
                            i += 1;
                        }
                    },
                    Ok(None) => i += 1,
                    Err(_) => {
                        arrivals.remove(i);
                    }
                }
            }
            if seated {
                continue;
            }
            // Pull a new connection only when none is pending: an
            // arrival that has not registered yet is given time to
            // (its Register may still be in flight) rather than
            // racing a second accept against it.
            if !arrivals.is_empty() {
                break;
            }
            match accept() {
                Some(transport) => arrivals.push(transport),
                None => break,
            }
        }
    }

    /// Grant `slot` to `transport`: lease it, send the grant frame
    /// (carrying the committed boundary snapshots of the range), and
    /// install the connection.
    fn grant(
        &mut self,
        slot: usize,
        mut transport: Box<dyn Transport>,
        conns: &mut [Option<Conn>],
    ) {
        let (lo, hi) = self.table.range(slot);
        let now = Instant::now();
        let lease_id = self.table.grant(slot, now, self.opts.lease_timeout);
        let frame = Message::Grant(Grant {
            tenant: 0,
            lease_id,
            slot: u32::try_from(slot).expect("slot fits u32"),
            shard_lo: lo,
            shard_hi: hi,
            shards_total: self.merge.shards_total(),
            boundary: self.merge.epochs_done(),
            lease_timeout_ms: u64::try_from(self.opts.lease_timeout.as_millis())
                .unwrap_or(u64::MAX),
            spec_fp: self.opts.spec_fp,
            config: self.merge.config().clone(),
            snapshots: self.merge.snapshots(lo, hi),
        })
        .to_frame();
        if transport.send(&frame).is_ok() {
            conns[slot] = Some(Conn {
                transport,
                last_reply: frame,
            });
        } else {
            // Dead before the grant ever left: back to the pool.
            self.table.revoke(slot);
        }
    }

    /// Poll every leased connection for one frame and route it.
    fn poll_deltas(&mut self, conns: &mut [Option<Conn>], stash: &mut [Option<Vec<EpochDelta>>]) {
        let target = self.merge.epochs_done() + 1;
        for slot in 0..conns.len() {
            let Some(conn) = &mut conns[slot] else {
                continue;
            };
            let frame = match conn.transport.recv_timeout(POLL) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(_) => {
                    // Worker gone: the range goes back to the pool;
                    // any delta it already delivered for the pending
                    // boundary stays stashed (it is deterministic
                    // data — the replacement would reproduce it).
                    self.table.revoke(slot);
                    conns[slot] = None;
                    continue;
                }
            };
            match Message::from_frame(&frame) {
                Ok(Message::Delta {
                    tenant: _,
                    lease_id,
                    boundary,
                    deltas,
                }) => {
                    if self.table.lease(slot).map(|l| l.id) != Some(lease_id) {
                        continue; // stale lease echo
                    }
                    if boundary < target {
                        // Already merged: idempotent re-ack, no
                        // re-merge.
                        self.stats.redelivered_frames += 1;
                        let reply = conn.last_reply.clone();
                        if conn.transport.send(&reply).is_err() {
                            self.table.revoke(slot);
                            conns[slot] = None;
                            continue;
                        }
                        self.table
                            .renew(slot, Instant::now(), self.opts.lease_timeout);
                    } else if boundary == target {
                        let (lo, hi) = self.table.range(slot);
                        let covers_range = deltas.len() == (hi - lo) as usize
                            && deltas
                                .shard_ids()
                                .into_iter()
                                .zip(lo..hi)
                                .all(|(d, id)| d == id);
                        if !covers_range {
                            // A delta set for the wrong range is a
                            // protocol violation by this worker:
                            // drop the lease, keep the campaign.
                            self.table.revoke(slot);
                            conns[slot] = None;
                            continue;
                        }
                        if stash[slot].is_none() {
                            // Resolve the payload to full deltas *at
                            // stash time*: an increment is only valid
                            // against the committed state of the
                            // previous boundary (`target - 1`), which
                            // is exactly what `merge.snapshots` holds
                            // right now. The lease-id check above
                            // already guarantees the sender was acked
                            // at that boundary — a reassigned lease
                            // has a new id and must open with a full
                            // frame.
                            let resolved = match deltas {
                                DeltaPayload::Full(d) => d,
                                DeltaPayload::Incremental(patches) => {
                                    let base = self.merge.snapshots(lo, hi);
                                    match apply_patches(&base, patches) {
                                        Ok(d) => d,
                                        Err(_) => {
                                            // An increment with no (or
                                            // the wrong) baseline is a
                                            // protocol violation: drop
                                            // the lease, keep the
                                            // campaign.
                                            self.table.revoke(slot);
                                            conns[slot] = None;
                                            continue;
                                        }
                                    }
                                }
                            };
                            self.stats.delta_bytes += frame.len() as u64;
                            stash[slot] = Some(resolved);
                        } else {
                            self.stats.redelivered_frames += 1;
                        }
                        self.table
                            .renew(slot, Instant::now(), self.opts.lease_timeout);
                    }
                    // boundary > target cannot happen (the worker
                    // cannot outrun its own unacked boundary); ignore.
                }
                Ok(Message::Register { .. }) => {
                    // The grant (or a reply) never arrived: resend
                    // the cached frame.
                    self.stats.redelivered_frames += 1;
                    let reply = conn.last_reply.clone();
                    if conn.transport.send(&reply).is_err() {
                        self.table.revoke(slot);
                        conns[slot] = None;
                        continue;
                    }
                    self.table
                        .renew(slot, Instant::now(), self.opts.lease_timeout);
                }
                Ok(_) => {} // coordinator-bound messages only
                Err(_) => self.stats.rejected_frames += 1,
            }
        }
    }
}
