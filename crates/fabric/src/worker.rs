//! The worker: claim a lease, run epochs, ship deltas, obey replies.
//!
//! A worker is a thin loop around [`LeaseRunner`] — the exact shard
//! stepper the single-process campaign drives — plus resend-based
//! delivery: `Register` is resent until a grant arrives, and a delta
//! is resent until its boundary is acknowledged, so dropped or
//! corrupted frames in either direction self-heal (the coordinator
//! re-acks duplicates from cache; it never re-merges).
//!
//! Death is modeled, not special-cased: a transport disconnect at any
//! point is a *surrender* — the worker returns normally with
//! `completed = false` and the coordinator's lease machinery re-runs
//! its uncommitted epochs elsewhere. The injected faults of a
//! [`FaultPlan`] (see [`kgpt_fuzzer::faults`]) reproduce the whole
//! matrix deterministically: frame drop/duplication via
//! [`FaultyTransport`], mid-lease death via `Fault::WorkerKill`
//! (return without shipping the boundary's delta), and
//! `Fault::StallLease` (sleep past twice the lease deadline before
//! shipping).

use crate::transport::{FaultyTransport, Transport};
use crate::wire::{DeltaPayload, Grant, Message};
use crate::FabricError;
use kgpt_fuzzer::fabric::{diff_boundary, LeaseRunner};
use kgpt_fuzzer::{FaultPlan, ShardSnapshot};
use kgpt_syzlang::lowered::LoweredDb;
use kgpt_vkernel::VKernel;
use std::sync::Arc;
use std::time::Duration;

/// Observer invoked once with `(slot, shard_lo, shard_hi, boundary)`
/// when the grant arrives.
pub type GrantHook = Box<dyn FnMut(u32, u32, u32, u64)>;

/// Worker tuning and fault injection.
pub struct WorkerOpts {
    /// Stable worker identity echoed in `Register`, keyed by the
    /// multi-tenant service's health table (strikes, quarantine).
    /// 0 = anonymous: never tracked, never quarantined.
    pub worker_id: u64,
    /// Faults to inject (wire faults wrap the transport; kill/stall
    /// faults hook the epoch loop).
    pub faults: FaultPlan,
    /// How long to wait for a boundary ack before resending the
    /// delta. Must tolerate the slowest co-worker's epoch: the
    /// coordinator only replies once *every* range delivered.
    pub reply_timeout: Duration,
    /// Resend budget per boundary before giving up on the
    /// coordinator.
    pub max_resends: u32,
    /// How often to resend `Register` while waiting for a grant.
    pub register_interval: Duration,
    /// Observer called once with `(slot, shard_lo, shard_hi,
    /// boundary)` when the grant arrives.
    pub on_grant: Option<GrantHook>,
    /// Observer called after every acknowledged boundary.
    pub on_boundary: Option<Box<dyn FnMut(u64)>>,
    /// Ship every boundary as a full snapshot frame instead of
    /// diffing against the last acked baseline. The results are
    /// identical — this exists to measure the bandwidth win and as an
    /// escape hatch.
    pub force_full_deltas: bool,
}

impl Default for WorkerOpts {
    fn default() -> WorkerOpts {
        WorkerOpts {
            worker_id: 0,
            faults: FaultPlan::none(),
            reply_timeout: Duration::from_secs(1),
            max_resends: 240,
            register_interval: Duration::from_millis(100),
            on_grant: None,
            on_boundary: None,
            force_full_deltas: false,
        }
    }
}

/// The service's refusal advice, lifted from a `Retry` frame: when to
/// come back (in grant cycles) and whether the refusal was a
/// quarantine (strikes) rather than overload shedding (worker cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAdvice {
    /// Re-register after this many further grant cycles.
    pub after_grants: u64,
    /// True when refused by quarantine; false when parked over the
    /// worker cap.
    pub quarantined: bool,
}

/// How a worker's session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// True when the coordinator declared the campaign finished;
    /// false on surrender (disconnect or injected death) — the
    /// lease machinery takes over.
    pub completed: bool,
    /// The granted range slot, if a grant was ever received.
    pub slot: Option<u32>,
    /// Boundaries this worker ran epochs for (acknowledged or not).
    pub boundaries: u64,
    /// Set when registration was refused with a `Retry` frame
    /// (quarantine or overload shedding) instead of a grant.
    pub retry: Option<RetryAdvice>,
}

fn surrender(slot: Option<u32>, boundaries: u64) -> WorkerSummary {
    WorkerSummary {
        completed: false,
        slot,
        boundaries,
        retry: None,
    }
}

/// Run one worker session over `transport`: register, accept one
/// lease, and step it until the coordinator's `Finish` (or until
/// surrender). `resolve` maps the grant's spec fingerprint to the
/// compiled suite — returning `None` aborts with a protocol error,
/// because running a *different* suite would silently break the
/// bit-identity contract.
///
/// # Errors
///
/// Returns a [`FabricError`] on a protocol violation (unknown spec
/// fingerprint, resend budget exhausted). Disconnects are not errors:
/// they surrender the lease (`completed = false`).
pub fn run_worker<'k, F>(
    transport: Box<dyn Transport>,
    mut opts: WorkerOpts,
    resolve: F,
) -> Result<WorkerSummary, FabricError>
where
    F: FnOnce(u64) -> Option<(&'k VKernel, Arc<LoweredDb>)>,
{
    let faults = opts.faults.clone();
    let mut t = FaultyTransport::new(transport, opts.faults);

    // Register until granted: a dropped Register or a dropped Grant
    // both resolve through the resend (the coordinator re-sends the
    // cached grant to a re-registering connection).
    let register = Message::Register {
        worker_id: opts.worker_id,
    }
    .to_frame();
    let grant: Grant = loop {
        if t.send(&register).is_err() {
            return Ok(surrender(None, 0));
        }
        match t.recv_timeout(opts.register_interval) {
            Ok(Some(frame)) => match Message::from_frame(&frame) {
                Ok(Message::Grant(g)) => break g,
                Ok(Message::Finish { .. }) => return Ok(surrender(None, 0)),
                Ok(Message::Retry {
                    after_grants,
                    quarantined,
                }) => {
                    // Refused (quarantine or overload shedding): not
                    // an error and not a surrender — report the advice
                    // so the caller can back off and re-register.
                    return Ok(WorkerSummary {
                        completed: false,
                        slot: None,
                        boundaries: 0,
                        retry: Some(RetryAdvice {
                            after_grants,
                            quarantined,
                        }),
                    });
                }
                Ok(_) | Err(_) => {} // corrupt or stray: resend recovers
            },
            Ok(None) => {}
            Err(_) => return Ok(surrender(None, 0)),
        }
    };

    let Some((kernel, lowered)) = resolve(grant.spec_fp) else {
        return Err(FabricError::Protocol(format!(
            "unknown spec fingerprint {:#018x} in grant",
            grant.spec_fp
        )));
    };
    let mut runner = if grant.snapshots.is_empty() {
        LeaseRunner::fresh(
            &lowered,
            &grant.config,
            grant.shards_total,
            grant.shard_lo,
            grant.shard_hi,
        )
    } else {
        LeaseRunner::restore(&lowered, &grant.config, &grant.snapshots)
    };
    if let Some(cb) = opts.on_grant.as_mut() {
        cb(grant.slot, grant.shard_lo, grant.shard_hi, grant.boundary);
    }

    let slot = Some(grant.slot);
    let mut boundary = grant.boundary;
    let mut boundaries_run = 0u64;
    // The committed boundary state both sides hold, from which the
    // next boundary may ship as increments. A fresh grant (first
    // boundary of a campaign *or* a reassignment after expiry) has no
    // acked baseline yet, so the first frame is always full — the
    // mandatory fallback that makes re-basing safe: an increment is
    // only ever diffed against state the coordinator confirmed.
    let mut baseline: Option<Vec<ShardSnapshot>> = None;
    loop {
        let deltas = runner.run_epoch(kernel);
        boundary += 1;
        boundaries_run += 1;

        if faults.worker_kill(grant.slot, boundary) {
            // Die *before* shipping: the boundary's work is lost and
            // must be re-run by the replacement — the hardest cell of
            // the failure matrix.
            return Ok(surrender(slot, boundaries_run));
        }
        if faults.stall_lease(grant.slot, boundary) {
            // Outlive the lease deadline with the delta still unsent:
            // the coordinator must expire and reassign the range.
            std::thread::sleep(
                Duration::from_millis(grant.lease_timeout_ms)
                    .saturating_mul(2)
                    .saturating_add(Duration::from_millis(200)),
            );
        }

        // Incremental when a baseline is agreed; full otherwise (and
        // full again if the diff is ever unexpressible — it never is
        // for real shard evolution, but the fallback is mandatory,
        // not best-effort). Resends reuse the same frame, so a
        // dropped incremental is re-sent against the same baseline.
        let payload = match baseline.take() {
            Some(base) if !opts.force_full_deltas => match diff_boundary(&base, deltas) {
                Ok(patches) => DeltaPayload::Incremental(patches),
                Err(deltas) => DeltaPayload::Full(deltas),
            },
            _ => DeltaPayload::Full(deltas),
        };
        let delta_frame = Message::Delta {
            tenant: grant.tenant,
            lease_id: grant.lease_id,
            boundary,
            deltas: payload,
        }
        .to_frame();
        if t.send(&delta_frame).is_err() {
            return Ok(surrender(slot, boundaries_run));
        }
        let mut resends = 0u32;
        let seeds = loop {
            match t.recv_timeout(opts.reply_timeout) {
                Ok(Some(frame)) => match Message::from_frame(&frame) {
                    Ok(Message::Proceed {
                        tenant,
                        boundary: acked,
                        seeds,
                    }) if tenant == grant.tenant && acked == boundary => break seeds,
                    Ok(Message::Finish {
                        tenant,
                        boundary: acked,
                    }) if tenant == grant.tenant && acked >= boundary => {
                        return Ok(WorkerSummary {
                            completed: true,
                            slot,
                            boundaries: boundaries_run,
                            retry: None,
                        })
                    }
                    // Stale duplicates (an earlier boundary's re-ack),
                    // redelivered grants, or corrupt frames: ignore
                    // and keep waiting.
                    Ok(_) | Err(_) => {}
                },
                Ok(None) => {
                    resends += 1;
                    if resends > opts.max_resends {
                        return Err(FabricError::Protocol(format!(
                            "boundary {boundary} unacknowledged after {} resends",
                            opts.max_resends
                        )));
                    }
                    if t.send(&delta_frame).is_err() {
                        return Ok(surrender(slot, boundaries_run));
                    }
                }
                Err(_) => return Ok(surrender(slot, boundaries_run)),
            }
        };
        runner.import(&seeds);
        // The ack means the coordinator committed this boundary; its
        // committed snapshots are the post-import state, which the
        // runner now holds byte-identically — the agreed baseline for
        // the next boundary's increments.
        baseline = Some(runner.snapshots());
        if let Some(cb) = opts.on_boundary.as_mut() {
            cb(boundary);
        }
    }
}

/// Outcome of one deliberate flap cycle (see [`flap_worker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapOutcome {
    /// A lease was granted on `slot` for `tenant` — and is about to
    /// be abandoned without a single delta.
    Granted {
        /// The tenant the grant belonged to.
        tenant: u32,
        /// The granted range slot.
        slot: u32,
    },
    /// Registration was refused with retry advice.
    Refused(RetryAdvice),
    /// The transport died (or timed out) before any reply.
    Disconnected,
}

/// One **flap** cycle: register on `transport` under `worker_id`,
/// wait up to `reply_timeout` for the service's reply, then drop the
/// connection. A granted lease is abandoned without a single delta —
/// which the service must score as a lease expiry (a strike), and
/// enough of which must quarantine the worker id. Used by the chaos
/// soak and the quarantine tests to drive the flapping-worker failure
/// mode deterministically.
pub fn flap_worker(
    mut transport: Box<dyn Transport>,
    worker_id: u64,
    reply_timeout: Duration,
) -> FlapOutcome {
    let register = Message::Register { worker_id }.to_frame();
    if transport.send(&register).is_err() {
        return FlapOutcome::Disconnected;
    }
    loop {
        match transport.recv_timeout(reply_timeout) {
            Ok(Some(frame)) => match Message::from_frame(&frame) {
                Ok(Message::Grant(g)) => {
                    return FlapOutcome::Granted {
                        tenant: g.tenant,
                        slot: g.slot,
                    }
                }
                Ok(Message::Retry {
                    after_grants,
                    quarantined,
                }) => {
                    return FlapOutcome::Refused(RetryAdvice {
                        after_grants,
                        quarantined,
                    })
                }
                Ok(_) | Err(_) => {} // stray or corrupt: keep waiting
            },
            Ok(None) | Err(_) => return FlapOutcome::Disconnected,
        }
    }
}
