//! The multi-tenant campaign service: several named campaigns share
//! one coordinator process and one worker pool.
//!
//! [`TenantService`] runs N admitted [`TenantSpec`]s concurrently.
//! Each tenant is a full, independent campaign — its own
//! [`CampaignConfig`], spec fingerprint, [`LeaseTable`], barrier
//! stash, and [`CampaignMerge`] — multiplexed over tenant-tagged v3
//! wire frames, so each tenant's merged result stays **bit-identical**
//! to its own single-process reference run no matter how workers come
//! and go or how the pool is shared.
//!
//! Three service-level policies sit on top of the per-tenant protocol:
//!
//! * **budgets** ([`BudgetTracker`]) — exec / wall-time / delta-byte
//!   quotas are charged at every boundary commit and checked *only*
//!   there: an exhausted tenant finishes the boundary it is on, folds
//!   the committed state ([`CampaignMerge::finish_early`]), sends its
//!   workers `Finish`, and releases its leases — graceful
//!   termination, never a mid-epoch abort, and the truncated result
//!   is bit-identical to an unlimited run halted at the same
//!   boundary;
//! * **fair-share scheduling** — vacant range slots are offered to
//!   registrants by deterministic round-robin over tenants in
//!   tenant-id order, so one greedy tenant cannot starve another of
//!   workers;
//! * **worker supervision** ([`HealthTable`]) — rejected frames,
//!   revoked patches, and lease expiries (including disconnecting
//!   mid-lease, the flapping pattern) earn strikes against the stable
//!   `worker_id`; at the strike limit the worker is quarantined and
//!   refused re-registration (`Retry { quarantined: true }`) for a
//!   cooldown measured in grant cycles; registrations beyond the
//!   worker cap are parked (`Retry { quarantined: false }`), not
//!   dropped.

use crate::budget::{BudgetTracker, BudgetUsage, TenantQuota};
use crate::coordinator::FabricStats;
use crate::health::{Admission, HealthOpts, HealthTable, StrikeKind};
use crate::lease::LeaseTable;
use crate::transport::Transport;
use crate::wire::{DeltaPayload, Grant, Message};
use crate::FabricError;
use kgpt_fuzzer::fabric::{apply_patches, CampaignMerge, EpochDelta};
use kgpt_fuzzer::{CampaignConfig, CampaignResult};
use std::time::{Duration, Instant};

/// One tenant's admission request: a named campaign with its own
/// config, shard split, spec fingerprint, and declared quota.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable campaign name (reporting only — the wire
    /// carries the numeric tenant id).
    pub name: String,
    /// The campaign config (the deterministic identity).
    pub config: CampaignConfig,
    /// Logical shard count; must match the single-process reference.
    pub shards: u32,
    /// Worker range slots to split the shards into.
    pub workers: u32,
    /// Spec fingerprint workers must resolve for this tenant.
    pub spec_fp: u64,
    /// Declared resource quota; default is unlimited.
    pub quota: TenantQuota,
}

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOpts {
    /// Lease deadline budget, shared by every tenant's table.
    pub lease_timeout: Duration,
    /// Worker supervision thresholds.
    pub health: HealthOpts,
}

impl Default for ServiceOpts {
    fn default() -> ServiceOpts {
        ServiceOpts {
            lease_timeout: Duration::from_secs(5),
            health: HealthOpts::default(),
        }
    }
}

/// One tenant's final accounting.
#[derive(Debug, Clone)]
pub struct TenantResult {
    /// The tenant id (admission order).
    pub tenant: u32,
    /// The campaign name from the spec.
    pub name: String,
    /// The merged campaign result — bit-identical to the tenant's
    /// single-process reference halted at the same boundary.
    pub result: CampaignResult,
    /// True when the campaign was terminated by budget overflow
    /// rather than running its config to completion.
    pub budget_exhausted: bool,
    /// Boundaries committed for this tenant.
    pub boundaries: u64,
    /// Final budget usage vs declared quota.
    pub usage: BudgetUsage,
    /// The tenant's wire/merge counters.
    pub stats: FabricStats,
}

/// Service-wide scheduling and supervision counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Lease grants issued across all tenants.
    pub grants: u64,
    /// Grants per tenant, indexed by tenant id — the fairness
    /// evidence (round-robin keeps these within each tenant's demand
    /// of one another).
    pub grants_per_tenant: Vec<u64>,
    /// Registrations parked over the worker cap (`Retry` sent).
    pub parked: u64,
    /// Registrations refused because the worker was quarantined.
    pub quarantine_refusals: u64,
    /// Quarantines imposed by the health table.
    pub quarantines: u64,
}

struct Conn {
    transport: Box<dyn Transport>,
    /// The last frame this connection must be able to receive again
    /// (grant, then latest `Proceed`/`Finish`); re-sent verbatim on
    /// duplicate deliveries.
    last_reply: Vec<u8>,
    /// The stable worker id from `Register` (0 = anonymous).
    worker_id: u64,
}

struct Arrival {
    transport: Box<dyn Transport>,
    /// Grant-cycle count until which this parked arrival is not
    /// re-considered (avoids re-refusing it every poll).
    parked_until: Option<u64>,
}

struct Tenant {
    name: String,
    spec_fp: u64,
    budget: BudgetTracker,
    /// `Some` while the campaign runs; taken at fold time.
    merge: Option<CampaignMerge>,
    table: LeaseTable,
    conns: Vec<Option<Conn>>,
    stash: Vec<Option<Vec<EpochDelta>>>,
    stats: FabricStats,
    started: Instant,
    done: Option<TenantResult>,
}

/// Per-connection receive poll (kept short so one slow worker cannot
/// starve another tenant's frames).
const POLL: Duration = Duration::from_millis(2);

impl Tenant {
    fn new(spec: TenantSpec) -> Tenant {
        let merge = CampaignMerge::new(spec.config, spec.shards);
        let table = LeaseTable::new(spec.shards, spec.workers);
        let slots = table.len();
        Tenant {
            name: spec.name,
            spec_fp: spec.spec_fp,
            budget: BudgetTracker::new(spec.quota),
            merge: Some(merge),
            table,
            conns: (0..slots).map(|_| None).collect(),
            stash: (0..slots).map(|_| None).collect(),
            stats: FabricStats::default(),
            started: Instant::now(),
            done: None,
        }
    }

    fn active(&self) -> bool {
        self.done.is_none()
    }

    fn seated(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Revoke lapsed leases; a disconnect-with-lease and a silent
    /// stall both land here, and both are strikes.
    fn expire_leases(&mut self, now: Instant, health: &mut HealthTable) {
        while let Some(slot) = self.table.expired_slot(now) {
            self.table.revoke(slot);
            if let Some(conn) = self.conns[slot].take() {
                health.strike(conn.worker_id, StrikeKind::LeaseExpiry);
            }
        }
    }

    /// Poll every leased connection for one frame and route it —
    /// the tenant-scoped version of the coordinator's delta loop,
    /// with strikes on every protocol violation.
    fn poll_deltas(&mut self, tenant: u32, lease_timeout: Duration, health: &mut HealthTable) {
        let Some(target) = self.merge.as_ref().map(|m| m.epochs_done() + 1) else {
            return;
        };
        for slot in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[slot] else {
                continue;
            };
            let worker_id = conn.worker_id;
            let frame = match conn.transport.recv_timeout(POLL) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(_) => {
                    // Disconnect mid-lease: the flapping pattern. The
                    // range returns to the pool; the worker id earns
                    // a strike.
                    self.table.revoke(slot);
                    self.conns[slot] = None;
                    health.strike(worker_id, StrikeKind::LeaseExpiry);
                    continue;
                }
            };
            match Message::from_frame(&frame) {
                Ok(Message::Delta {
                    tenant: echoed,
                    lease_id,
                    boundary,
                    deltas,
                }) => {
                    if echoed != tenant {
                        // A delta for another tenant on this tenant's
                        // connection is a protocol violation: drop the
                        // lease, strike the worker, keep the campaign.
                        self.stats.rejected_frames += 1;
                        self.table.revoke(slot);
                        self.conns[slot] = None;
                        health.strike(worker_id, StrikeKind::RevokedPatch);
                        continue;
                    }
                    if self.table.lease(slot).map(|l| l.id) != Some(lease_id) {
                        continue; // stale lease echo
                    }
                    if boundary < target {
                        // Already merged: idempotent re-ack.
                        self.stats.redelivered_frames += 1;
                        let reply = conn.last_reply.clone();
                        if conn.transport.send(&reply).is_err() {
                            self.table.revoke(slot);
                            self.conns[slot] = None;
                            health.strike(worker_id, StrikeKind::LeaseExpiry);
                            continue;
                        }
                        self.table.renew(slot, Instant::now(), lease_timeout);
                    } else if boundary == target {
                        let (lo, hi) = self.table.range(slot);
                        let covers_range = deltas.len() == (hi - lo) as usize
                            && deltas
                                .shard_ids()
                                .into_iter()
                                .zip(lo..hi)
                                .all(|(d, id)| d == id);
                        if !covers_range {
                            self.stats.rejected_frames += 1;
                            self.table.revoke(slot);
                            self.conns[slot] = None;
                            health.strike(worker_id, StrikeKind::RevokedPatch);
                            continue;
                        }
                        if self.stash[slot].is_none() {
                            // Resolve increments against the committed
                            // previous boundary at stash time — same
                            // contract as the single-tenant
                            // coordinator.
                            let resolved = match deltas {
                                DeltaPayload::Full(d) => d,
                                DeltaPayload::Incremental(patches) => {
                                    let base = self
                                        .merge
                                        .as_ref()
                                        .expect("active tenant has merge")
                                        .snapshots(lo, hi);
                                    match apply_patches(&base, patches) {
                                        Ok(d) => d,
                                        Err(_) => {
                                            self.stats.rejected_frames += 1;
                                            self.table.revoke(slot);
                                            self.conns[slot] = None;
                                            health.strike(worker_id, StrikeKind::RevokedPatch);
                                            continue;
                                        }
                                    }
                                }
                            };
                            self.stats.delta_bytes += frame.len() as u64;
                            self.budget.charge_delta_bytes(frame.len() as u64);
                            self.stash[slot] = Some(resolved);
                        } else {
                            self.stats.redelivered_frames += 1;
                        }
                        self.table.renew(slot, Instant::now(), lease_timeout);
                    }
                }
                Ok(Message::Register { .. }) => {
                    // The grant (or a reply) never arrived: resend the
                    // cached frame.
                    self.stats.redelivered_frames += 1;
                    let reply = conn.last_reply.clone();
                    if conn.transport.send(&reply).is_err() {
                        self.table.revoke(slot);
                        self.conns[slot] = None;
                        health.strike(worker_id, StrikeKind::LeaseExpiry);
                        continue;
                    }
                    self.table.renew(slot, Instant::now(), lease_timeout);
                }
                Ok(_) => {} // coordinator-bound messages only
                Err(_) => {
                    // Checksum/decode failure: a byzantine (or
                    // damaged) frame. Count it, strike the sender; if
                    // this strike quarantined the worker, cut the
                    // connection so the range re-runs on a healthy
                    // one.
                    self.stats.rejected_frames += 1;
                    if health.strike(worker_id, StrikeKind::RejectedFrame) {
                        self.table.revoke(slot);
                        self.conns[slot] = None;
                    }
                }
            }
        }
    }

    /// If every range delivered its boundary delta, commit: merge in
    /// shard-id order, charge the budget, and either proceed,
    /// finish naturally, or terminate gracefully on overflow.
    fn try_commit(&mut self, tenant: u32, lease_timeout: Duration) -> Result<(), FabricError> {
        if !self.stash.iter().all(Option::is_some) {
            return Ok(());
        }
        let deltas: Vec<EpochDelta> = self
            .stash
            .iter_mut()
            .flat_map(|s| s.take().expect("stash checked full"))
            .collect();
        let merge = self.merge.as_mut().expect("active tenant has merge");
        let merged_at = Instant::now();
        let outcome = merge.apply_boundary(deltas)?;
        self.stats.merge_nanos = self
            .stats
            .merge_nanos
            .saturating_add(u64::try_from(merged_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.stats.boundaries += 1;
        let boundary = merge.epochs_done();
        // Charge the budget at the boundary — the only place overflow
        // is ever observed, so termination is always boundary-aligned.
        self.budget.record_execs(merge.execs_done());
        self.budget
            .record_wall_ms(u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX));
        let exhausted = !outcome.finished && self.budget.overflow().is_some();
        if outcome.finished || exhausted {
            // Natural finish and graceful budget termination share
            // one path: every worker is barrier-waiting on this
            // boundary's ack, so `Finish` releases them all cleanly.
            let frame = Message::Finish { tenant, boundary }.to_frame();
            for entry in &mut self.conns {
                if let Some(conn) = entry {
                    let _ = conn.transport.send(&frame);
                }
                *entry = None;
            }
            self.stats.expired_leases = self.table.expired();
            let merge = self.merge.take().expect("active tenant has merge");
            let result = if outcome.finished {
                merge.finish()?
            } else {
                merge.finish_early()?
            };
            self.done = Some(TenantResult {
                tenant,
                name: self.name.clone(),
                result,
                budget_exhausted: exhausted,
                boundaries: boundary,
                usage: self.budget.usage(),
                stats: self.stats,
            });
        } else {
            let frame = Message::Proceed {
                tenant,
                boundary,
                seeds: outcome.seeds,
            }
            .to_frame();
            for (slot, entry) in self.conns.iter_mut().enumerate() {
                let Some(conn) = entry else { continue };
                if conn.transport.send(&frame).is_err() {
                    self.table.revoke(slot);
                    *entry = None;
                    continue;
                }
                conn.last_reply.clone_from(&frame);
                self.table.renew(slot, Instant::now(), lease_timeout);
            }
        }
        Ok(())
    }
}

/// The multi-tenant campaign service. Admit tenants with
/// [`TenantService::admit`], then drive every campaign to completion
/// with [`TenantService::run`].
pub struct TenantService {
    opts: ServiceOpts,
    tenants: Vec<Tenant>,
    health: HealthTable,
    stats: ServiceStats,
    /// Round-robin cursor: the tenant id the next vacant-slot search
    /// starts from.
    rr_next: usize,
}

impl TenantService {
    /// A fresh service with no tenants.
    #[must_use]
    pub fn new(opts: ServiceOpts) -> TenantService {
        TenantService {
            opts,
            tenants: Vec::new(),
            health: HealthTable::new(opts.health),
            stats: ServiceStats::default(),
            rr_next: 0,
        }
    }

    /// Admit a tenant; returns its id (admission order, and the
    /// `tenant` tag on every frame it owns).
    pub fn admit(&mut self, spec: TenantSpec) -> u32 {
        let id = u32::try_from(self.tenants.len()).expect("tenant id fits u32");
        self.tenants.push(Tenant::new(spec));
        self.stats.grants_per_tenant.push(0);
        id
    }

    /// Admitted tenant count.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Drive every admitted campaign to completion. `accept` is
    /// polled for a new worker connection only while some active
    /// tenant has a vacant range slot (same backlog discipline as the
    /// single-tenant [`crate::Coordinator`]).
    ///
    /// Returns every tenant's [`TenantResult`] in tenant-id order,
    /// plus the service counters.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] only on an unrecoverable protocol
    /// violation; wire damage, worker loss, and byzantine workers are
    /// absorbed by the lease + supervision machinery.
    pub fn run(
        mut self,
        accept: &mut dyn FnMut() -> Option<Box<dyn Transport>>,
    ) -> Result<(Vec<TenantResult>, ServiceStats), FabricError> {
        if self.tenants.is_empty() {
            return Ok((Vec::new(), self.stats));
        }
        let mut arrivals: Vec<Arrival> = Vec::new();
        loop {
            let now = Instant::now();
            for t in &mut self.tenants {
                if t.active() {
                    t.expire_leases(now, &mut self.health);
                }
            }
            self.seat_registrants(&mut arrivals, accept);
            for tid in 0..self.tenants.len() {
                if !self.tenants[tid].active() {
                    continue;
                }
                let tenant = u32::try_from(tid).expect("tenant id fits u32");
                self.tenants[tid].poll_deltas(tenant, self.opts.lease_timeout, &mut self.health);
                self.tenants[tid].try_commit(tenant, self.opts.lease_timeout)?;
            }
            if self.tenants.iter().all(|t| t.done.is_some()) {
                let mut stats = self.stats;
                stats.quarantines = self.health.quarantines();
                let results = self
                    .tenants
                    .into_iter()
                    .map(|t| t.done.expect("all tenants done"))
                    .collect();
                return Ok((results, stats));
            }
        }
    }

    /// Workers holding a connection across all tenants — the seated
    /// count the worker cap is enforced against.
    fn seated_total(&self) -> usize {
        self.tenants.iter().map(Tenant::seated).sum()
    }

    /// The next tenant owed a worker: round-robin from the cursor
    /// over active tenants with a vacant slot, in tenant-id order —
    /// deterministic and starvation-free.
    fn next_vacancy(&self) -> Option<usize> {
        let n = self.tenants.len();
        for off in 0..n {
            let tid = (self.rr_next + off) % n;
            let t = &self.tenants[tid];
            if t.active() && t.table.vacant_slot().is_some() {
                return Some(tid);
            }
        }
        None
    }

    /// Fill vacant range slots fairly: drain `Register`s from queued
    /// arrivals through admission control, pulling new connections
    /// from `accept` only while a slot still wants one.
    fn seat_registrants(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        accept: &mut dyn FnMut() -> Option<Box<dyn Transport>>,
    ) {
        while let Some(tid) = self.next_vacancy() {
            let mut seated = false;
            let mut i = 0;
            while i < arrivals.len() {
                if arrivals[i]
                    .parked_until
                    .is_some_and(|until| self.health.grant_cycles() < until)
                {
                    i += 1; // still cooling down from its park
                    continue;
                }
                match arrivals[i].transport.recv_timeout(POLL) {
                    Ok(Some(frame)) => match Message::from_frame(&frame) {
                        Ok(Message::Register { worker_id }) => {
                            match self.health.admit(worker_id, self.seated_total()) {
                                Admission::Admit => {
                                    let arrival = arrivals.remove(i);
                                    self.grant(tid, worker_id, arrival.transport);
                                    seated = true;
                                    break;
                                }
                                Admission::Quarantined { remaining } => {
                                    // Refused for the cooldown: tell
                                    // the worker when to come back,
                                    // then cut the connection.
                                    self.stats.quarantine_refusals += 1;
                                    let refusal = Message::Retry {
                                        after_grants: remaining,
                                        quarantined: true,
                                    }
                                    .to_frame();
                                    let mut arrival = arrivals.remove(i);
                                    let _ = arrival.transport.send(&refusal);
                                }
                                Admission::Parked { retry_after } => {
                                    // Over the worker cap: shed load
                                    // by parking, not dropping — the
                                    // connection stays queued and is
                                    // reconsidered once the retry-
                                    // after lapses.
                                    self.stats.parked += 1;
                                    let parked = Message::Retry {
                                        after_grants: retry_after,
                                        quarantined: false,
                                    }
                                    .to_frame();
                                    if arrivals[i].transport.send(&parked).is_err() {
                                        arrivals.remove(i);
                                    } else {
                                        arrivals[i].parked_until =
                                            Some(self.health.grant_cycles() + retry_after);
                                        i += 1;
                                    }
                                }
                            }
                        }
                        Ok(_) => i += 1,
                        Err(_) => i += 1, // pre-registration damage: ignore
                    },
                    Ok(None) => i += 1,
                    Err(_) => {
                        arrivals.remove(i);
                    }
                }
            }
            if seated {
                continue;
            }
            // Give a pending (non-parked) arrival time to register
            // before racing another accept against it.
            if arrivals.iter().any(|a| {
                a.parked_until
                    .is_none_or(|until| self.health.grant_cycles() >= until)
            }) {
                break;
            }
            match accept() {
                Some(transport) => arrivals.push(Arrival {
                    transport,
                    parked_until: None,
                }),
                None => break,
            }
        }
    }

    /// Grant `tid`'s first vacant slot to `transport`: lease it, send
    /// the tenant-tagged grant, install the connection, tick the
    /// grant-cycle clock, and advance the round-robin cursor.
    fn grant(&mut self, tid: usize, worker_id: u64, mut transport: Box<dyn Transport>) {
        let tenant = u32::try_from(tid).expect("tenant id fits u32");
        let lease_timeout = self.opts.lease_timeout;
        let t = &mut self.tenants[tid];
        let slot = t.table.vacant_slot().expect("caller checked vacancy");
        let (lo, hi) = t.table.range(slot);
        let lease_id = t.table.grant(slot, Instant::now(), lease_timeout);
        let merge = t.merge.as_ref().expect("active tenant has merge");
        let frame = Message::Grant(Grant {
            tenant,
            lease_id,
            slot: u32::try_from(slot).expect("slot fits u32"),
            shard_lo: lo,
            shard_hi: hi,
            shards_total: merge.shards_total(),
            boundary: merge.epochs_done(),
            lease_timeout_ms: u64::try_from(lease_timeout.as_millis()).unwrap_or(u64::MAX),
            spec_fp: t.spec_fp,
            config: merge.config().clone(),
            snapshots: merge.snapshots(lo, hi),
        })
        .to_frame();
        if transport.send(&frame).is_ok() {
            t.conns[slot] = Some(Conn {
                transport,
                last_reply: frame,
                worker_id,
            });
            self.health.note_grant();
            self.stats.grants += 1;
            self.stats.grants_per_tenant[tid] += 1;
            self.rr_next = (tid + 1) % self.tenants.len();
        } else {
            // Dead before the grant ever left: back to the pool.
            t.table.revoke(slot);
        }
    }
}
