//! Per-tenant resource budgets: declared quotas, real-time usage
//! tracking, and overflow detection.
//!
//! A [`TenantQuota`] declares what a tenant may spend — executions,
//! wall-clock milliseconds, accepted delta bytes — and a
//! [`BudgetTracker`] charges actual usage against it. The service
//! consults [`BudgetTracker::overflow`] only at **epoch boundaries**:
//! overflow never aborts mid-epoch, it triggers graceful termination
//! (finish the boundary, fold the committed state, release leases),
//! so a budget-truncated result is bit-identical to an unlimited run
//! halted at the same boundary.
//!
//! Of the three dimensions only the exec charge is deterministic (a
//! pure function of config and boundary count —
//! `CampaignMerge::execs_done`); wall-time and byte quotas are
//! enforced with the same boundary-aligned discipline but naturally
//! vary run to run, so the bit-identity tests starve execs only.

/// Declared resource quotas for one tenant. Each dimension defaults
/// to [`u64::MAX`] — unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum executions the campaign may commit.
    pub max_execs: u64,
    /// Maximum wall-clock milliseconds since admission.
    pub max_wall_ms: u64,
    /// Maximum accepted (first-delivery) delta frame bytes.
    pub max_delta_bytes: u64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota::unlimited()
    }
}

impl TenantQuota {
    /// No limits on any dimension.
    #[must_use]
    pub fn unlimited() -> TenantQuota {
        TenantQuota {
            max_execs: u64::MAX,
            max_wall_ms: u64::MAX,
            max_delta_bytes: u64::MAX,
        }
    }

    /// An unlimited quota with only the exec dimension capped — the
    /// deterministic budget the chaos soak starves.
    #[must_use]
    pub fn execs(max_execs: u64) -> TenantQuota {
        TenantQuota {
            max_execs,
            ..TenantQuota::unlimited()
        }
    }
}

/// Which budget dimension overflowed first (fixed check order: execs,
/// wall, bytes — so the reported dimension is deterministic when
/// several overflow in the same boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowKind {
    /// The exec quota is spent.
    Execs,
    /// The wall-clock quota is spent.
    WallMs,
    /// The delta-byte quota is spent.
    DeltaBytes,
}

/// A usage snapshot: spent vs declared, per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetUsage {
    /// Executions committed so far.
    pub execs: u64,
    /// Wall-clock milliseconds elapsed since admission.
    pub wall_ms: u64,
    /// Accepted delta frame bytes so far.
    pub delta_bytes: u64,
    /// The declared quota the above are charged against.
    pub quota: TenantQuota,
}

impl BudgetUsage {
    /// Utilization of the tightest dimension, in parts per thousand
    /// (0 = untouched, ≥1000 = exhausted). Unlimited dimensions never
    /// contribute.
    #[must_use]
    pub fn utilization_permille(&self) -> u64 {
        let dim = |used: u64, max: u64| -> u64 {
            if max == u64::MAX || max == 0 {
                return 0;
            }
            used.saturating_mul(1000) / max
        };
        dim(self.execs, self.quota.max_execs)
            .max(dim(self.wall_ms, self.quota.max_wall_ms))
            .max(dim(self.delta_bytes, self.quota.max_delta_bytes))
    }
}

/// Charges a tenant's actual resource usage against its declared
/// [`TenantQuota`] and reports overflow. Totals are absolute (set,
/// not accumulated) for the dimensions whose source of truth is
/// elsewhere — committed execs and elapsed wall time — and
/// accumulated for delta bytes, which the service meters itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetTracker {
    quota: TenantQuota,
    execs: u64,
    wall_ms: u64,
    delta_bytes: u64,
}

impl BudgetTracker {
    /// A fresh tracker for `quota` with nothing spent.
    #[must_use]
    pub fn new(quota: TenantQuota) -> BudgetTracker {
        BudgetTracker {
            quota,
            execs: 0,
            wall_ms: 0,
            delta_bytes: 0,
        }
    }

    /// Record the committed exec total (monotone: a lower value than
    /// already recorded is ignored — commits never un-happen).
    pub fn record_execs(&mut self, total: u64) {
        self.execs = self.execs.max(total);
    }

    /// Record the elapsed wall-clock total in milliseconds (monotone).
    pub fn record_wall_ms(&mut self, total: u64) {
        self.wall_ms = self.wall_ms.max(total);
    }

    /// Charge `n` accepted delta frame bytes (accumulates).
    pub fn charge_delta_bytes(&mut self, n: u64) {
        self.delta_bytes = self.delta_bytes.saturating_add(n);
    }

    /// The first exhausted dimension, if any. A dimension is
    /// exhausted once its usage **reaches** the quota — a tenant with
    /// nothing left to spend is done, it does not get one more epoch.
    #[must_use]
    pub fn overflow(&self) -> Option<OverflowKind> {
        let spent = |used: u64, max: u64| max != u64::MAX && used >= max;
        if spent(self.execs, self.quota.max_execs) {
            Some(OverflowKind::Execs)
        } else if spent(self.wall_ms, self.quota.max_wall_ms) {
            Some(OverflowKind::WallMs)
        } else if spent(self.delta_bytes, self.quota.max_delta_bytes) {
            Some(OverflowKind::DeltaBytes)
        } else {
            None
        }
    }

    /// Current usage snapshot.
    #[must_use]
    pub fn usage(&self) -> BudgetUsage {
        BudgetUsage {
            execs: self.execs,
            wall_ms: self.wall_ms,
            delta_bytes: self.delta_bytes,
            quota: self.quota,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_quota_never_overflows() {
        let mut t = BudgetTracker::new(TenantQuota::unlimited());
        t.record_execs(u64::MAX - 1);
        t.record_wall_ms(u64::MAX - 1);
        t.charge_delta_bytes(u64::MAX - 1);
        assert_eq!(t.overflow(), None);
        assert_eq!(t.usage().utilization_permille(), 0);
    }

    #[test]
    fn exec_quota_overflows_exactly_at_the_quota() {
        let mut t = BudgetTracker::new(TenantQuota::execs(1000));
        t.record_execs(999);
        assert_eq!(t.overflow(), None);
        assert_eq!(t.usage().utilization_permille(), 999);
        t.record_execs(1000);
        assert_eq!(t.overflow(), Some(OverflowKind::Execs));
        assert!(t.usage().utilization_permille() >= 1000);
        // Monotone: a stale lower total cannot un-exhaust the budget.
        t.record_execs(10);
        assert_eq!(t.usage().execs, 1000);
        assert_eq!(t.overflow(), Some(OverflowKind::Execs));
    }

    #[test]
    fn overflow_reports_dimensions_in_fixed_order() {
        let quota = TenantQuota {
            max_execs: 10,
            max_wall_ms: 10,
            max_delta_bytes: 10,
        };
        let mut t = BudgetTracker::new(quota);
        t.charge_delta_bytes(10);
        assert_eq!(t.overflow(), Some(OverflowKind::DeltaBytes));
        t.record_wall_ms(10);
        assert_eq!(t.overflow(), Some(OverflowKind::WallMs));
        t.record_execs(10);
        assert_eq!(t.overflow(), Some(OverflowKind::Execs));
    }

    #[test]
    fn delta_bytes_accumulate_and_saturate() {
        let mut t = BudgetTracker::new(TenantQuota {
            max_delta_bytes: 100,
            ..TenantQuota::unlimited()
        });
        t.charge_delta_bytes(60);
        assert_eq!(t.overflow(), None);
        t.charge_delta_bytes(60);
        assert_eq!(t.overflow(), Some(OverflowKind::DeltaBytes));
        assert_eq!(t.usage().delta_bytes, 120);
        t.charge_delta_bytes(u64::MAX);
        assert_eq!(t.usage().delta_bytes, u64::MAX);
    }
}
