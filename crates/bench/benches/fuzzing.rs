//! Criterion micro-benchmarks for the fuzzing substrate: program
//! generation, encoding+execution throughput, and short campaigns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kgpt_csrc::KernelCorpus;
use kgpt_fuzzer::{execute, Campaign, CampaignConfig, Generator};
use kgpt_syzlang::SpecDb;
use kgpt_vkernel::VKernel;
use std::hint::black_box;

fn setup() -> (KernelCorpus, SpecDb, VKernel) {
    let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
    let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
    let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
    (kc, db, kernel)
}

fn bench_generation(c: &mut Criterion) {
    let (kc, db, _) = setup();
    c.bench_function("fuzzer/gen_program", |b| {
        let mut g = Generator::new(&db, kc.consts(), 1);
        b.iter(|| black_box(g.gen_program(8)))
    });
}

fn bench_execution(c: &mut Criterion) {
    let (kc, db, kernel) = setup();
    let mut g = Generator::new(&db, kc.consts(), 1);
    let progs: Vec<_> = (0..64).map(|_| g.gen_program(8)).collect();
    let mut group = c.benchmark_group("fuzzer");
    group.throughput(Throughput::Elements(progs.len() as u64));
    group.bench_function("execute_64_programs", |b| {
        b.iter(|| {
            for p in &progs {
                black_box(execute(&kernel, &db, kc.consts(), p));
            }
        })
    });
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let (kc, _, kernel) = setup();
    let suite = vec![kc.blueprints()[0].ground_truth_spec()];
    c.bench_function("fuzzer/campaign_1000_execs", |b| {
        b.iter(|| {
            let cfg = CampaignConfig {
                execs: 1000,
                seed: 1,
                max_prog_len: 8,
                enabled: None,
            };
            Campaign::new(&kernel, suite.clone(), kc.consts(), cfg).run()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_execution, bench_campaign
}
criterion_main!(benches);
