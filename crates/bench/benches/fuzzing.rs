//! Micro-benchmarks for the fuzzing substrate: program generation,
//! encoding+execution throughput, and short campaigns.
//!
//! Plain `harness = false` timing loops (the offline build cannot
//! fetch criterion): each benchmark reports ns/iter over a fixed
//! iteration count. Run with `cargo bench -p kgpt-bench`.

use kgpt_csrc::KernelCorpus;
use kgpt_fuzzer::{
    execute_with, Campaign, CampaignConfig, ExecScratch, Generator, ShardedCampaign,
};
use kgpt_syzlang::SpecDb;
use kgpt_vkernel::VKernel;
use std::hint::black_box;
use std::time::Instant;

fn report(name: &str, iters: u64, f: impl FnMut()) {
    let mut f = f;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<40} {:>12.0} ns/iter ({iters} iters, {:.3}s total)",
        elapsed.as_nanos() as f64 / iters as f64,
        elapsed.as_secs_f64(),
    );
}

fn setup() -> (KernelCorpus, SpecDb, VKernel) {
    let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
    let db = SpecDb::from_files(vec![kc.blueprints()[0].ground_truth_spec()]);
    let kernel = VKernel::boot(vec![kgpt_csrc::flagship::dm()]);
    (kc, db, kernel)
}

fn main() {
    let (kc, db, kernel) = setup();

    {
        let mut g = Generator::new(&db, kc.consts(), 1);
        report("fuzzer/gen_program", 2_000, || {
            black_box(g.gen_program(8));
        });
    }

    {
        let mut g = Generator::new(&db, kc.consts(), 1);
        let progs: Vec<_> = (0..64).map(|_| g.gen_program(8)).collect();
        let mut scratch = ExecScratch::new(&db, kc.consts());
        report("fuzzer/execute_64_programs", 200, || {
            for p in &progs {
                execute_with(&kernel, p, &mut scratch);
                black_box(scratch.state.coverage.len());
            }
        });
    }

    {
        let suite = vec![kc.blueprints()[0].ground_truth_spec()];
        report("fuzzer/campaign_1000_execs", 10, || {
            let cfg = CampaignConfig {
                execs: 1000,
                seed: 1,
                ..CampaignConfig::default()
            };
            black_box(Campaign::new(&kernel, &suite, kc.consts(), cfg).run());
        });
        report("fuzzer/sharded_campaign_8x1000_execs", 10, || {
            let cfg = CampaignConfig {
                execs: 8000,
                seed: 1,
                ..CampaignConfig::default()
            };
            black_box(
                ShardedCampaign::new(&kernel, &suite, kc.consts(), cfg)
                    .with_shards(8)
                    .run(),
            );
        });
    }
}
