//! Criterion micro-benchmarks for the specification pipeline: parsing,
//! validation, oracle queries, and full per-driver generation.

use criterion::{criterion_group, criterion_main, Criterion};
use kgpt_bench::Env;
use kgpt_core::{KernelGpt, Strategy};
use kgpt_csrc::KernelCorpus;
use kgpt_llm::{ChatRequest, LanguageModel, ModelKind, OracleModel};
use kgpt_llm::protocol::{Prompt, Task};
use std::hint::black_box;

fn bench_syzlang(c: &mut Criterion) {
    let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
    let truth = kc.blueprints()[0].ground_truth_spec();
    let text = kgpt_syzlang::print_file(&truth);
    c.bench_function("syzlang/parse_dm_spec", |b| {
        b.iter(|| kgpt_syzlang::parse("dm", black_box(&text)).unwrap())
    });
    let db = kgpt_syzlang::SpecDb::from_files(vec![truth]);
    c.bench_function("syzlang/validate_dm_spec", |b| {
        b.iter(|| kgpt_syzlang::validate::validate(black_box(&db), kc.consts()))
    });
}

fn bench_csrc(c: &mut Criterion) {
    let bp = kgpt_csrc::flagship::dm();
    let src = kgpt_csrc::emit::emit_blueprint(&bp);
    c.bench_function("csrc/parse_dm_source", |b| {
        b.iter(|| kgpt_csrc::parser::cparse("dm.c", black_box(&src)).unwrap())
    });
}

fn bench_oracle(c: &mut Criterion) {
    let bp = kgpt_csrc::flagship::dm();
    let src = kgpt_csrc::emit::emit_blueprint(&bp);
    let file = kgpt_csrc::parser::cparse("dm.c", &src).unwrap();
    let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
    let prompt = Prompt {
        task: Some(Task::Identifier),
        target_func: Some("dm_ctl_ioctl".into()),
        handler_var: Some("_dm_fops".into()),
        source,
        ..Prompt::default()
    }
    .render();
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    c.bench_function("oracle/identifier_query_dm", |b| {
        b.iter(|| model.chat(black_box(&ChatRequest::new(prompt.clone()))))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let env = Env::flagship();
    let handler = env.handler_for("dm").unwrap().clone();
    c.bench_function("kernelgpt/generate_dm", |b| {
        b.iter(|| {
            let model = OracleModel::new(ModelKind::Gpt4, 0);
            let engine = KernelGpt::new(&model, env.kc.corpus())
                .with_strategy(Strategy::Iterative);
            engine.generate_all(std::slice::from_ref(&handler), env.kc.consts())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_syzlang, bench_csrc, bench_oracle, bench_pipeline
}
criterion_main!(benches);
