//! Micro-benchmarks for the specification pipeline: parsing,
//! validation, oracle queries, and full per-driver generation.
//!
//! Plain `harness = false` timing loops (the offline build cannot
//! fetch criterion). Run with `cargo bench -p kgpt-bench`.

use kgpt_bench::Env;
use kgpt_core::{KernelGpt, Strategy};
use kgpt_csrc::KernelCorpus;
use kgpt_llm::protocol::{Prompt, Task};
use kgpt_llm::{ChatRequest, LanguageModel, ModelKind, OracleModel};
use std::hint::black_box;
use std::time::Instant;

fn report(name: &str, iters: u64, f: impl FnMut()) {
    let mut f = f;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<40} {:>12.0} ns/iter ({iters} iters, {:.3}s total)",
        elapsed.as_nanos() as f64 / iters as f64,
        elapsed.as_secs_f64(),
    );
}

fn main() {
    {
        let kc = KernelCorpus::from_blueprints(vec![kgpt_csrc::flagship::dm()]);
        let truth = kc.blueprints()[0].ground_truth_spec();
        let text = kgpt_syzlang::print_file(&truth);
        report("syzlang/parse_dm_spec", 500, || {
            black_box(kgpt_syzlang::parse("dm", black_box(&text)).unwrap());
        });
        let db = kgpt_syzlang::SpecDb::from_files(vec![truth.clone()]);
        report("syzlang/validate_dm_spec", 500, || {
            black_box(kgpt_syzlang::validate::validate(
                black_box(&db),
                kc.consts(),
            ));
        });
        let suite = vec![truth];
        report("syzlang/specdb_cold_build", 500, || {
            black_box(kgpt_syzlang::SpecDb::from_files(black_box(suite.clone())));
        });
        let cache = kgpt_syzlang::SpecCache::new();
        let _ = cache.get_or_build(&suite);
        report("syzlang/specdb_warm_lookup", 20_000, || {
            black_box(cache.get_or_build(black_box(&suite)));
        });
        assert_eq!(cache.misses(), 1, "warm lookups must not recompile");
    }

    {
        let bp = kgpt_csrc::flagship::dm();
        let src = kgpt_csrc::emit::emit_blueprint(&bp);
        report("csrc/parse_dm_source", 200, || {
            black_box(kgpt_csrc::parser::cparse("dm.c", black_box(&src)).unwrap());
        });
    }

    {
        let bp = kgpt_csrc::flagship::dm();
        let src = kgpt_csrc::emit::emit_blueprint(&bp);
        let file = kgpt_csrc::parser::cparse("dm.c", &src).unwrap();
        let source: Vec<String> = file.items.iter().map(|i| i.text.clone()).collect();
        let prompt = Prompt {
            task: Some(Task::Identifier),
            target_func: Some("dm_ctl_ioctl".into()),
            handler_var: Some("_dm_fops".into()),
            source,
            ..Prompt::default()
        }
        .render();
        let model = OracleModel::new(ModelKind::Gpt4, 0);
        report("oracle/identifier_query_dm", 200, || {
            black_box(model.chat(black_box(&ChatRequest::new(prompt.clone()))));
        });
    }

    {
        let env = Env::flagship();
        let handler = env.handler_for("dm").unwrap().clone();
        report("kernelgpt/generate_dm", 20, || {
            let model = OracleModel::new(ModelKind::Gpt4, 0);
            let engine = KernelGpt::new(&model, env.kc.corpus()).with_strategy(Strategy::Iterative);
            black_box(engine.generate_all(std::slice::from_ref(&handler), env.kc.consts()));
        });
    }
}
