//! Minimal JSON reader for the bench harness.
//!
//! The workspace is offline (no `serde_json`); the bench files it
//! needs to read back — `BENCH_fuzzing.json` and the committed
//! `BENCH_baseline.json` — are small and machine-written, so a strict
//! recursive-descent parser over the full JSON grammar is enough.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a `.`-separated path of object keys.
    #[must_use]
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |v, k| v.get(k))
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// String value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. Recursive descent
/// recurses once per `[`/`{`, so adversarial input like 100k `[`s
/// would otherwise overflow the stack; every document the harness
/// actually reads nests 3–4 deep.
pub const MAX_DEPTH: usize = 128;

/// Parse a JSON document. Errors carry a byte offset and message.
///
/// # Errors
///
/// Returns a message and byte offset on malformed input, trailing
/// garbage, or containers nested deeper than [`MAX_DEPTH`].
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(b, pos);
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(*esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the bench
                        // files; map lone surrogates to the
                        // replacement character.
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "bench": "fuzzing",
  "execs": 20000,
  "sequential": { "secs": 1.5, "execs_per_sec": 13333.3 },
  "sharded": [
    { "threads": 1, "execs_per_sec": 12000.0 },
    { "threads": 2, "execs_per_sec": 11000.0 }
  ],
  "merge_invariant": true,
  "note": null
}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.path("bench").unwrap().as_str(), Some("fuzzing"));
        assert_eq!(v.path("execs").unwrap().as_f64(), Some(20000.0));
        assert_eq!(
            v.path("sequential.execs_per_sec").unwrap().as_f64(),
            Some(13333.3)
        );
        let sharded = v.get("sharded").unwrap().as_arr().unwrap();
        assert_eq!(sharded.len(), 2);
        assert_eq!(sharded[1].get("threads").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("merge_invariant").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_the_committed_bench_format() {
        // The exact shape fuzz_bench writes must stay parseable.
        let doc = "{\n  \"a\": -1.5e3,\n  \"b\": [\"x\\n\", \"\\u0041\"]\n}\n";
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-1500.0));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0].as_str(), Some("x\n"));
        assert_eq!(b[1].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // Fuzz-style adversarial inputs: unclosed and closed deep
        // arrays, deep objects, and mixed nesting far past MAX_DEPTH
        // must all return Err — the recursion is bounded, so none of
        // them can blow the stack.
        let deep_open = "[".repeat(100_000);
        let err = parse_json(&deep_open).unwrap_err();
        assert!(err.contains("nesting"), "got: {err}");

        let deep_closed = format!("{}{}", "[".repeat(50_000), "]".repeat(50_000));
        assert!(parse_json(&deep_closed).is_err());

        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(parse_json(&deep_obj).is_err());

        let mixed: String = (0..50_000)
            .map(|i| if i % 2 == 0 { "[" } else { "{\"k\":" })
            .collect();
        assert!(parse_json(&mixed).is_err());

        // At and just under the limit parsing still works.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_json(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse_json(&too_deep).is_err());
    }
}
