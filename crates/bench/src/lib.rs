//! # kgpt-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! KernelGPT paper. `cargo run --release -p kgpt-bench --bin tables --
//! <experiment>` prints paper-formatted rows; see EXPERIMENTS.md for
//! the recorded paper-vs-measured comparison.

pub mod gate;
pub mod json;

use kgpt_core::{GenerationReport, KernelGpt, Strategy};
use kgpt_csrc::blueprint::Blueprint;
use kgpt_csrc::KernelCorpus;
use kgpt_extractor::{find_handlers, OpHandler};
use kgpt_fuzzer::{Campaign, CampaignConfig, CampaignResult, ShardedCampaign};
use kgpt_llm::{LanguageModel, ModelKind, OracleModel};
use kgpt_syzlang::{SpecDb, SpecFile, Syscall};
use kgpt_vkernel::VKernel;
use std::collections::BTreeSet;

/// Blueprint id for a handler's ops variable (`_dm_fops` → `dm`).
#[must_use]
pub fn bp_id_of_handler(h: &OpHandler) -> String {
    kgpt_llm::oracle::prefix_of_ops_var(&h.ops_var)
}

/// A prepared experiment environment over a corpus.
pub struct Env {
    /// The kernel corpus (blueprints + parsed C + consts).
    pub kc: KernelCorpus,
    /// All discovered operation handlers.
    pub handlers: Vec<OpHandler>,
}

impl Env {
    /// Flagship-only environment (Tables 3–6, ablations).
    #[must_use]
    pub fn flagship() -> Env {
        let kc = KernelCorpus::flagship_only();
        let handlers = find_handlers(kc.corpus());
        Env { kc, handlers }
    }

    /// Full-census environment (Table 1/2, Figure 7, §5.1.x).
    #[must_use]
    pub fn full(seed: u64) -> Env {
        let kc = KernelCorpus::full(seed);
        let handlers = find_handlers(kc.corpus());
        Env { kc, handlers }
    }

    /// Handler for a blueprint id.
    #[must_use]
    pub fn handler_for(&self, bp_id: &str) -> Option<&OpHandler> {
        self.handlers.iter().find(|h| bp_id_of_handler(h) == bp_id)
    }

    /// Handlers of loaded blueprints whose existing specs are
    /// incomplete (the generation targets of §5.1).
    #[must_use]
    pub fn incomplete_handlers(&self) -> Vec<OpHandler> {
        self.handlers
            .iter()
            .filter(|h| {
                let id = bp_id_of_handler(h);
                self.kc
                    .blueprint(&id)
                    .is_some_and(|bp| bp.loaded && self.kc.missing_fraction(bp) > 0.0)
            })
            .cloned()
            .collect()
    }

    /// Run KernelGPT with a model over a set of handlers.
    #[must_use]
    pub fn run_kernelgpt(
        &self,
        model: &dyn LanguageModel,
        handlers: &[OpHandler],
        strategy: Strategy,
    ) -> GenerationReport {
        KernelGpt::new(model, self.kc.corpus())
            .with_strategy(strategy)
            .generate_all(handlers, self.kc.consts())
    }

    /// Boot a kernel with every blueprint of the corpus.
    #[must_use]
    pub fn boot_kernel(&self) -> VKernel {
        VKernel::boot(self.kc.blueprints().to_vec())
    }

    /// Run a campaign with a suite.
    #[must_use]
    pub fn campaign(
        &self,
        kernel: &VKernel,
        suite: &[SpecFile],
        cfg: CampaignConfig,
    ) -> CampaignResult {
        Campaign::new(kernel, suite, self.kc.consts(), cfg).run()
    }

    /// Run a campaign split over `shards` logical shards on `threads`
    /// worker threads (0 = one per CPU). The result is independent of
    /// `threads`; see [`ShardedCampaign`].
    #[must_use]
    pub fn sharded_campaign(
        &self,
        kernel: &VKernel,
        suite: &[SpecFile],
        cfg: CampaignConfig,
        shards: u32,
        threads: usize,
    ) -> CampaignResult {
        ShardedCampaign::new(kernel, suite, self.kc.consts(), cfg)
            .with_shards(shards)
            .with_threads(threads)
            .run()
    }

    /// Mean coverage over repetitions with seeds `0..reps`.
    #[must_use]
    pub fn campaign_mean(
        &self,
        kernel: &VKernel,
        suite: &[SpecFile],
        execs: u64,
        reps: u64,
        enabled: Option<Vec<String>>,
    ) -> MeanResult {
        let mut blocks = Vec::new();
        let mut crashes = Vec::new();
        let mut union: BTreeSet<u64> = BTreeSet::new();
        let mut titles: BTreeSet<String> = BTreeSet::new();
        for seed in 0..reps {
            let cfg = CampaignConfig {
                execs,
                seed,
                enabled: enabled.clone(),
                ..CampaignConfig::default()
            };
            let r = self.campaign(kernel, suite, cfg);
            blocks.push(r.blocks() as u64);
            crashes.push(r.unique_crashes() as u64);
            titles.extend(r.crashes.keys().cloned());
            union.extend(r.coverage);
        }
        MeanResult {
            mean_blocks: mean(&blocks),
            mean_crashes: mean_f(&crashes),
            union,
            crash_titles: titles,
        }
    }

    /// Per-driver syscall names of a suite (the `enabled` filter of
    /// Tables 5/6): every syscall in the given files. Compiles through
    /// the global [`kgpt_syzlang::SpecCache`], so the campaign built
    /// over the same suite right after reuses the database.
    #[must_use]
    pub fn suite_syscalls(suite: &[SpecFile]) -> Vec<String> {
        let db = kgpt_syzlang::SpecCache::global().get_or_build(suite);
        db.syscalls().map(Syscall::name).collect()
    }
}

/// Aggregated repetition results.
#[derive(Debug, Clone)]
pub struct MeanResult {
    /// Mean distinct blocks per repetition.
    pub mean_blocks: u64,
    /// Mean unique crash titles per repetition.
    pub mean_crashes: f64,
    /// Union of blocks across repetitions.
    pub union: BTreeSet<u64>,
    /// Union of crash titles.
    pub crash_titles: BTreeSet<String>,
}

fn mean(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        0
    } else {
        xs.iter().sum::<u64>() / xs.len() as u64
    }
}

fn mean_f(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Build the three Table 3 suites over an environment:
/// (Syzkaller, Syzkaller+SyzDescribe, Syzkaller+KernelGPT).
#[must_use]
pub fn table3_suites(env: &Env) -> (Vec<SpecFile>, Vec<SpecFile>, Vec<SpecFile>) {
    let existing = env.kc.existing_suite();
    // SyzDescribe over all loaded handlers.
    let loaded: Vec<OpHandler> = env
        .handlers
        .iter()
        .filter(|h| {
            env.kc
                .blueprint(&bp_id_of_handler(h))
                .is_some_and(|b| b.loaded)
        })
        .cloned()
        .collect();
    let sd = kgpt_syzdescribe::describe_all(env.kc.corpus(), &loaded, env.kc.consts());
    let mut with_sd = existing.clone();
    with_sd.extend(sd.into_iter().filter(|o| o.valid).filter_map(|o| o.spec));
    // KernelGPT over the incomplete handlers (the paper's setting).
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = env.run_kernelgpt(&model, &env.incomplete_handlers(), Strategy::Iterative);
    let mut with_kgpt = existing.clone();
    with_kgpt.extend(report.specs());
    (existing, with_sd, with_kgpt)
}

/// The Table 5 driver rows in paper order (excluding the two N/A ones).
pub const TABLE5_DRIVERS: &[&str] = &[
    "btrfs_control",
    "capi20",
    "controlc",
    "fuse",
    "hpet",
    "i2c",
    "kvm",
    "loop_control",
    "loopdev",
    "misdntimer",
    "nbd",
    "nvram",
    "ppp",
    "ptmx",
    "qat",
    "rfkill",
    "rtc",
    "sg",
    "snapshot",
    "sr",
    "timer",
    "udmabuf",
    "uinput",
    "usbmon",
    "vhost_net",
    "vhost_vsock",
    "vmci",
    "vsock",
];

/// The Table 6 socket rows.
pub const TABLE6_SOCKETS: &[&str] = &[
    "caif", "l2tp_ip6", "llc", "mptcp", "packet", "phonet", "pppol2tp", "rds", "rfcomm", "sco",
];

/// Sub-handlers that ride along with a Table 5 driver (enabled
/// syscalls and suites include them).
#[must_use]
pub fn companions(id: &str) -> Vec<&'static str> {
    match id {
        "kvm" => vec!["kvm_vm", "kvm_vcpu"],
        _ => vec![],
    }
}

/// Ground-truth-derived "existing Syzkaller" suite for one driver.
#[must_use]
pub fn existing_suite_for(env: &Env, id: &str) -> Vec<SpecFile> {
    let mut out = Vec::new();
    for bid in std::iter::once(id).chain(companions(id)) {
        if let Some(bp) = env.kc.blueprint(bid) {
            if let Some(f) = bp.existing_spec_file() {
                out.push(f);
            }
        }
    }
    out
}

/// KernelGPT suite for one driver (+ companions).
#[must_use]
pub fn kgpt_suite_for(env: &Env, model: &dyn LanguageModel, id: &str) -> Vec<SpecFile> {
    let handlers: Vec<OpHandler> = std::iter::once(id)
        .chain(companions(id))
        .filter_map(|bid| env.handler_for(bid).cloned())
        .collect();
    env.run_kernelgpt(model, &handlers, Strategy::Iterative)
        .specs()
}

/// SyzDescribe suite for one driver (+ companions).
#[must_use]
pub fn syzdescribe_suite_for(env: &Env, id: &str) -> Vec<SpecFile> {
    let handlers: Vec<OpHandler> = std::iter::once(id)
        .chain(companions(id))
        .filter_map(|bid| env.handler_for(bid).cloned())
        .collect();
    kgpt_syzdescribe::describe_all(env.kc.corpus(), &handlers, env.kc.consts())
        .into_iter()
        .filter_map(|o| o.spec)
        .collect()
}

/// Spec-vs-ground-truth accounting for §5.1.3.
#[derive(Debug, Clone, Default)]
pub struct CorrectnessStats {
    /// Drivers examined.
    pub drivers: usize,
    /// Drivers with at least one missing syscall.
    pub drivers_with_missing: usize,
    /// Total ground-truth syscalls examined.
    pub total_syscalls: usize,
    /// Ground-truth syscalls absent from the generated spec.
    pub missing_syscalls: usize,
    /// Generated commands whose identifier value disagrees with truth.
    pub wrong_identifiers: usize,
    /// Generated struct types whose byte layout disagrees with truth.
    pub wrong_types: usize,
}

/// Compare generated specs against blueprint ground truth.
#[must_use]
pub fn correctness(env: &Env, bp_ids: &[String], report: &GenerationReport) -> CorrectnessStats {
    let mut stats = CorrectnessStats::default();
    for id in bp_ids {
        let Some(bp) = env.kc.blueprint(id) else {
            continue;
        };
        let Some(outcome) = report
            .outcomes
            .iter()
            .find(|o| kgpt_llm::oracle::prefix_of_ops_var(&o.ops_var) == *id)
        else {
            continue;
        };
        stats.drivers += 1;
        let truth = bp.ground_truth_spec();
        let truth_db = SpecDb::from_files(vec![truth]);
        let gen_db = SpecDb::from_files(outcome.spec.clone().into_iter().collect());
        let mut missing_here = 0usize;
        for cmd in &bp.cmds {
            stats.total_syscalls += 1;
            let truth_value = bp.cmd_value(cmd);
            // Find a generated ioctl/setsockopt whose cmd const resolves
            // to the same value.
            let mut found = false;
            let mut value_ok = false;
            for s in gen_db.syscalls() {
                if s.base != "ioctl" && s.base != "setsockopt" {
                    continue;
                }
                let Some(cparam) = s.params.iter().find(|p| p.name == "cmd" || p.name == "opt")
                else {
                    continue;
                };
                if let kgpt_syzlang::Type::Const { value, .. } = &cparam.ty {
                    let name_matches = value.as_sym() == Some(cmd.name.as_str());
                    if name_matches {
                        found = true;
                        value_ok = env
                            .kc
                            .consts()
                            .resolve(value)
                            .is_some_and(|v| v == truth_value);
                        break;
                    }
                }
            }
            if !found {
                stats.missing_syscalls += 1;
                missing_here += 1;
            } else if !value_ok {
                stats.wrong_identifiers += 1;
            }
        }
        if missing_here > 0 {
            stats.drivers_with_missing += 1;
        }
        // Type layout comparison.
        for truth_struct in truth_db.structs() {
            let Some(gen_struct) = gen_db.struct_def(&truth_struct.name) else {
                continue;
            };
            let t = kgpt_syzlang::layout::struct_layout(truth_struct, &truth_db);
            let g = kgpt_syzlang::layout::struct_layout(gen_struct, &gen_db);
            if let (Ok(t), Ok(g)) = (t, g) {
                if t.size != g.size {
                    stats.wrong_types += 1;
                }
            }
        }
    }
    stats
}

/// Which Table 4 bugs exist, per blueprint.
#[must_use]
pub fn all_bugs(env: &Env) -> Vec<(String, String, Option<String>)> {
    let mut out = Vec::new();
    for bp in env.kc.blueprints() {
        for b in &bp.bugs {
            out.push((bp.id.clone(), b.title.clone(), b.cve.clone()));
        }
    }
    out
}

/// Convenience: blueprint list by ids (with companions), for booting
/// single-driver kernels.
#[must_use]
pub fn blueprints_for(env: &Env, id: &str) -> Vec<Blueprint> {
    std::iter::once(id)
        .chain(companions(id))
        .filter_map(|bid| env.kc.blueprint(bid).cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_and_suites_build() {
        let env = Env::flagship();
        assert_eq!(env.handlers.len(), env.kc.blueprints().len());
        let suite = existing_suite_for(&env, "sg");
        assert_eq!(suite.len(), 1);
        assert!(env.handler_for("dm").is_some());
        assert!(!Env::suite_syscalls(&suite).is_empty());
    }

    #[test]
    fn table5_ids_resolve() {
        let env = Env::flagship();
        for id in TABLE5_DRIVERS {
            assert!(env.kc.blueprint(id).is_some(), "missing blueprint {id}");
            assert!(env.handler_for(id).is_some(), "missing handler {id}");
        }
        for id in TABLE6_SOCKETS {
            assert!(env.kc.blueprint(id).is_some(), "missing blueprint {id}");
        }
    }

    #[test]
    fn bug_inventory_is_complete() {
        let env = Env::flagship();
        assert_eq!(all_bugs(&env).len(), 24);
    }
}
