//! Bench-regression gate.
//!
//! Compares a freshly measured `BENCH_fuzzing.json` against the
//! committed `BENCH_baseline.json` and classifies the differences:
//!
//! * **determinism** — `merge_invariant`, the generation
//!   `bit_identical` flag, the seed-hub `thread_invariant` flag, and
//!   the lowering `bit_identical` flag (lowered-IR program streams
//!   and execution outcomes must equal the AST walk's) must hold in
//!   the fresh run, full stop;
//! * **baseline coverage of sections** — when the fresh run carries a
//!   top-level section the committed baseline lacks, the bench grew
//!   without its baseline: the gate fails with the exact action
//!   ("regenerate `BENCH_baseline.json` in this PR"), naming the
//!   section, instead of silently skipping the new numbers;
//! * **coverage** — with an identical workload (`execs`, `shards`),
//!   the campaign is a pure function of its config, so `blocks` and
//!   `unique_crashes` (hub ablation sides included) must match the
//!   baseline *exactly* on any machine — a mismatch means the
//!   fuzzer's behaviour changed, not that a runner was slow;
//! * **hub yield** — the exchange-on coverage-per-exec of the fresh
//!   run must not drop below exchange-off: the seed hub exists to
//!   lift per-exec coverage yield, so a regression there is a hard
//!   failure at any threshold — and the same check runs for **every
//!   entry of the `workloads` section** (the deep-chain suite, where
//!   saturation no longer masks the lift), each of which must also be
//!   thread-invariant;
//! * **triage** — the crash-triage section must report
//!   `thread_invariant` and `reproducible` as true (a minimized
//!   reproducer that no longer triggers its signature is a hard
//!   failure), and the mean raw→minimized shrink ratio must stay at
//!   or above [`MIN_SHRINK_RATIO`];
//! * **durability** — a present `durability` section must report
//!   `resume_identical` (interrupt-at-a-boundary + resume produced
//!   the uninterrupted result, bit for bit — under fault injection)
//!   and `fuel_deterministic` (two identical starved runs counted the
//!   same fuel exhaustions) as true, and the measured checkpointing
//!   overhead must stay at or below a threshold (default
//!   [`DEFAULT_MAX_CHECKPOINT_OVERHEAD_PCT`]%, overridable via
//!   `BENCH_GATE_MAX_CHECKPOINT_OVERHEAD`); with an identical
//!   workload the fuel-exhaustion count is exact-compared against the
//!   baseline;
//! * **fabric** — a present `fabric` section must report
//!   `worker_invariant` as true (the coordinator-merged distributed
//!   result is bit-identical to the single-process campaign at every
//!   worker count, with both incremental and forced-full frames),
//!   zero `expired_leases` (no worker may fall behind its lease
//!   deadline in a clean in-memory run), and a `delta_shrink` of at
//!   least `MIN_DELTA_SHRINK`x (incremental frames that cost as
//!   much as full snapshots mean the diff codec degenerated); with an
//!   identical workload the boundary count and per-epoch delta
//!   volumes (incremental and full) are exact-compared against the
//!   baseline (the wire format is deterministic, so drift is a
//!   behaviour change), while the merge time stays informational;
//! * **tenancy** — a present `tenancy` section must report
//!   `tenant_invariant` as true (every tenant of the shared service —
//!   the budget-cut one included — merged bit-identical to its
//!   single-process reference) and `budget_exhausted` as true (the
//!   quota-declaring tenant was actually cut at a boundary); with an
//!   identical workload the per-tenant exec / coverage / corpus /
//!   grant accounting and the starved tenant's cut point are
//!   exact-compared against the baseline, while wall time stays
//!   informational;
//! * **trace** — a present `trace` section must report
//!   `replay_identical` as true (every retained flight-recorder trace
//!   re-executed bit-identically — same block stream, same crash,
//!   same fuel verdict — and every crash signature of the traced run
//!   had a pinned trace replaying to the same signature), the
//!   amortized trace volume must stay at or below
//!   [`MAX_TRACE_BITS_PER_EXEC`] bits per campaign exec, and the
//!   capture overhead (traced vs tracing-off wall clock) must stay at
//!   or below a threshold (default
//!   [`DEFAULT_MAX_TRACE_OVERHEAD_PCT`]%, overridable via
//!   `BENCH_GATE_MAX_TRACE_OVERHEAD`); with an identical trace
//!   workload the retained-trace count, encoded stream volume and
//!   crash-signature count are exact-compared against the baseline
//!   (capture and retention are deterministic, so drift is a recorder
//!   behaviour change);
//! * **throughput** — rate metrics (execs/sec, handlers/sec, the
//!   warm-cache speedup) may regress by at most a threshold
//!   (default [`DEFAULT_MAX_REGRESSION_PCT`]%, overridable via the
//!   `BENCH_GATE_MAX_REGRESSION` environment variable for noisy
//!   runners).
//!
//! Environment overrides are strict: a set-but-unparseable gate
//! variable is a hard error naming the variable, never a silent fall
//! back to the default.
//!
//! The `bench_gate` binary is a thin CLI over [`check`].

use crate::json::Json;

/// Default allowed throughput regression, percent.
pub const DEFAULT_MAX_REGRESSION_PCT: f64 = 25.0;

/// Default allowed checkpointing overhead (wall-clock cost of running
/// the campaign with per-epoch snapshots vs without), percent.
///
/// Calibration note: the virtual kernel retires execs so fast that
/// one exchange epoch is only a few milliseconds of compute —
/// comparable to a single snapshot write — so even a healthy harness
/// measures tens of percent at the per-epoch cadence. The threshold
/// exists to catch order-of-magnitude regressions (a snapshot capture
/// gone accidentally quadratic), not to police that inherent ratio.
pub const DEFAULT_MAX_CHECKPOINT_OVERHEAD_PCT: f64 = 150.0;

/// Default allowed flight-recorder capture overhead (wall-clock cost
/// of running the campaign with per-exec tracing vs tracing off),
/// percent.
///
/// Calibration note: a virtual-kernel exec is microseconds of work,
/// so the fixed per-exec cost of delta-coding the block stream shows
/// up as tens of percent — far larger than it would be against a real
/// kernel's syscall latency. Like the checkpoint threshold, this one
/// exists to catch order-of-magnitude regressions (an encoder gone
/// accidentally quadratic), not to police the inherent ratio.
pub const DEFAULT_MAX_TRACE_OVERHEAD_PCT: f64 = 100.0;

/// Maximum acceptable amortized trace volume, in encoded bits of
/// retained trace per campaign exec. The recorder delta-codes block
/// ids against the lowered CFG's successor tables, so the common
/// fall-through path costs ~1 bit per retired run; a campaign-wide
/// average above this bound means the codec (or the retention policy)
/// degenerated, as the reference point is conditional branch
/// predictors shipping 0.1–1.2 bits of state per branch.
pub const MAX_TRACE_BITS_PER_EXEC: f64 = 16.0;

/// Minimum acceptable mean raw→minimized shrink ratio of the triage
/// section: minimization that fails to halve reproducers on the
/// deep-chain workload is a behaviour regression, not noise.
pub const MIN_SHRINK_RATIO: f64 = 2.0;

/// Environment variable overriding the allowed regression percentage.
pub const MAX_REGRESSION_ENV: &str = "BENCH_GATE_MAX_REGRESSION";

/// Environment variable overriding the allowed checkpoint overhead
/// percentage.
pub const MAX_CHECKPOINT_OVERHEAD_ENV: &str = "BENCH_GATE_MAX_CHECKPOINT_OVERHEAD";

/// Environment variable overriding the allowed flight-recorder
/// capture overhead percentage.
pub const MAX_TRACE_OVERHEAD_ENV: &str = "BENCH_GATE_MAX_TRACE_OVERHEAD";

/// Outcome of a gate run.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Informational lines (improvements, skipped comparisons).
    pub notes: Vec<String>,
    /// Gate-failing findings; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Percentage thresholds the gate compares against.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Allowed throughput regression, percent.
    pub max_regression_pct: f64,
    /// Allowed checkpointing overhead, percent.
    pub max_checkpoint_overhead_pct: f64,
    /// Allowed flight-recorder capture overhead, percent.
    pub max_trace_overhead_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            max_regression_pct: DEFAULT_MAX_REGRESSION_PCT,
            max_checkpoint_overhead_pct: DEFAULT_MAX_CHECKPOINT_OVERHEAD_PCT,
            max_trace_overhead_pct: DEFAULT_MAX_TRACE_OVERHEAD_PCT,
        }
    }
}

impl Thresholds {
    /// Thresholds with every environment override applied.
    ///
    /// # Errors
    ///
    /// Returns an error naming the offending variable when a gate
    /// override is set but not a finite non-negative number —
    /// misconfigured CI must fail loudly, not silently gate at the
    /// default.
    pub fn from_env() -> Result<Thresholds, String> {
        Ok(Thresholds {
            max_regression_pct: env_pct(MAX_REGRESSION_ENV, DEFAULT_MAX_REGRESSION_PCT)?,
            max_checkpoint_overhead_pct: env_pct(
                MAX_CHECKPOINT_OVERHEAD_ENV,
                DEFAULT_MAX_CHECKPOINT_OVERHEAD_PCT,
            )?,
            max_trace_overhead_pct: env_pct(
                MAX_TRACE_OVERHEAD_ENV,
                DEFAULT_MAX_TRACE_OVERHEAD_PCT,
            )?,
        })
    }
}

/// Read a percentage override from the environment: the default when
/// unset, the parsed value when valid, and a hard error naming the
/// variable otherwise.
fn env_pct(var: &str, default: f64) -> Result<f64, String> {
    let Ok(raw) = std::env::var(var) else {
        return Ok(default);
    };
    raw.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| {
            format!("{var} is set to {raw:?}, which is not a finite non-negative percentage")
        })
}

/// Run every check of the gate (see the module docs).
#[must_use]
pub fn check(fresh: &Json, baseline: &Json, thresholds: &Thresholds) -> GateOutcome {
    let max_regression_pct = thresholds.max_regression_pct;
    let mut out = GateOutcome::default();
    check_determinism(fresh, &mut out);
    check_hub_yield(fresh, &mut out);
    check_workload_yields(fresh, &mut out);
    check_triage(fresh, baseline, &mut out);
    check_durability(fresh, thresholds.max_checkpoint_overhead_pct, &mut out);
    check_fabric(fresh, baseline, &mut out);
    check_tenancy(fresh, baseline, &mut out);
    check_trace(fresh, baseline, thresholds.max_trace_overhead_pct, &mut out);
    check_sections(fresh, baseline, &mut out);
    let same_workload = check_workload(fresh, baseline, &mut out);
    if same_workload {
        check_exact(fresh, baseline, "blocks", &mut out);
        check_exact(fresh, baseline, "unique_crashes", &mut out);
        check_exact(fresh, baseline, "generation.valid_count", &mut out);
        check_exact(fresh, baseline, "durability.fuel_exhausted", &mut out);
        if check_hub_workload(fresh, baseline, &mut out) {
            check_exact(fresh, baseline, "hub.off.blocks", &mut out);
            check_exact(fresh, baseline, "hub.off.corpus_size", &mut out);
            check_exact(fresh, baseline, "hub.on.blocks", &mut out);
            check_exact(fresh, baseline, "hub.on.unique_crashes", &mut out);
            check_exact(fresh, baseline, "hub.on.corpus_size", &mut out);
            check_exact(fresh, baseline, "hub.early.off_blocks", &mut out);
            check_exact(fresh, baseline, "hub.early.on_blocks", &mut out);
            check_exact(fresh, baseline, "hub.early.on_corpus_size", &mut out);
            check_exact(fresh, baseline, "hub.early.off_corpus_size", &mut out);
        }
    }
    for metric in rate_metrics(fresh, baseline) {
        compare_rate(&metric, max_regression_pct, &mut out);
    }
    out
}

fn check_determinism(fresh: &Json, out: &mut GateOutcome) {
    match fresh.path("merge_invariant").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => out
            .failures
            .push("determinism: merge_invariant is false in the fresh run".into()),
        None => out
            .failures
            .push("determinism: fresh run is missing `merge_invariant`".into()),
    }
    // The generation section is newer than some baselines; only its
    // *presence with a falsy flag* is a failure.
    if let Some(flag) = fresh
        .path("generation.bit_identical")
        .and_then(Json::as_bool)
    {
        if !flag {
            out.failures.push(
                "determinism: generation reports differ across thread counts (bit_identical=false)"
                    .into(),
            );
        }
    }
    // Same convention for the hub section: a hub section without a
    // truthy invariance flag is a failure, an absent section is not.
    if fresh.get("hub").is_some()
        && fresh.path("hub.thread_invariant").and_then(Json::as_bool) != Some(true)
    {
        out.failures.push(
            "determinism: exchange-on campaign results differ across thread counts \
             (hub.thread_invariant is not true)"
                .into(),
        );
    }
    // And for the lowering section: the lowered-IR hot path must be
    // bit-identical to the AST walk (program streams, memory images,
    // execution outcomes) — a falsy or missing flag inside a present
    // section is a hard behaviour failure.
    if fresh.get("lowering").is_some()
        && fresh.path("lowering.bit_identical").and_then(Json::as_bool) != Some(true)
    {
        out.failures.push(
            "determinism: lowered-IR output diverged from the AST walk \
             (lowering.bit_identical is not true) — the lowering must be \
             behaviour-preserving, only faster"
                .into(),
        );
    }
}

/// Fail when the fresh run has a top-level section the committed
/// baseline lacks: the bench grew in this change, so the baseline
/// must be regenerated in the same PR — say so, naming the section,
/// instead of producing a generic mismatch (or silently skipping the
/// new numbers). The reverse direction (baseline has a section the
/// fresh run dropped) stays a note: older baselines must not block
/// benches that shed a section deliberately.
fn check_sections(fresh: &Json, baseline: &Json, out: &mut GateOutcome) {
    let (Json::Obj(fresh_members), Json::Obj(base_members)) = (fresh, baseline) else {
        return;
    };
    // Any value shape counts as a section — a future array- or
    // scalar-valued top-level metric must be gated the same way.
    for (key, _) in fresh_members {
        if baseline.get(key).is_none() {
            out.failures.push(format!(
                "baseline: the fresh run has a `{key}` section that BENCH_baseline.json \
                 lacks — regenerate BENCH_baseline.json in this PR (rerun fuzz_bench at \
                 the smoke workload and commit its output as the new baseline)"
            ));
        }
    }
    for (key, _) in base_members {
        if fresh.get(key).is_none() {
            out.notes.push(format!(
                "baseline section `{key}` is absent from the fresh run — its checks \
                 are skipped"
            ));
        }
    }
}

/// Hard-fail when the fresh run's exchange-on coverage-per-exec is
/// below exchange-off: the hub must never make the fuzzer worse at
/// the measured workload.
fn check_hub_yield(fresh: &Json, out: &mut GateOutcome) {
    let (Some(on), Some(off)) = (
        fresh
            .path("hub.on.coverage_per_exec")
            .and_then(Json::as_f64),
        fresh
            .path("hub.off.coverage_per_exec")
            .and_then(Json::as_f64),
    ) else {
        return; // hub section absent (older bench) — nothing to check
    };
    if on < off {
        out.failures.push(format!(
            "hub yield: exchange-on coverage-per-exec dropped below exchange-off \
             ({on:.8} vs {off:.8}) — the seed hub must not lose coverage"
        ));
    } else {
        out.notes.push(format!(
            "hub yield: exchange on {on:.8} vs off {off:.8} blocks/exec"
        ));
    }
}

/// The hub-yield and thread-invariance checks, applied to every
/// entry of the `workloads` section: each named workload carries its
/// own exchange-on/off ablation and must show `on.coverage_per_exec
/// >= off.coverage_per_exec` and a truthy `thread_invariant`.
fn check_workload_yields(fresh: &Json, out: &mut GateOutcome) {
    let Some(Json::Obj(members)) = fresh.get("workloads") else {
        return; // section absent (older bench) — nothing to check
    };
    for (name, w) in members {
        if w.path("thread_invariant").and_then(Json::as_bool) != Some(true) {
            out.failures.push(format!(
                "determinism: workload `{name}` results differ across thread counts \
                 (workloads.{name}.thread_invariant is not true)"
            ));
        }
        let (Some(on), Some(off)) = (
            w.path("on.coverage_per_exec").and_then(Json::as_f64),
            w.path("off.coverage_per_exec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if on < off {
            out.failures.push(format!(
                "hub yield: workload `{name}` exchange-on coverage-per-exec dropped below \
                 exchange-off ({on:.8} vs {off:.8}) — this suite exists because the lift is \
                 measurable here"
            ));
        } else {
            out.notes.push(format!(
                "hub yield: workload `{name}` exchange on {on:.8} vs off {off:.8} blocks/exec"
            ));
        }
    }
}

/// Triage-section checks: a present section must be thread-invariant,
/// every minimized reproducer must still trigger its signature, the
/// mean shrink ratio must stay at or above [`MIN_SHRINK_RATIO`], and
/// — when the triage workloads match — the signature and call counts
/// are exact-compared against the baseline.
fn check_triage(fresh: &Json, baseline: &Json, out: &mut GateOutcome) {
    let Some(triage) = fresh.get("triage") else {
        return; // section absent (older bench) — nothing to check
    };
    if triage.path("thread_invariant").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "determinism: triage reports differ across thread counts \
             (triage.thread_invariant is not true)"
                .into(),
        );
    }
    if triage.path("reproducible").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "triage: a minimized reproducer no longer triggers its crash signature \
             (triage.reproducible is not true) — minimization must preserve the crash"
                .into(),
        );
    }
    match triage.path("mean_shrink_ratio").and_then(Json::as_f64) {
        Some(ratio) if ratio >= MIN_SHRINK_RATIO => out.notes.push(format!(
            "triage: mean shrink ratio {ratio:.2}x over {} signatures",
            triage
                .path("signatures")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        )),
        Some(ratio) => out.failures.push(format!(
            "triage: mean shrink ratio {ratio:.2}x fell below the {MIN_SHRINK_RATIO}x floor — \
             minimization stopped earning its keep on the deep-chain workload"
        )),
        None => out
            .failures
            .push("triage: fresh run's triage section is missing `mean_shrink_ratio`".into()),
    }
    // Exact baseline compares (triage is deterministic) when both
    // sides ran the same deep-chain workload.
    if baseline.get("triage").is_none() {
        return; // section growth is handled by check_sections
    }
    if !deep_chain_workloads_match(fresh, baseline, out) {
        return;
    }
    for key in [
        "triage.signatures",
        "triage.raw_calls",
        "triage.minimized_calls",
    ] {
        check_exact(fresh, baseline, key, out);
    }
    for key in [
        "workloads.deep_chain.off.blocks",
        "workloads.deep_chain.off.corpus_size",
        "workloads.deep_chain.on.blocks",
        "workloads.deep_chain.on.unique_crashes",
        "workloads.deep_chain.on.corpus_size",
    ] {
        check_exact(fresh, baseline, key, out);
    }
}

/// Durability-section checks: interrupt+resume must have reproduced
/// the uninterrupted result bit for bit (under fault injection), fuel
/// exhaustion must count identically across identical runs, and the
/// wall-clock cost of per-epoch checkpointing must stay under the
/// allowed overhead.
fn check_durability(fresh: &Json, max_overhead_pct: f64, out: &mut GateOutcome) {
    let Some(durability) = fresh.get("durability") else {
        return; // section absent (older bench) — nothing to check
    };
    if durability.path("resume_identical").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "durability: interrupt+resume diverged from the uninterrupted campaign \
             (durability.resume_identical is not true) — the checkpoint missed state"
                .into(),
        );
    }
    if durability
        .path("fuel_deterministic")
        .and_then(Json::as_bool)
        != Some(true)
    {
        out.failures.push(
            "durability: fuel-exhaustion counts differ between identical runs \
             (durability.fuel_deterministic is not true) — the watchdog leaked \
             nondeterminism into the campaign"
                .into(),
        );
    }
    match durability
        .path("checkpoint_overhead_pct")
        .and_then(Json::as_f64)
    {
        Some(pct) if pct <= max_overhead_pct => out.notes.push(format!(
            "durability: checkpointing overhead {pct:.1}% (allowed {max_overhead_pct:.0}%), \
             snapshot {} bytes",
            durability
                .path("checkpoint_bytes")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        )),
        Some(pct) => out.failures.push(format!(
            "durability: checkpointing overhead {pct:.1}% exceeds the allowed \
             {max_overhead_pct:.0}% — snapshots are too expensive for the epoch cadence \
             (override with {MAX_CHECKPOINT_OVERHEAD_ENV} only for known-noisy runners)"
        )),
        None => out.failures.push(
            "durability: fresh run's durability section is missing `checkpoint_overhead_pct`"
                .into(),
        ),
    }
}

/// Fabric-section checks: the distributed coordinator/worker merge
/// must be worker-count invariant (bit-identical to the
/// single-process campaign — a falsy or missing flag inside a
/// present section is a hard behaviour failure) with no lease
/// expiring in a clean in-memory run; when both sides ran the same
/// workload, the boundary count and per-epoch delta volume are
/// exact-compared (the protocol is deterministic, so drift is a wire
/// format or scheduling change, not noise). Merge time is wall-clock
/// and stays a note.
fn check_fabric(fresh: &Json, baseline: &Json, out: &mut GateOutcome) {
    let Some(fabric) = fresh.get("fabric") else {
        return; // section absent (older bench) — nothing to check
    };
    if fabric.path("worker_invariant").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "fabric: the coordinator-merged result diverged from the single-process \
             campaign (fabric.worker_invariant is not true) — the fabric must be \
             bit-identical at every worker count"
                .into(),
        );
    }
    match fabric.path("expired_leases").and_then(Json::as_f64) {
        Some(0.0) => {}
        Some(n) => out.failures.push(format!(
            "fabric: {n} lease(s) expired in a clean in-memory run — a worker fell \
             behind its lease deadline without any injected fault"
        )),
        None => out
            .failures
            .push("fabric: fresh run's fabric section is missing `expired_leases`".into()),
    }
    if let (Some(ms), Some(bytes), Some(boundaries)) = (
        fabric.path("merge_ms").and_then(Json::as_f64),
        fabric.path("delta_bytes_per_epoch").and_then(Json::as_f64),
        fabric.path("boundaries").and_then(Json::as_f64),
    ) {
        out.notes.push(format!(
            "fabric: merge cost {ms:.3}ms per campaign, {bytes:.0} delta bytes/epoch \
             over {boundaries:.0} boundaries"
        ));
    }
    // Incremental frames exist to save bandwidth; a run where they
    // cost as much as full snapshots means the diff codec degenerated
    // into its fallback (or worse). The 5x floor is the shipped
    // claim — the smoke workload measures well above it, so tripping
    // this means the codec regressed, not that the workload is noisy.
    match fabric.path("delta_shrink").and_then(Json::as_f64) {
        Some(shrink) if shrink < MIN_DELTA_SHRINK => out.failures.push(format!(
            "fabric: incremental frames shrink delta volume only {shrink:.2}x vs full \
             snapshots (floor {MIN_DELTA_SHRINK:.0}x) — the word-diff / increment codec \
             has degenerated"
        )),
        Some(shrink) => out.notes.push(format!(
            "fabric: incremental frames are {shrink:.2}x smaller than full"
        )),
        None => out
            .failures
            .push("fabric: fresh run's fabric section is missing `delta_shrink`".into()),
    }
    if baseline.get("fabric").is_none() {
        return; // section growth is handled by check_sections
    }
    for key in ["fabric.execs", "fabric.shards", "fabric.epoch"] {
        if fresh.path(key).and_then(Json::as_f64) != baseline.path(key).and_then(Json::as_f64) {
            out.notes.push(format!(
                "fabric comparison skipped: `{key}` differs — regenerate the baseline \
                 for the new workload knobs"
            ));
            return;
        }
    }
    check_exact(fresh, baseline, "fabric.boundaries", out);
    check_exact(fresh, baseline, "fabric.delta_bytes_per_epoch", out);
    // The baseline may predate the incremental codec; only
    // exact-compare the full-frame volume once both sides report it.
    if baseline.path("fabric.delta_full_bytes_per_epoch").is_some() {
        check_exact(fresh, baseline, "fabric.delta_full_bytes_per_epoch", out);
    }
}

/// Minimum acceptable `fabric.delta_shrink` (full-frame bytes per
/// epoch over incremental bytes per epoch). See `check_fabric`.
const MIN_DELTA_SHRINK: f64 = 5.0;

/// Tenancy-section checks: every tenant of the shared service — the
/// budget-cut one included — must have merged bit-identical to its
/// single-process reference (`tenant_invariant`, hard), the
/// quota-declaring tenant must actually have been budget-terminated,
/// and when both sides ran the same workload the per-tenant exec /
/// coverage / corpus / grant accounting is exact-compared (the
/// service's scheduling and budget arithmetic are deterministic, so
/// drift is a behaviour change, not noise). Wall time stays a note.
fn check_tenancy(fresh: &Json, baseline: &Json, out: &mut GateOutcome) {
    let Some(tenancy) = fresh.get("tenancy") else {
        return; // section absent (older bench) — nothing to check
    };
    if tenancy.path("tenant_invariant").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "tenancy: a tenant's merged result diverged from its single-process \
             reference (tenancy.tenant_invariant is not true) — every tenant of the \
             shared service must be bit-identical, the budget-cut one included"
                .into(),
        );
    }
    if tenancy.path("budget_exhausted").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "tenancy: the quota-declaring tenant was not budget-terminated \
             (tenancy.budget_exhausted is not true) — the budget tracker never tripped \
             at a boundary"
                .into(),
        );
    }
    if let (Some(boundary), Some(used), Some(quota)) = (
        tenancy.path("starved_boundaries").and_then(Json::as_f64),
        tenancy.path("starved_execs").and_then(Json::as_f64),
        tenancy.path("starved_quota").and_then(Json::as_f64),
    ) {
        out.notes.push(format!(
            "tenancy: starved tenant cut at boundary {boundary:.0} with {used:.0} execs \
             charged against a {quota:.0} quota"
        ));
    }
    if baseline.get("tenancy").is_none() {
        return; // section growth is handled by check_sections
    }
    for key in [
        "tenancy.execs",
        "tenancy.shards",
        "tenancy.workers_per_tenant",
        "tenancy.starved_quota",
    ] {
        if fresh.path(key).and_then(Json::as_f64) != baseline.path(key).and_then(Json::as_f64) {
            out.notes.push(format!(
                "tenancy comparison skipped: `{key}` differs — regenerate the baseline \
                 for the new workload knobs"
            ));
            return;
        }
    }
    check_exact(fresh, baseline, "tenancy.starved_execs", out);
    check_exact(fresh, baseline, "tenancy.starved_boundaries", out);
    check_exact(fresh, baseline, "tenancy.grants", out);
    for tenant in ["tenant_0", "tenant_1", "tenant_2"] {
        for field in [
            "execs",
            "blocks",
            "unique_crashes",
            "corpus",
            "boundaries",
            "grants",
        ] {
            check_exact(fresh, baseline, &format!("tenancy.{tenant}.{field}"), out);
        }
    }
}

/// Trace-section checks: every retained flight-recorder trace must
/// have replayed bit-identically (`replay_identical`, hard — the flag
/// also covers crash coverage: every crash signature of the traced
/// run must have had a pinned trace replaying to the same signature),
/// the amortized trace volume must stay under
/// [`MAX_TRACE_BITS_PER_EXEC`] bits per campaign exec, and the
/// capture overhead must stay under the allowed percentage. With an
/// identical trace workload the retained count, encoded stream
/// volume, and crash-signature count are exact-compared against the
/// baseline — capture and retention are deterministic, so drift is a
/// recorder behaviour change, not noise.
fn check_trace(fresh: &Json, baseline: &Json, max_overhead_pct: f64, out: &mut GateOutcome) {
    let Some(trace) = fresh.get("trace") else {
        return; // section absent (older bench) — nothing to check
    };
    if trace.path("replay_identical").and_then(Json::as_bool) != Some(true) {
        out.failures.push(
            "trace: a retained trace did not replay bit-identically, or a crash \
             signature lacked a pinned trace replaying to the same signature \
             (trace.replay_identical is not true) — the flight recorder's replay \
             contract is broken"
                .into(),
        );
    }
    match trace.path("bits_per_exec").and_then(Json::as_f64) {
        Some(bits) if bits <= MAX_TRACE_BITS_PER_EXEC => out.notes.push(format!(
            "trace: {bits:.3} retained bits/exec (allowed {MAX_TRACE_BITS_PER_EXEC:.0}), \
             {:.0} retained traces",
            trace.path("retained").and_then(Json::as_f64).unwrap_or(0.0)
        )),
        Some(bits) => out.failures.push(format!(
            "trace: {bits:.3} retained bits per campaign exec exceeds the \
             {MAX_TRACE_BITS_PER_EXEC:.0}-bit budget — the delta codec or the \
             retention policy degenerated"
        )),
        None => out
            .failures
            .push("trace: fresh run's trace section is missing `bits_per_exec`".into()),
    }
    match trace.path("capture_overhead_pct").and_then(Json::as_f64) {
        Some(pct) if pct <= max_overhead_pct => out.notes.push(format!(
            "trace: capture overhead {pct:.1}% (allowed {max_overhead_pct:.0}%)"
        )),
        Some(pct) => out.failures.push(format!(
            "trace: capture overhead {pct:.1}% exceeds the allowed {max_overhead_pct:.0}% — \
             per-exec recording is too expensive to leave enabled \
             (override with {MAX_TRACE_OVERHEAD_ENV} only for known-noisy runners)"
        )),
        None => out
            .failures
            .push("trace: fresh run's trace section is missing `capture_overhead_pct`".into()),
    }
    if baseline.get("trace").is_none() {
        return; // section growth is handled by check_sections
    }
    for key in ["trace.execs", "trace.shards", "trace.ring"] {
        if fresh.path(key).and_then(Json::as_f64) != baseline.path(key).and_then(Json::as_f64) {
            out.notes.push(format!(
                "trace comparison skipped: `{key}` differs — regenerate the baseline \
                 for the new workload knobs"
            ));
            return;
        }
    }
    check_exact(fresh, baseline, "trace.retained", out);
    check_exact(fresh, baseline, "trace.stream_bytes", out);
    check_exact(fresh, baseline, "trace.crash_sigs", out);
}

/// `true` when both sides ran the deep-chain ablation with the same
/// knobs, making its (deterministic) numbers exactly comparable; a
/// deliberate retune skips them with a note, like the hub and
/// campaign workload conventions.
fn deep_chain_workloads_match(fresh: &Json, baseline: &Json, out: &mut GateOutcome) -> bool {
    for key in [
        "workloads.deep_chain.execs",
        "workloads.deep_chain.shards",
        "workloads.deep_chain.epoch",
        "workloads.deep_chain.top_k",
        "workloads.deep_chain.max_prog_len",
    ] {
        if fresh.path(key).and_then(Json::as_f64) != baseline.path(key).and_then(Json::as_f64) {
            out.notes.push(format!(
                "deep-chain comparison skipped: `{key}` differs — regenerate the baseline \
                 for the new workload knobs"
            ));
            return false;
        }
    }
    true
}

/// `true` when the hub ablations of both sides used the same
/// exchange knobs (or at least one side has no hub section), making
/// the hub coverage numbers directly comparable. A deliberate
/// `epoch`/`top_k` retune therefore skips the hub comparison with a
/// note — the same convention `execs`/`shards` changes get — instead
/// of a misleading hard determinism failure.
fn check_hub_workload(fresh: &Json, baseline: &Json, out: &mut GateOutcome) -> bool {
    if fresh.get("hub").is_none() || baseline.get("hub").is_none() {
        return true; // exact checks no-op on the missing side anyway
    }
    for key in ["hub.epoch", "hub.top_k"] {
        let f = fresh.path(key).and_then(Json::as_f64);
        let b = baseline.path(key).and_then(Json::as_f64);
        if f != b {
            out.notes.push(format!(
                "hub comparison skipped: `{key}` differs (fresh {f:?} vs baseline {b:?}) — \
                 regenerate the baseline for the new hub knobs"
            ));
            return false;
        }
    }
    true
}

/// `true` when fresh and baseline measured the same campaign workload,
/// making coverage numbers directly comparable.
fn check_workload(fresh: &Json, baseline: &Json, out: &mut GateOutcome) -> bool {
    for key in ["execs", "shards"] {
        let f = fresh.path(key).and_then(Json::as_f64);
        let b = baseline.path(key).and_then(Json::as_f64);
        if f != b {
            out.notes.push(format!(
                "coverage comparison skipped: `{key}` differs (fresh {f:?} vs baseline {b:?})"
            ));
            return false;
        }
    }
    true
}

fn check_exact(fresh: &Json, baseline: &Json, path: &str, out: &mut GateOutcome) {
    let (Some(f), Some(b)) = (
        fresh.path(path).and_then(Json::as_f64),
        baseline.path(path).and_then(Json::as_f64),
    ) else {
        return; // section absent on one side — nothing to compare
    };
    if (f - b).abs() > f64::EPSILON {
        out.failures.push(format!(
            "coverage/determinism: `{path}` diverged from baseline ({f} vs {b}) — \
             the campaign is deterministic, so this is a behaviour change, not noise"
        ));
    }
}

/// One comparable higher-is-better rate.
struct RateMetric {
    name: String,
    fresh: f64,
    baseline: f64,
}

fn rate_metrics(fresh: &Json, baseline: &Json) -> Vec<RateMetric> {
    let mut out = Vec::new();
    let mut push = |name: String, f: Option<f64>, b: Option<f64>| {
        if let (Some(fresh), Some(baseline)) = (f, b) {
            if baseline > 0.0 {
                out.push(RateMetric {
                    name,
                    fresh,
                    baseline,
                });
            }
        }
    };
    push(
        "sequential execs/sec".into(),
        fresh
            .path("sequential.execs_per_sec")
            .and_then(Json::as_f64),
        baseline
            .path("sequential.execs_per_sec")
            .and_then(Json::as_f64),
    );
    for (section, rate_key, unit) in [
        ("sharded", "execs_per_sec", "execs/sec"),
        ("generation.points", "handlers_per_sec", "handlers/sec"),
    ] {
        let fresh_points = fresh.path(section).and_then(Json::as_arr).unwrap_or(&[]);
        let base_points = baseline.path(section).and_then(Json::as_arr).unwrap_or(&[]);
        for fp in fresh_points {
            let threads = fp.get("threads").and_then(Json::as_f64);
            let bp = base_points
                .iter()
                .find(|p| p.get("threads").and_then(Json::as_f64) == threads);
            push(
                format!(
                    "{section} x{} {unit}",
                    threads.map_or_else(|| "?".into(), |t| format!("{t:.0}"))
                ),
                fp.get(rate_key).and_then(Json::as_f64),
                bp.and_then(|p| p.get(rate_key).and_then(Json::as_f64)),
            );
        }
    }
    push(
        "hub exchange-on execs/sec".into(),
        fresh.path("hub.on.execs_per_sec").and_then(Json::as_f64),
        baseline.path("hub.on.execs_per_sec").and_then(Json::as_f64),
    );
    push(
        "deep-chain exchange-on execs/sec".into(),
        fresh
            .path("workloads.deep_chain.on.execs_per_sec")
            .and_then(Json::as_f64),
        baseline
            .path("workloads.deep_chain.on.execs_per_sec")
            .and_then(Json::as_f64),
    );
    push(
        "triage minimization execs/sec".into(),
        fresh
            .path("triage.minimize_execs_per_sec")
            .and_then(Json::as_f64),
        baseline
            .path("triage.minimize_execs_per_sec")
            .and_then(Json::as_f64),
    );
    push(
        "spec-cache warm speedup".into(),
        fresh.path("spec_cache.warm_speedup").and_then(Json::as_f64),
        baseline
            .path("spec_cache.warm_speedup")
            .and_then(Json::as_f64),
    );
    for (path, name) in [
        (
            "lowering.gen.lowered_progs_per_sec",
            "lowered generation progs/sec",
        ),
        (
            "lowering.exec.lowered_execs_per_sec",
            "lowered end-to-end execs/sec",
        ),
        (
            "lowering.mutation.lowered_mutations_per_sec",
            "lowered mutations/sec",
        ),
    ] {
        push(
            name.into(),
            fresh.path(path).and_then(Json::as_f64),
            baseline.path(path).and_then(Json::as_f64),
        );
    }
    out
}

fn compare_rate(m: &RateMetric, max_regression_pct: f64, out: &mut GateOutcome) {
    let change_pct = (m.fresh / m.baseline - 1.0) * 100.0;
    if change_pct < -max_regression_pct {
        out.failures.push(format!(
            "throughput: {} regressed {:.1}% ({:.1} vs baseline {:.1}, allowed {:.0}%)",
            m.name, -change_pct, m.fresh, m.baseline, max_regression_pct
        ));
    } else {
        out.notes.push(format!(
            "throughput: {} {}{:.1}% ({:.1} vs baseline {:.1})",
            m.name,
            if change_pct >= 0.0 { "+" } else { "" },
            change_pct,
            m.fresh,
            m.baseline
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    /// Shim keeping the historical 3-arg call shape: every test that
    /// does not exercise the checkpoint-overhead threshold runs with
    /// the default.
    fn check(fresh: &Json, baseline: &Json, max_regression_pct: f64) -> GateOutcome {
        super::check(
            fresh,
            baseline,
            &Thresholds {
                max_regression_pct,
                ..Thresholds::default()
            },
        )
    }

    fn bench_doc(seq_rate: f64, blocks: u64, invariant: bool) -> Json {
        hub_doc(seq_rate, blocks, invariant, blocks, true)
    }

    fn hub_doc(
        seq_rate: f64,
        blocks: u64,
        invariant: bool,
        hub_on_blocks: u64,
        hub_invariant: bool,
    ) -> Json {
        let off_cpe = blocks as f64 / 20000.0;
        let on_cpe = hub_on_blocks as f64 / 20000.0;
        parse_json(&format!(
            r#"{{
  "execs": 20000, "shards": 8,
  "sequential": {{ "secs": 1.0, "execs_per_sec": {seq_rate} }},
  "sharded": [ {{ "threads": 2, "secs": 1.0, "execs_per_sec": {seq_rate} }} ],
  "merge_invariant": {invariant},
  "blocks": {blocks},
  "unique_crashes": 3,
  "hub": {{
    "epoch": 2048, "top_k": 4, "thread_invariant": {hub_invariant},
    "off": {{ "blocks": {blocks}, "unique_crashes": 3, "coverage_per_exec": {off_cpe} }},
    "on": {{ "blocks": {hub_on_blocks}, "unique_crashes": 3, "coverage_per_exec": {on_cpe}, "execs_per_sec": {seq_rate} }}
  }},
  "generation": {{
    "bit_identical": true, "valid_count": 30,
    "points": [ {{ "threads": 1, "handlers_per_sec": 10.0 }} ]
  }},
  "spec_cache": {{ "warm_speedup": 50.0 }}
}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_runs_pass() {
        let doc = bench_doc(1000.0, 187, true);
        let r = check(&doc, &doc, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn small_regression_within_threshold_passes() {
        let r = check(
            &bench_doc(800.0, 187, true),
            &bench_doc(1000.0, 187, true),
            25.0,
        );
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn large_regression_fails_and_threshold_is_tunable() {
        let fresh = bench_doc(700.0, 187, true);
        let base = bench_doc(1000.0, 187, true);
        let r = check(&fresh, &base, 25.0);
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("sequential")),
            "{:?}",
            r.failures
        );
        // A looser (noisy-runner) threshold lets the same delta pass.
        assert!(check(&fresh, &base, 40.0).passed());
    }

    #[test]
    fn coverage_mismatch_is_a_hard_failure_at_any_threshold() {
        let r = check(
            &bench_doc(1000.0, 150, true),
            &bench_doc(1000.0, 187, true),
            1e9,
        );
        assert!(!r.passed());
        assert!(r.failures.iter().any(|f| f.contains("blocks")));
    }

    #[test]
    fn coverage_not_compared_across_different_workloads() {
        let mut fresh = bench_doc(1000.0, 150, true);
        if let Json::Obj(members) = &mut fresh {
            members[0].1 = Json::Num(40000.0); // execs differ
        }
        let r = check(&fresh, &bench_doc(1000.0, 187, true), 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("skipped")));
    }

    #[test]
    fn broken_merge_invariance_fails() {
        let doc = bench_doc(1000.0, 187, false);
        let r = check(&doc, &doc, 25.0);
        assert!(r.failures.iter().any(|f| f.contains("merge_invariant")));
    }

    #[test]
    fn hub_coverage_drop_is_a_hard_failure_at_any_threshold() {
        // Exchange-on found fewer blocks than exchange-off in the
        // fresh run: the hub gate fails regardless of the baseline.
        let fresh = hub_doc(1000.0, 187, true, 150, true);
        let r = check(&fresh, &fresh, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("hub yield")),
            "{:?}",
            r.failures
        );
        // Equal on/off yield passes (saturated workloads).
        let even = hub_doc(1000.0, 187, true, 187, true);
        assert!(check(&even, &even, 25.0).passed());
        // Better-on passes and is noted.
        let better = hub_doc(1000.0, 187, true, 190, true);
        let r = check(&better, &better, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("hub yield")));
    }

    #[test]
    fn hub_thread_variance_is_a_determinism_failure() {
        let doc = hub_doc(1000.0, 187, true, 187, false);
        let r = check(&doc, &doc, 25.0);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("hub.thread_invariant")),
            "{:?}",
            r.failures
        );
    }

    #[test]
    fn hub_blocks_are_compared_exactly_against_the_baseline() {
        let fresh = hub_doc(1000.0, 187, true, 190, true);
        let base = hub_doc(1000.0, 187, true, 191, true);
        let r = check(&fresh, &base, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("hub.on.blocks")),
            "{:?}",
            r.failures
        );
    }

    #[test]
    fn retuned_hub_knobs_skip_hub_comparison_instead_of_failing() {
        let mut fresh = hub_doc(1000.0, 187, true, 190, true);
        // Same campaign workload, different hub epoch: the hub
        // numbers are not comparable, so they are skipped with a
        // note while the campaign-level checks still run.
        if let Json::Obj(members) = &mut fresh {
            let hub = members
                .iter_mut()
                .find(|(k, _)| k == "hub")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Obj(hub_members) = hub {
                hub_members[0].1 = Json::Num(4096.0); // epoch differs
            }
        }
        let base = hub_doc(1000.0, 187, true, 191, true);
        let r = check(&fresh, &base, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(
            r.notes.iter().any(|n| n.contains("hub comparison skipped")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn fresh_section_missing_from_baseline_demands_regeneration() {
        // A fresh run that grew sections (`hub`, `generation`,
        // `spec_cache`) the committed baseline lacks must fail with
        // the exact action, naming each section.
        let fresh = hub_doc(1000.0, 187, true, 187, true);
        let base = parse_json(
            r#"{ "execs": 20000, "shards": 8, "merge_invariant": true,
                 "sequential": { "execs_per_sec": 1000.0 }, "blocks": 187, "unique_crashes": 3 }"#,
        )
        .unwrap();
        let r = check(&fresh, &base, 25.0);
        assert!(!r.passed());
        for section in ["`hub`", "`generation`", "`spec_cache`"] {
            assert!(
                r.failures
                    .iter()
                    .any(|f| f.contains(section) && f.contains("regenerate BENCH_baseline.json")),
                "no actionable failure for {section}: {:?}",
                r.failures
            );
        }
        // The reverse direction — the baseline has sections the fresh
        // run dropped — stays tolerated with a note.
        let r = check(&base, &fresh, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(
            r.notes.iter().any(|n| n.contains("absent from the fresh")),
            "{:?}",
            r.notes
        );
    }

    fn triage_doc(
        on_blocks: u64,
        off_blocks: u64,
        invariant: bool,
        reproducible: bool,
        shrink: f64,
        signatures: u64,
    ) -> Json {
        let mut doc = bench_doc(1000.0, 187, true);
        let on_cpe = on_blocks as f64 / 20000.0;
        let off_cpe = off_blocks as f64 / 20000.0;
        let extra = parse_json(&format!(
            r#"{{
  "workloads": {{
    "deep_chain": {{
      "execs": 20000, "shards": 8, "max_prog_len": 12, "epoch": 128, "top_k": 4,
      "thread_invariant": {invariant},
      "off": {{ "blocks": {off_blocks}, "unique_crashes": 4, "corpus_size": 300, "coverage_per_exec": {off_cpe} }},
      "on": {{ "blocks": {on_blocks}, "unique_crashes": 5, "corpus_size": 320, "coverage_per_exec": {on_cpe}, "execs_per_sec": 4000.0 }}
    }}
  }},
  "triage": {{
    "signatures": {signatures}, "thread_invariant": {invariant}, "reproducible": {reproducible},
    "mean_shrink_ratio": {shrink}, "raw_calls": 50, "minimized_calls": 25,
    "minimize_execs": 90, "minimize_execs_per_sec": 30000.0
  }}
}}"#
        ))
        .unwrap();
        let Json::Obj(members) = &mut doc else {
            unreachable!("bench_doc is an object")
        };
        let Json::Obj(extra_members) = extra else {
            unreachable!("literal object")
        };
        members.extend(extra_members);
        doc
    }

    #[test]
    fn deep_chain_hub_yield_drop_is_a_hard_failure() {
        let bad = triage_doc(180, 190, true, true, 2.5, 5);
        let r = check(&bad, &bad, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("workload `deep_chain`") && f.contains("hub yield")),
            "{:?}",
            r.failures
        );
        // On >= off passes and is noted.
        let good = triage_doc(200, 190, true, true, 2.5, 5);
        let r = check(&good, &good, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("deep_chain")));
    }

    #[test]
    fn triage_thread_variance_and_irreproducibility_are_hard_failures() {
        let variant = triage_doc(200, 190, false, true, 2.5, 5);
        let r = check(&variant, &variant, 1e9);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("triage.thread_invariant")));
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("workloads.deep_chain.thread_invariant")));

        let stale = triage_doc(200, 190, true, false, 2.5, 5);
        let r = check(&stale, &stale, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("no longer triggers its crash signature")),
            "{:?}",
            r.failures
        );
    }

    #[test]
    fn shrink_ratio_below_floor_fails() {
        let weak = triage_doc(200, 190, true, true, 1.4, 5);
        let r = check(&weak, &weak, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("shrink ratio")),
            "{:?}",
            r.failures
        );
        assert!(check(
            &triage_doc(200, 190, true, true, 2.0, 5),
            &triage_doc(200, 190, true, true, 2.0, 5),
            25.0
        )
        .passed());
    }

    #[test]
    fn triage_counts_are_compared_exactly_against_the_baseline() {
        let fresh = triage_doc(200, 190, true, true, 2.5, 5);
        let base = triage_doc(200, 190, true, true, 2.5, 6);
        let r = check(&fresh, &base, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("triage.signatures")),
            "{:?}",
            r.failures
        );
        // A retuned deep-chain workload skips the exact compare with a
        // note instead of failing.
        let mut retuned = triage_doc(200, 190, true, true, 2.5, 5);
        if let Json::Obj(members) = &mut retuned {
            let w = members
                .iter_mut()
                .find(|(k, _)| k == "workloads")
                .map(|(_, v)| v)
                .unwrap();
            let Json::Obj(wm) = w else { unreachable!() };
            let Json::Obj(dc) = &mut wm[0].1 else {
                unreachable!()
            };
            dc.iter_mut().find(|(k, _)| k == "execs").unwrap().1 = Json::Num(40000.0);
        }
        let r = check(&retuned, &base, 1e9);
        assert!(
            !r.failures.iter().any(|f| f.contains("triage.signatures")),
            "{:?}",
            r.failures
        );
        assert!(
            r.notes
                .iter()
                .any(|n| n.contains("deep-chain comparison skipped")),
            "{:?}",
            r.notes
        );
    }

    fn lowering_doc(bit_identical: bool, execs_per_sec: f64) -> Json {
        let mut doc = bench_doc(1000.0, 187, true);
        let lowering = parse_json(&format!(
            r#"{{ "bit_identical": {bit_identical},
                  "gen": {{ "lowered_progs_per_sec": 100000.0 }},
                  "exec": {{ "lowered_execs_per_sec": {execs_per_sec} }},
                  "mutation": {{ "lowered_mutations_per_sec": 50000.0 }} }}"#
        ))
        .unwrap();
        let Json::Obj(members) = &mut doc else {
            unreachable!("bench_doc is an object")
        };
        members.push(("lowering".into(), lowering));
        doc
    }

    #[test]
    fn lowering_divergence_is_a_hard_failure() {
        let bad = lowering_doc(false, 100000.0);
        let r = check(&bad, &bad, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("lowering.bit_identical")),
            "{:?}",
            r.failures
        );
        let good = lowering_doc(true, 100000.0);
        assert!(check(&good, &good, 25.0).passed());
    }

    fn durability_doc(
        resume_identical: bool,
        fuel_deterministic: bool,
        overhead_pct: f64,
        fuel_exhausted: u64,
    ) -> Json {
        let mut doc = bench_doc(1000.0, 187, true);
        let durability = parse_json(&format!(
            r#"{{ "resume_identical": {resume_identical},
                  "fuel_deterministic": {fuel_deterministic},
                  "checkpoint_bytes": 150000, "write_ms": 2.0, "restore_ms": 1.0,
                  "checkpoint_overhead_pct": {overhead_pct},
                  "fuel_exhausted": {fuel_exhausted} }}"#
        ))
        .unwrap();
        let Json::Obj(members) = &mut doc else {
            unreachable!("bench_doc is an object")
        };
        members.push(("durability".into(), durability));
        doc
    }

    #[test]
    fn resume_divergence_and_fuel_nondeterminism_are_hard_failures() {
        let diverged = durability_doc(false, true, 2.0, 12);
        let r = check(&diverged, &diverged, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("resume_identical")),
            "{:?}",
            r.failures
        );
        let leaky = durability_doc(true, false, 2.0, 12);
        let r = check(&leaky, &leaky, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("fuel_deterministic")),
            "{:?}",
            r.failures
        );
        let good = durability_doc(true, true, 2.0, 12);
        let r = check(&good, &good, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("checkpointing overhead")));
    }

    #[test]
    fn checkpoint_overhead_threshold_is_enforced_and_tunable() {
        let costly = durability_doc(true, true, 400.0, 12);
        let r = check(&costly, &costly, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("checkpointing overhead") && f.contains("400.0%")),
            "{:?}",
            r.failures
        );
        // A raised threshold (noisy runner) lets the same number pass.
        let r = super::check(
            &costly,
            &costly,
            &Thresholds {
                max_regression_pct: 25.0,
                max_checkpoint_overhead_pct: 500.0,
                ..Thresholds::default()
            },
        );
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn fuel_exhaustion_count_is_compared_exactly_against_the_baseline() {
        let fresh = durability_doc(true, true, 2.0, 12);
        let base = durability_doc(true, true, 2.0, 13);
        let r = check(&fresh, &base, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("durability.fuel_exhausted")),
            "{:?}",
            r.failures
        );
        assert!(check(&fresh, &fresh, 25.0).passed());
    }

    fn fabric_doc(worker_invariant: bool, expired: u64, delta_bytes_per_epoch: u64) -> Json {
        let mut doc = bench_doc(1000.0, 187, true);
        let full = delta_bytes_per_epoch * 10;
        let fabric = parse_json(&format!(
            r#"{{ "execs": 20000, "shards": 8, "epoch": 128,
                  "worker_invariant": {worker_invariant},
                  "boundaries": 19, "delta_bytes_per_epoch": {delta_bytes_per_epoch},
                  "delta_full_bytes_per_epoch": {full}, "delta_shrink": 10.0,
                  "merge_ms": 1.5, "expired_leases": {expired},
                  "points": [ {{ "workers": 1, "secs": 1.0, "delta_bytes": 190000, "merge_ms": 1.5 }} ] }}"#
        ))
        .unwrap();
        let Json::Obj(members) = &mut doc else {
            unreachable!("bench_doc is an object")
        };
        members.push(("fabric".into(), fabric));
        doc
    }

    #[test]
    fn fabric_worker_variance_and_expired_leases_are_hard_failures() {
        let variant = fabric_doc(false, 0, 10000);
        let r = check(&variant, &variant, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("fabric.worker_invariant")),
            "{:?}",
            r.failures
        );
        let lapsed = fabric_doc(true, 2, 10000);
        let r = check(&lapsed, &lapsed, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("lease(s) expired")),
            "{:?}",
            r.failures
        );
        let good = fabric_doc(true, 0, 10000);
        let r = check(&good, &good, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.notes.iter().any(|n| n.contains("fabric: merge cost")));
    }

    #[test]
    fn fabric_delta_volume_is_compared_exactly_against_the_baseline() {
        let fresh = fabric_doc(true, 0, 10000);
        let base = fabric_doc(true, 0, 10500);
        let r = check(&fresh, &base, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("fabric.delta_bytes_per_epoch")),
            "{:?}",
            r.failures
        );
        // A retuned fabric workload skips the exact compare with a
        // note instead of failing.
        let mut retuned = fabric_doc(true, 0, 10000);
        if let Json::Obj(members) = &mut retuned {
            let fabric = members
                .iter_mut()
                .find(|(k, _)| k == "fabric")
                .map(|(_, v)| v)
                .unwrap();
            let Json::Obj(fm) = fabric else {
                unreachable!()
            };
            fm.iter_mut().find(|(k, _)| k == "epoch").unwrap().1 = Json::Num(256.0);
        }
        let r = check(&retuned, &base, 1e9);
        assert!(
            !r.failures
                .iter()
                .any(|f| f.contains("fabric.delta_bytes_per_epoch")),
            "{:?}",
            r.failures
        );
        assert!(
            r.notes
                .iter()
                .any(|n| n.contains("fabric comparison skipped")),
            "{:?}",
            r.notes
        );
    }

    fn set_fabric_field(doc: &mut Json, key: &str, value: Json) {
        let Json::Obj(members) = doc else {
            unreachable!()
        };
        let fabric = members
            .iter_mut()
            .find(|(k, _)| k == "fabric")
            .map(|(_, v)| v)
            .unwrap();
        let Json::Obj(fm) = fabric else {
            unreachable!()
        };
        match fm.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => fm.push((key.into(), value)),
        }
    }

    fn drop_fabric_field(doc: &mut Json, key: &str) {
        let Json::Obj(members) = doc else {
            unreachable!()
        };
        let fabric = members
            .iter_mut()
            .find(|(k, _)| k == "fabric")
            .map(|(_, v)| v)
            .unwrap();
        let Json::Obj(fm) = fabric else {
            unreachable!()
        };
        fm.retain(|(k, _)| k != key);
    }

    #[test]
    fn fabric_delta_shrink_below_the_floor_is_a_hard_failure() {
        // Incremental frames costing nearly as much as full snapshots
        // means the diff codec degenerated — hard failure, even when
        // every exact compare matches.
        let mut degenerate = fabric_doc(true, 0, 10000);
        set_fabric_field(&mut degenerate, "delta_shrink", Json::Num(1.2));
        let r = check(&degenerate, &degenerate, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("shrink")),
            "{:?}",
            r.failures
        );
        // A fabric section that stopped reporting the ratio is a
        // bench regression, not a pass.
        let mut silent = fabric_doc(true, 0, 10000);
        drop_fabric_field(&mut silent, "delta_shrink");
        let r = check(&silent, &silent, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("delta_shrink")),
            "{:?}",
            r.failures
        );
        // At or above the floor it is a note.
        let good = fabric_doc(true, 0, 10000);
        let r = check(&good, &good, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(
            r.notes.iter().any(|n| n.contains("smaller than full")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn fabric_full_frame_volume_is_compared_when_the_baseline_has_it() {
        let fresh = fabric_doc(true, 0, 10000);
        let mut base = fabric_doc(true, 0, 10000);
        set_fabric_field(&mut base, "delta_full_bytes_per_epoch", Json::Num(90000.0));
        let r = check(&fresh, &base, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("fabric.delta_full_bytes_per_epoch")),
            "{:?}",
            r.failures
        );
        // A pre-incremental baseline without the key skips the compare.
        let mut old_base = fabric_doc(true, 0, 10000);
        drop_fabric_field(&mut old_base, "delta_full_bytes_per_epoch");
        let r = check(&fresh, &old_base, 1e9);
        assert!(
            !r.failures
                .iter()
                .any(|f| f.contains("delta_full_bytes_per_epoch")),
            "{:?}",
            r.failures
        );
    }

    fn tenancy_doc(tenant_invariant: bool, budget_exhausted: bool, starved_execs: u64) -> Json {
        let mut doc = bench_doc(1000.0, 187, true);
        let tenancy = parse_json(&format!(
            r#"{{ "execs": 20000, "shards": 8, "workers_per_tenant": 2,
                  "tenant_invariant": {tenant_invariant},
                  "starved_quota": 10000, "starved_execs": {starved_execs},
                  "starved_boundaries": 10, "budget_exhausted": {budget_exhausted},
                  "grants": 6, "secs": 2.0,
                  "tenant_0": {{ "execs": 20000, "blocks": 450, "unique_crashes": 4, "corpus": 260, "boundaries": 20, "grants": 2 }},
                  "tenant_1": {{ "execs": {starved_execs}, "blocks": 440, "unique_crashes": 4, "corpus": 250, "boundaries": 10, "grants": 2 }},
                  "tenant_2": {{ "execs": 20000, "blocks": 452, "unique_crashes": 4, "corpus": 262, "boundaries": 20, "grants": 2 }} }}"#
        ))
        .unwrap();
        let Json::Obj(members) = &mut doc else {
            unreachable!("bench_doc is an object")
        };
        members.push(("tenancy".into(), tenancy));
        doc
    }

    #[test]
    fn tenant_variance_and_a_missed_budget_cut_are_hard_failures() {
        let variant = tenancy_doc(false, true, 10000);
        let r = check(&variant, &variant, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("tenancy.tenant_invariant")),
            "{:?}",
            r.failures
        );
        let uncut = tenancy_doc(true, false, 10000);
        let r = check(&uncut, &uncut, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("tenancy.budget_exhausted")),
            "{:?}",
            r.failures
        );
        let good = tenancy_doc(true, true, 10000);
        let r = check(&good, &good, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(
            r.notes.iter().any(|n| n.contains("starved tenant cut")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn tenant_accounting_is_compared_exactly_against_the_baseline() {
        let fresh = tenancy_doc(true, true, 10000);
        let base = tenancy_doc(true, true, 12000);
        let r = check(&fresh, &base, 1e9);
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("tenancy.starved_execs")),
            "{:?}",
            r.failures
        );
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("tenancy.tenant_1.execs")),
            "{:?}",
            r.failures
        );
        // A retuned quota skips the exact compare with a note instead
        // of failing.
        let mut retuned = tenancy_doc(true, true, 10000);
        if let Json::Obj(members) = &mut retuned {
            let tenancy = members
                .iter_mut()
                .find(|(k, _)| k == "tenancy")
                .map(|(_, v)| v)
                .unwrap();
            let Json::Obj(tm) = tenancy else {
                unreachable!()
            };
            tm.iter_mut().find(|(k, _)| k == "starved_quota").unwrap().1 = Json::Num(5000.0);
        }
        let r = check(&retuned, &base, 1e9);
        assert!(
            !r.failures.iter().any(|f| f.contains("tenancy.")),
            "{:?}",
            r.failures
        );
        assert!(
            r.notes
                .iter()
                .any(|n| n.contains("tenancy comparison skipped")),
            "{:?}",
            r.notes
        );
    }

    fn trace_doc(replay_identical: bool, bits_per_exec: f64, overhead_pct: f64) -> Json {
        let mut doc = bench_doc(1000.0, 187, true);
        let trace = parse_json(&format!(
            r#"{{ "execs": 20000, "shards": 8, "ring": 32,
                  "retained": 266, "pinned": 10, "stream_bytes": 9200,
                  "bits_per_exec": {bits_per_exec},
                  "stream_bits_per_exec": 240.0, "bits_per_block": 1.1,
                  "capture_overhead_pct": {overhead_pct},
                  "replay_identical": {replay_identical},
                  "crash_sigs": 10, "traces_replayed": 266 }}"#
        ))
        .unwrap();
        let Json::Obj(members) = &mut doc else {
            unreachable!("bench_doc is an object")
        };
        members.push(("trace".into(), trace));
        doc
    }

    #[test]
    fn replay_divergence_and_oversized_traces_are_hard_failures() {
        let diverged = trace_doc(false, 4.0, 10.0);
        let r = check(&diverged, &diverged, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("trace.replay_identical")),
            "{:?}",
            r.failures
        );
        let bloated = trace_doc(true, 40.0, 10.0);
        let r = check(&bloated, &bloated, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("bits per campaign exec")),
            "{:?}",
            r.failures
        );
        let good = trace_doc(true, 4.0, 10.0);
        let r = check(&good, &good, 25.0);
        assert!(r.passed(), "{:?}", r.failures);
        assert!(
            r.notes.iter().any(|n| n.contains("retained bits/exec")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn trace_capture_overhead_threshold_is_enforced_and_tunable() {
        let costly = trace_doc(true, 4.0, 170.0);
        let r = check(&costly, &costly, 1e9);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("capture overhead") && f.contains("170.0%")),
            "{:?}",
            r.failures
        );
        // A raised threshold (noisy runner) lets the same number pass.
        let r = super::check(
            &costly,
            &costly,
            &Thresholds {
                max_regression_pct: 25.0,
                max_trace_overhead_pct: 200.0,
                ..Thresholds::default()
            },
        );
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn trace_volume_is_compared_exactly_against_the_baseline() {
        let fresh = trace_doc(true, 4.0, 10.0);
        let mut base = trace_doc(true, 4.0, 10.0);
        if let Json::Obj(members) = &mut base {
            let trace = members
                .iter_mut()
                .find(|(k, _)| k == "trace")
                .map(|(_, v)| v)
                .unwrap();
            let Json::Obj(tm) = trace else { unreachable!() };
            tm.iter_mut().find(|(k, _)| k == "stream_bytes").unwrap().1 = Json::Num(9999.0);
        }
        let r = check(&fresh, &base, 1e9);
        assert!(
            r.failures.iter().any(|f| f.contains("trace.stream_bytes")),
            "{:?}",
            r.failures
        );
        // A retuned ring skips the exact compare with a note instead
        // of failing.
        let mut retuned = trace_doc(true, 4.0, 10.0);
        if let Json::Obj(members) = &mut retuned {
            let trace = members
                .iter_mut()
                .find(|(k, _)| k == "trace")
                .map(|(_, v)| v)
                .unwrap();
            let Json::Obj(tm) = trace else { unreachable!() };
            tm.iter_mut().find(|(k, _)| k == "ring").unwrap().1 = Json::Num(64.0);
        }
        let r = check(&retuned, &base, 1e9);
        assert!(
            !r.failures.iter().any(|f| f.contains("trace.")),
            "{:?}",
            r.failures
        );
        assert!(
            r.notes
                .iter()
                .any(|n| n.contains("trace comparison skipped")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn unparseable_env_overrides_are_hard_errors_naming_the_variable() {
        // `env_pct` is exercised directly: mutating the process
        // environment in tests races other threads.
        assert_eq!(env_pct("KGPT_TEST_UNSET_GATE_VAR", 25.0), Ok(25.0));
        for bad in ["not-a-number", "", "NaN", "-5", "inf"] {
            std::env::set_var("KGPT_TEST_BAD_GATE_VAR", bad);
            let err = env_pct("KGPT_TEST_BAD_GATE_VAR", 25.0).unwrap_err();
            assert!(
                err.contains("KGPT_TEST_BAD_GATE_VAR"),
                "error must name the variable: {err}"
            );
        }
        std::env::set_var("KGPT_TEST_BAD_GATE_VAR", "60");
        assert_eq!(env_pct("KGPT_TEST_BAD_GATE_VAR", 25.0), Ok(60.0));
        std::env::remove_var("KGPT_TEST_BAD_GATE_VAR");
    }

    #[test]
    fn lowering_rates_are_gated_like_any_throughput() {
        let fresh = lowering_doc(true, 30000.0);
        let base = lowering_doc(true, 100000.0);
        let r = check(&fresh, &base, 25.0);
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("lowered end-to-end execs/sec")),
            "{:?}",
            r.failures
        );
        // Within threshold passes.
        assert!(check(&lowering_doc(true, 90000.0), &base, 25.0).passed());
    }
}
