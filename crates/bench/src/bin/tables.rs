//! Regenerate the paper's tables and figures.
//!
//! Usage: `cargo run --release -p kgpt-bench --bin tables -- <exp>`
//! where `<exp>` is one of: `table1 fig7 table2 table3 table4 table5
//! table6 cost correctness ablation-iter ablation-model all`.

use kgpt_bench::{
    all_bugs, bp_id_of_handler, correctness, existing_suite_for, kgpt_suite_for,
    syzdescribe_suite_for, table3_suites, Env, TABLE5_DRIVERS, TABLE6_SOCKETS,
};
use kgpt_core::Strategy;
use kgpt_extractor::HandlerKind;
use kgpt_llm::{LanguageModel, ModelKind, OracleModel};
use kgpt_vkernel::VKernel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = args.first().map(String::as_str).unwrap_or("all");
    match exp {
        "table1" => table1(),
        "fig7" => fig7(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(),
        "table6" => table6(),
        "cost" => cost(),
        "correctness" => correctness_exp(),
        "ablation-iter" => ablation_iter(),
        "ablation-model" => ablation_model(),
        "all" => {
            table1();
            fig7();
            table2();
            cost();
            correctness_exp();
            table3();
            table4();
            table5();
            table6();
            ablation_iter();
            ablation_model();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
}

/// Shared state for the census experiments (Table 1/2, Fig 7, cost,
/// correctness), computed once.
struct CensusRun {
    env: Env,
    model: OracleModel,
    report: kgpt_core::GenerationReport,
    sd: Vec<kgpt_syzdescribe::StaticOutcome>,
}

fn census_run() -> CensusRun {
    eprintln!("[census] building full corpus (666 drivers + 85 sockets)...");
    let env = Env::full(0);
    let incomplete = env.incomplete_handlers();
    eprintln!(
        "[census] {} incomplete loaded handlers; running KernelGPT...",
        incomplete.len()
    );
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let report = env.run_kernelgpt(&model, &incomplete, Strategy::Iterative);
    eprintln!("[census] running SyzDescribe...");
    let sd = kgpt_syzdescribe::describe_all(env.kc.corpus(), &incomplete, env.kc.consts());
    CensusRun {
        env,
        model,
        report,
        sd,
    }
}

fn table1() {
    let run = census_run();
    let census = run.env.kc.census();
    let d_out: Vec<_> = run
        .report
        .outcomes
        .iter()
        .filter(|o| o.kind == HandlerKind::Driver)
        .collect();
    let s_out: Vec<_> = run
        .report
        .outcomes
        .iter()
        .filter(|o| o.kind == HandlerKind::Socket)
        .collect();
    let d_valid = d_out.iter().filter(|o| o.valid).count();
    let d_fixed = d_out.iter().filter(|o| o.valid && o.repaired).count();
    let s_valid = s_out.iter().filter(|o| o.valid).count();
    let s_fixed = s_out.iter().filter(|o| o.valid && o.repaired).count();
    let sd_valid_drivers = run
        .sd
        .iter()
        .filter(|o| o.kind == HandlerKind::Driver && o.valid)
        .count();
    println!("\n# Table 1: Specifications for driver/socket handlers");
    println!("#            paper: drivers 278 total / 75 incomplete / SyzD 20 / KGPT 70 (30)");
    println!("#            paper: sockets  81 total / 66 incomplete / SyzD N/A / KGPT 57 (12)");
    println!("kind    #total  #loaded  #incomplete  SyzDescribe#valid  KernelGPT#valid(fixed)");
    println!(
        "driver  {:>6}  {:>7}  {:>11}  {:>17}  {:>10} ({})",
        census.drivers_total,
        census.drivers_loaded,
        census.drivers_incomplete,
        sd_valid_drivers,
        d_valid,
        d_fixed
    );
    println!(
        "socket  {:>6}  {:>7}  {:>11}  {:>17}  {:>10} ({})",
        census.sockets_total,
        census.sockets_loaded,
        census.sockets_incomplete,
        "N/A",
        s_valid,
        s_fixed
    );
}

fn fig7() {
    eprintln!("[fig7] building full corpus...");
    let env = Env::full(0);
    let mut d_hist = [0usize; 10];
    let mut s_hist = [0usize; 10];
    for bp in env.kc.blueprints() {
        if !bp.loaded {
            continue;
        }
        let m = env.kc.missing_fraction(bp);
        if m <= 0.0 {
            continue;
        }
        let bucket = ((m * 10.0).ceil() as usize).clamp(1, 10) - 1;
        if bp.driver().is_some() {
            d_hist[bucket] += 1;
        } else {
            s_hist[bucket] += 1;
        }
    }
    println!("\n# Figure 7: Missing specification distribution (handlers per decile)");
    println!("missing%   drivers  sockets");
    for i in 0..10 {
        println!(
            "{:>3}-{:>3}%   {:>7}  {:>7}",
            i * 10,
            (i + 1) * 10,
            d_hist[i],
            s_hist[i]
        );
    }
}

fn table2() {
    let run = census_run();
    let d_sys: usize = run
        .report
        .outcomes
        .iter()
        .filter(|o| o.kind == HandlerKind::Driver && o.valid)
        .map(kgpt_core::HandlerOutcome::syscall_count)
        .sum();
    let d_ty: usize = run
        .report
        .outcomes
        .iter()
        .filter(|o| o.kind == HandlerKind::Driver && o.valid)
        .map(kgpt_core::HandlerOutcome::type_count)
        .sum();
    let s_sys: usize = run
        .report
        .outcomes
        .iter()
        .filter(|o| o.kind == HandlerKind::Socket && o.valid)
        .map(kgpt_core::HandlerOutcome::syscall_count)
        .sum();
    let s_ty: usize = run
        .report
        .outcomes
        .iter()
        .filter(|o| o.kind == HandlerKind::Socket && o.valid)
        .map(kgpt_core::HandlerOutcome::type_count)
        .sum();
    let sd_sys: usize = run
        .sd
        .iter()
        .filter(|o| o.valid)
        .map(kgpt_syzdescribe::StaticOutcome::syscall_count)
        .sum();
    let sd_ty: usize = run
        .sd
        .iter()
        .filter(|o| o.valid)
        .map(kgpt_syzdescribe::StaticOutcome::type_count)
        .sum();
    println!("\n# Table 2: Newly generated syscall descriptions");
    println!("#            paper: SyzD 146 syscalls/168 types (drivers only);");
    println!("#            paper: KGPT 288+244=532 syscalls, 170+124=294 types");
    println!("tool         target   #syscalls  #types");
    println!("SyzDescribe  driver   {sd_sys:>9}  {sd_ty:>6}");
    println!("SyzDescribe  socket         N/A     N/A");
    println!("KernelGPT    driver   {d_sys:>9}  {d_ty:>6}");
    println!("KernelGPT    socket   {s_sys:>9}  {s_ty:>6}");
    println!(
        "KernelGPT    total    {:>9}  {:>6}",
        d_sys + s_sys,
        d_ty + s_ty
    );
}

fn cost() {
    let run = census_run();
    let usage = run.model.total_usage();
    let cap = ModelKind::Gpt4.capability();
    println!(
        "\n# §5.1.1: Generation cost (paper: 5.56M in / 400K out tokens, $34, 2630/189 per prompt)"
    );
    println!("requests        : {}", usage.requests);
    println!("input tokens    : {}", usage.input_tokens);
    println!("output tokens   : {}", usage.output_tokens);
    println!("per-prompt in   : {}", usage.mean_input());
    println!("per-prompt out  : {}", usage.mean_output());
    println!(
        "cost            : ${:.2}",
        usage.cost_cents(&cap) as f64 / 100.0
    );
}

fn correctness_exp() {
    let run = census_run();
    // The 45 loaded drivers with no existing specs (§5.1.3's target).
    let ids: Vec<String> = run
        .env
        .kc
        .blueprints()
        .iter()
        .filter(|b| {
            b.loaded
                && b.driver().is_some()
                && matches!(b.existing, kgpt_csrc::blueprint::ExistingSpec::None)
        })
        .map(|b| b.id.clone())
        .collect();
    let stats = correctness(&run.env, &ids, &run.report);
    println!("\n# §5.1.3: Correctness of new specifications (paper: 42/45 drivers complete,");
    println!("#          3 (0.9%) wrong identifiers, 9 wrong types)");
    println!("drivers examined        : {}", stats.drivers);
    println!(
        "drivers fully covered   : {} ({:.1}%)",
        stats.drivers - stats.drivers_with_missing,
        100.0 * (stats.drivers - stats.drivers_with_missing) as f64 / stats.drivers.max(1) as f64
    );
    println!("syscalls examined       : {}", stats.total_syscalls);
    println!("missing syscalls        : {}", stats.missing_syscalls);
    println!(
        "wrong identifier values : {} ({:.1}%)",
        stats.wrong_identifiers,
        100.0 * stats.wrong_identifiers as f64 / stats.total_syscalls.max(1) as f64
    );
    println!("wrong types             : {}", stats.wrong_types);
}

fn table3() {
    eprintln!("[table3] building flagship environment...");
    let env = Env::flagship();
    let kernel = env.boot_kernel();
    let (syz, syz_sd, syz_kgpt) = table3_suites(&env);
    const EXECS: u64 = 30_000;
    const REPS: u64 = 3;
    eprintln!("[table3] running 3 suites × {REPS} reps × {EXECS} execs...");
    let base = env.campaign_mean(&kernel, &syz, EXECS, REPS, None);
    let sd = env.campaign_mean(&kernel, &syz_sd, EXECS, REPS, None);
    let kg = env.campaign_mean(&kernel, &syz_kgpt, EXECS, REPS, None);
    let uniq = |m: &kgpt_bench::MeanResult| m.union.difference(&base.union).count();
    println!("\n# Table 3: Overall effectiveness (3 reps, {EXECS} execs each; paper: 24h fuzzing)");
    println!("#            paper: 204,923 / 201,634 / 209,673 cov; 16.0 / 13.7 / 17.7 crashes");
    println!("suite                    cov     uniq-cov   crashes");
    println!(
        "Syzkaller              {:>6}   {:>8}   {:>7.1}",
        base.mean_blocks, "-", base.mean_crashes
    );
    println!(
        "Syzkaller+SyzDescribe  {:>6}   {:>8}   {:>7.1}",
        sd.mean_blocks,
        uniq(&sd),
        sd.mean_crashes
    );
    println!(
        "Syzkaller+KernelGPT    {:>6}   {:>8}   {:>7.1}",
        kg.mean_blocks,
        uniq(&kg),
        kg.mean_crashes
    );
}

fn table4() {
    eprintln!("[table4] building flagship environment...");
    let env = Env::flagship();
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    let bugs = all_bugs(&env);
    // Per-bug-driver campaigns under each suite, restricted to the
    // driver's syscalls (focused budget; see EXPERIMENTS.md).
    const EXECS: u64 = 12_000;
    println!("\n# Table 4: New bugs detected by KernelGPT-generated specs");
    println!("#            paper: 24 bugs, 11 CVEs; none found by Syzkaller or SyzDescribe");
    println!("{:<55} {:<16} KGPT  Syzk  SyzD", "crash", "CVE");
    let mut found_kgpt = 0;
    let mut found_other = 0;
    let mut bug_drivers: Vec<String> = bugs.iter().map(|(id, _, _)| id.clone()).collect();
    bug_drivers.sort_unstable();
    bug_drivers.dedup();
    for id in &bug_drivers {
        let kernel = VKernel::boot(kgpt_bench::blueprints_for(&env, id));
        let run_suite = |suite: Vec<kgpt_syzlang::SpecFile>| -> std::collections::BTreeSet<String> {
            if suite.is_empty() {
                return std::collections::BTreeSet::new();
            }
            let m = env.campaign_mean(&kernel, &suite, EXECS, 2, None);
            m.crash_titles
        };
        let kgpt_titles = run_suite(kgpt_suite_for(&env, &model, id));
        let syz_titles = run_suite(existing_suite_for(&env, id));
        let sd_titles = run_suite(syzdescribe_suite_for(&env, id));
        for (bid, title, cve) in bugs.iter().filter(|(b, _, _)| b == id) {
            let _ = bid;
            let k = kgpt_titles.contains(title);
            let s = syz_titles.contains(title);
            let d = sd_titles.contains(title);
            if k {
                found_kgpt += 1;
            }
            if s || d {
                found_other += 1;
            }
            println!(
                "{:<55} {:<16} {:<5} {:<5} {:<4}",
                title,
                cve.clone().unwrap_or_else(|| "-".into()),
                if k { "YES" } else { "no" },
                if s { "YES" } else { "no" },
                if d { "YES" } else { "no" },
            );
        }
    }
    println!("total found by KernelGPT: {found_kgpt}/24; by baselines: {found_other}/24");
}

fn table5() {
    eprintln!("[table5] building flagship environment...");
    let env = Env::flagship();
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    const EXECS: u64 = 6_000;
    const REPS: u64 = 3;
    println!("\n# Table 5: Driver specification comparison ({REPS} reps × {EXECS} execs; cmd counts scaled ~1/3 of paper)");
    println!(
        "{:<14} {:>5} {:>7}   {:>5} {:>7}   {:>5} {:>7}",
        "driver", "SyzN", "SyzCov", "SDN", "SDCov", "KGN", "KGCov"
    );
    let mut totals = [0u64; 6];
    let mut wins = [0usize; 3];
    let mut best_or_tied = [0usize; 3];
    for id in TABLE5_DRIVERS {
        let kernel = VKernel::boot(kgpt_bench::blueprints_for(&env, id));
        let mut row = Vec::new();
        for suite in [
            existing_suite_for(&env, id),
            syzdescribe_suite_for(&env, id),
            kgpt_suite_for(&env, &model, id),
        ] {
            if suite.is_empty() {
                row.push((0usize, 0u64));
                continue;
            }
            let n = Env::suite_syscalls(&suite).len();
            let m = env.campaign_mean(&kernel, &suite, EXECS, REPS, None);
            row.push((n, m.mean_blocks));
        }
        println!(
            "{:<14} {:>5} {:>7}   {:>5} {:>7}   {:>5} {:>7}",
            id, row[0].0, row[0].1, row[1].0, row[1].1, row[2].0, row[2].1
        );
        for (i, (n, c)) in row.iter().enumerate() {
            totals[i * 2] += *n as u64;
            totals[i * 2 + 1] += c;
        }
        // Strict wins and paper-style bolding (best incl. ties).
        let best = row.iter().map(|(_, c)| *c).max().unwrap_or(0);
        let holders: Vec<usize> = row
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c == best && best > 0)
            .map(|(i, _)| i)
            .collect();
        if holders.len() == 1 {
            wins[holders[0]] += 1;
        }
        for h in &holders {
            best_or_tied[*h] += 1;
        }
    }
    println!(
        "{:<14} {:>5} {:>7}   {:>5} {:>7}   {:>5} {:>7}",
        "Total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    println!(
        "strict best-coverage wins: Syzkaller {} / SyzDescribe {} / KernelGPT {}",
        wins[0], wins[1], wins[2]
    );
    println!(
        "best incl. ties (paper bolding, 4/4/20): Syzkaller {} / SyzDescribe {} / KernelGPT {}",
        best_or_tied[0], best_or_tied[1], best_or_tied[2]
    );
}

fn table6() {
    eprintln!("[table6] building flagship environment...");
    let env = Env::flagship();
    let model = OracleModel::new(ModelKind::Gpt4, 0);
    const EXECS: u64 = 6_000;
    const REPS: u64 = 3;
    println!("\n# Table 6: Socket specification comparison ({REPS} reps × {EXECS} execs)");
    println!(
        "{:<14} {:>5} {:>7} {:>6}   {:>5} {:>7} {:>6}",
        "socket", "SyzN", "SyzCov", "SyzCr", "KGN", "KGCov", "KGCr"
    );
    let mut totals = [0u64; 4];
    for id in TABLE6_SOCKETS {
        let kernel = VKernel::boot(kgpt_bench::blueprints_for(&env, id));
        let mut cells = Vec::new();
        for suite in [
            existing_suite_for(&env, id),
            kgpt_suite_for(&env, &model, id),
        ] {
            if suite.is_empty() {
                cells.push((0usize, 0u64, 0.0));
                continue;
            }
            let n = Env::suite_syscalls(&suite).len();
            let m = env.campaign_mean(&kernel, &suite, EXECS, REPS, None);
            cells.push((n, m.mean_blocks, m.mean_crashes));
        }
        println!(
            "{:<14} {:>5} {:>7} {:>6.1}   {:>5} {:>7} {:>6.1}",
            id, cells[0].0, cells[0].1, cells[0].2, cells[1].0, cells[1].1, cells[1].2
        );
        totals[0] += cells[0].0 as u64;
        totals[1] += cells[0].1;
        totals[2] += cells[1].0 as u64;
        totals[3] += cells[1].1;
    }
    println!(
        "{:<14} {:>5} {:>7} {:>6}   {:>5} {:>7} {:>6}",
        "Total", totals[0], totals[1], "", totals[2], totals[3], ""
    );
}

fn ablation_drivers() -> Vec<&'static str> {
    // "First 10 valid drivers from Table 5".
    TABLE5_DRIVERS.iter().take(10).copied().collect()
}

fn ablation_iter() {
    eprintln!("[ablation-iter] building flagship environment...");
    let env = Env::flagship();
    const EXECS: u64 = 5_000;
    let mut totals = [[0u64; 3]; 2]; // [strategy][syscalls, types, cov]
    println!("\n# §5.2.3 ablation: iterative multi-stage vs all-in-one prompting");
    println!("#            paper: iterative infers 1.28x syscalls, 2.37x types, 1.39x coverage");
    println!(
        "{:<14} {:>6} {:>6} {:>7}   {:>6} {:>6} {:>7}",
        "driver", "It#S", "It#T", "ItCov", "A1#S", "A1#T", "A1Cov"
    );
    for id in ablation_drivers() {
        let kernel = VKernel::boot(kgpt_bench::blueprints_for(&env, id));
        let mut cells = Vec::new();
        for (si, strategy) in [Strategy::Iterative, Strategy::AllInOne].iter().enumerate() {
            let model = OracleModel::new(ModelKind::Gpt4, 0);
            let handlers: Vec<_> = std::iter::once(id)
                .chain(kgpt_bench::companions(id))
                .filter_map(|b| env.handler_for(b).cloned())
                .collect();
            let report = env.run_kernelgpt(&model, &handlers, *strategy);
            let suite = report.specs();
            let n_sys = report.total_syscalls();
            let n_ty = report.total_types();
            let cov = if suite.is_empty() {
                0
            } else {
                env.campaign_mean(&kernel, &suite, EXECS, 2, None)
                    .mean_blocks
            };
            totals[si][0] += n_sys as u64;
            totals[si][1] += n_ty as u64;
            totals[si][2] += cov;
            cells.push((n_sys, n_ty, cov));
        }
        println!(
            "{:<14} {:>6} {:>6} {:>7}   {:>6} {:>6} {:>7}",
            id, cells[0].0, cells[0].1, cells[0].2, cells[1].0, cells[1].1, cells[1].2
        );
    }
    println!(
        "Total          {:>6} {:>6} {:>7}   {:>6} {:>6} {:>7}",
        totals[0][0], totals[0][1], totals[0][2], totals[1][0], totals[1][1], totals[1][2]
    );
    let ratio = |a: u64, b: u64| {
        if b == 0 {
            f64::INFINITY
        } else {
            a as f64 / b as f64
        }
    };
    println!(
        "iterative/all-in-one: {:.2}x syscalls, {:.2}x types, {:.2}x coverage",
        ratio(totals[0][0], totals[1][0]),
        ratio(totals[0][1], totals[1][1]),
        ratio(totals[0][2], totals[1][2])
    );
}

fn ablation_model() {
    eprintln!("[ablation-model] building flagship environment...");
    let env = Env::flagship();
    const EXECS: u64 = 5_000;
    println!("\n# §5.2.3 ablation: model choice (paper: GPT-3.5 85 syscalls vs GPT-4 143; GPT-4o ≈ GPT-4)");
    println!(
        "{:<14} {:>9} {:>7} {:>9}",
        "model", "#syscalls", "#types", "coverage"
    );
    for kind in [ModelKind::Gpt35, ModelKind::Gpt4, ModelKind::Gpt4o] {
        let model = OracleModel::new(kind, 0);
        let mut n_sys = 0usize;
        let mut n_ty = 0usize;
        let mut cov = 0u64;
        for id in ablation_drivers() {
            let kernel = VKernel::boot(kgpt_bench::blueprints_for(&env, id));
            let handlers: Vec<_> = std::iter::once(id)
                .chain(kgpt_bench::companions(id))
                .filter_map(|b| env.handler_for(b).cloned())
                .collect();
            let report = env.run_kernelgpt(&model, &handlers, Strategy::Iterative);
            n_sys += report.total_syscalls();
            n_ty += report.total_types();
            let suite = report.specs();
            if !suite.is_empty() {
                cov += env
                    .campaign_mean(&kernel, &suite, EXECS, 2, None)
                    .mean_blocks;
            }
        }
        println!("{:<14} {:>9} {:>7} {:>9}", model.name(), n_sys, n_ty, cov);
    }
}

// Silence "unused" for helpers only exercised in some subcommands.
#[allow(dead_code)]
fn unused_guard(h: &kgpt_extractor::OpHandler) -> String {
    bp_id_of_handler(h)
}
