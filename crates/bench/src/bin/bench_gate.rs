//! CI bench-regression gate.
//!
//! Compares a freshly measured bench file against the committed
//! baseline, hard-failing on determinism/coverage mismatches and
//! failing on throughput regressions beyond the allowed percentage
//! (default 25%, override with `BENCH_GATE_MAX_REGRESSION` on noisy
//! runners). See `kgpt_bench::gate` for the exact rules.
//!
//! Usage: `cargo run --release -p kgpt-bench --bin bench_gate --
//! [--fresh BENCH_fuzzing.json] [--baseline BENCH_baseline.json]
//! [--max-regression PCT] [--max-checkpoint-overhead PCT]`
//!
//! A gate environment variable that is set but unparseable is a hard
//! error naming the variable — misconfigured CI must not silently
//! gate at the defaults.

use kgpt_bench::gate;
use kgpt_bench::json::parse_json;
use std::process::ExitCode;

fn load(path: &str) -> Result<kgpt_bench::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut fresh_path = String::from("BENCH_fuzzing.json");
    let mut baseline_path = String::from("BENCH_baseline.json");
    let mut thresholds = match gate::Thresholds::from_env() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fresh" => fresh_path = args.next().expect("--fresh PATH"),
            "--baseline" => baseline_path = args.next().expect("--baseline PATH"),
            "--max-regression" => {
                thresholds.max_regression_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regression PCT");
            }
            "--max-checkpoint-overhead" => {
                thresholds.max_checkpoint_overhead_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-checkpoint-overhead PCT");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for e in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_gate: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let outcome = gate::check(&fresh, &baseline, &thresholds);
    println!(
        "bench_gate: {fresh_path} vs {baseline_path} (allowed regression {:.0}%, \
         checkpoint overhead {:.0}%)",
        thresholds.max_regression_pct, thresholds.max_checkpoint_overhead_pct
    );
    for n in &outcome.notes {
        println!("  note: {n}");
    }
    for f in &outcome.failures {
        eprintln!("  FAIL: {f}");
    }
    if outcome.passed() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAILED ({} finding(s)); raise {} only for known-noisy runners — \
             coverage/determinism failures are never noise",
            outcome.failures.len(),
            gate::MAX_REGRESSION_ENV
        );
        ExitCode::FAILURE
    }
}
